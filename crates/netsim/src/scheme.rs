//! The simulator's scheme table: congestion control + receiver agent.
//!
//! A transport scheme, as the simulator sees it, is two factories under one
//! [`SchemeId`] key: the sender-side congestion controller (from the open
//! [`SchemeRegistry`] in `pbe-cc-algorithms`) and an optional receiver-side
//! [`ReceiverAgent`].  The [`SchemeTable::standard`] table carries the eight
//! baselines, PBE-CC (whose receiver agent is the decoder → fusion → client
//! pipeline from `pbe-core`) and the congestion-control-free `"Fixed"`
//! scheme — and new schemes are registered from the outside via
//! [`SimBuilder`](crate::builder::SimBuilder) without touching this crate.

use pbe_cc_algorithms::registry::{SchemeCtx, SchemeId, SchemeRegistry};
use pbe_cc_algorithms::CongestionControl;
use pbe_core::receiver::{NullReceiverAgent, ReceiverAgent, ReceiverCtx, ReceiverFactory};
use pbe_core::PbeReceiverAgent;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Registry key of the congestion-control-free fixed-rate scheme.
pub const FIXED_SCHEME_ID: SchemeId = SchemeId::from_static("Fixed");

/// Scheme-resolution table used by the simulation engine.
pub struct SchemeTable {
    registry: SchemeRegistry,
    receivers: HashMap<SchemeId, ReceiverFactory>,
    /// Schemes whose flows are paced by the application model alone.
    app_limited: HashSet<SchemeId>,
}

impl fmt::Debug for SchemeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeTable")
            .field("registry", &self.registry)
            .field("receivers", &self.receivers.keys().collect::<Vec<_>>())
            .field("app_limited", &self.app_limited)
            .finish()
    }
}

impl SchemeTable {
    /// An empty table (no schemes at all).
    pub fn empty() -> Self {
        SchemeTable {
            registry: SchemeRegistry::empty(),
            receivers: HashMap::new(),
            app_limited: HashSet::new(),
        }
    }

    /// The standard table: all eight baselines, PBE-CC with its receiver
    /// pipeline, and the fixed-rate scheme.
    pub fn standard() -> Self {
        let mut table = SchemeTable {
            registry: pbe_core::default_scheme_registry(),
            receivers: HashMap::new(),
            app_limited: HashSet::new(),
        };
        table
            .receivers
            .insert(pbe_core::PBE_SCHEME_ID, PbeReceiverAgent::factory());
        table.app_limited.insert(FIXED_SCHEME_ID);
        table
    }

    /// Register (or replace) a congestion-control factory.
    pub fn register_scheme<F>(&mut self, id: impl Into<SchemeId>, factory: F)
    where
        F: Fn(&SchemeCtx) -> Box<dyn CongestionControl> + Send + Sync + 'static,
    {
        self.registry.register(id, factory);
    }

    /// Register (or replace) a receiver-agent factory for a scheme.
    pub fn register_receiver(&mut self, id: impl Into<SchemeId>, factory: ReceiverFactory) {
        self.receivers.insert(id.into(), factory);
    }

    /// Mark a scheme as application-limited: its flows run without a
    /// congestion controller, paced purely by the traffic model.
    pub fn register_app_limited(&mut self, id: impl Into<SchemeId>) {
        self.app_limited.insert(id.into());
    }

    /// The underlying congestion-control registry.
    pub fn registry(&self) -> &SchemeRegistry {
        &self.registry
    }

    /// True if the scheme runs without a congestion controller.
    pub fn is_app_limited(&self, id: &SchemeId) -> bool {
        self.app_limited.contains(id)
    }

    /// True if the scheme is known to this table in any capacity.
    pub fn contains(&self, id: &SchemeId) -> bool {
        self.registry.contains(id) || self.app_limited.contains(id)
    }

    /// Build the congestion controller for a scheme (`None` for
    /// application-limited schemes).
    ///
    /// # Panics
    /// Panics if the scheme is entirely unknown, naming the key — a
    /// mis-spelled scheme should fail loudly at flow setup, not run silently
    /// uncontrolled.
    pub fn build_cc(&self, id: &SchemeId, ctx: &SchemeCtx) -> Option<Box<dyn CongestionControl>> {
        if self.app_limited.contains(id) {
            return None;
        }
        match self.registry.build(id, ctx) {
            Some(cc) => Some(cc),
            None => panic!(
                "scheme `{id}` is not registered (known schemes: {:?})",
                self.registry.ids()
            ),
        }
    }

    /// Build the receiver agent for a scheme (the no-op agent if none is
    /// registered).
    pub fn build_receiver(&self, id: &SchemeId, ctx: &ReceiverCtx) -> Box<dyn ReceiverAgent> {
        match self.receivers.get(id) {
            Some(factory) => factory(ctx),
            None => Box::new(NullReceiverAgent),
        }
    }
}

impl Default for SchemeTable {
    fn default() -> Self {
        SchemeTable::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_cellular::config::{CellId, Rnti};
    use pbe_stats::time::Duration;
    use pbe_stats::DetRng;

    fn cc_ctx() -> SchemeCtx {
        SchemeCtx::new(Duration::from_millis(40))
    }

    fn rx_ctx() -> ReceiverCtx {
        ReceiverCtx {
            flow: 1,
            rnti: Rnti(0x100),
            cells: vec![(CellId(0), 100)],
            rng: DetRng::new(1),
        }
    }

    #[test]
    fn standard_table_knows_pbe_baselines_and_fixed() {
        let table = SchemeTable::standard();
        assert!(table.contains(&pbe_core::PBE_SCHEME_ID));
        assert!(table.contains(&SchemeId::new("BBR")));
        assert!(table.contains(&FIXED_SCHEME_ID));
        assert!(table.is_app_limited(&FIXED_SCHEME_ID));
        assert!(table.build_cc(&FIXED_SCHEME_ID, &cc_ctx()).is_none());
        let pbe = table.build_cc(&pbe_core::PBE_SCHEME_ID, &cc_ctx()).unwrap();
        assert_eq!(pbe.name(), "PBE");
    }

    #[test]
    fn pbe_gets_its_receiver_and_baselines_get_the_null_agent() {
        let table = SchemeTable::standard();
        let mut pbe_rx = table.build_receiver(&pbe_core::PBE_SCHEME_ID, &rx_ctx());
        let mut bbr_rx = table.build_receiver(&SchemeId::new("BBR"), &rx_ctx());
        use pbe_stats::time::Instant;
        assert!(pbe_rx.on_packet(Instant::from_millis(1), 20.0).is_some());
        assert!(bbr_rx.on_packet(Instant::from_millis(1), 20.0).is_none());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_scheme_panics_at_flow_setup() {
        SchemeTable::standard().build_cc(&SchemeId::new("Typo"), &cc_ctx());
    }
}
