//! Fluent construction of simulations.
//!
//! [`SimBuilder`] assembles a scenario — cells, load, devices, flows — plus
//! the extensible parts: scheme registrations and observers.  A minimal
//! experiment is a handful of chained calls:
//!
//! ```
//! use pbe_netsim::{SimBuilder, FlowConfig, SchemeChoice};
//! use pbe_cellular::config::{CellId, UeConfig, UeId};
//! use pbe_cellular::channel::MobilityTrace;
//! use pbe_stats::time::Duration;
//!
//! let duration = Duration::from_secs(2);
//! let ue = UeId(1);
//! let result = SimBuilder::new()
//!     .seed(7)
//!     .duration(duration)
//!     .ue(UeConfig::new(ue, vec![CellId(0)], 1, -85.0), MobilityTrace::stationary(-85.0))
//!     .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
//!     .run();
//! assert_eq!(result.flows.len(), 1);
//! ```
//!
//! Registering a new scheme or tapping the event stream needs no simulator
//! changes: `.scheme("TOY", |ctx| ...)` adds a congestion controller under a
//! fresh registry key, and `.observe(...)` attaches any
//! [`Observer`].

use crate::backhaul::BackhaulConfig;
use crate::faults::FaultSchedule;
use crate::flow::FlowConfig;
use crate::observer::Observer;
use crate::scheme::SchemeTable;
use crate::sim::{CellTrajectory, SimConfig, SimResult, Simulation};
use pbe_cc_algorithms::registry::{SchemeCtx, SchemeId};
use pbe_cc_algorithms::CongestionControl;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_core::receiver::ReceiverFactory;
use pbe_stats::time::Duration;

/// Fluent builder for [`Simulation`]s.
pub struct SimBuilder {
    cellular: CellularConfig,
    load: CellLoadProfile,
    seed: u64,
    duration: Duration,
    ues: Vec<(UeConfig, MobilityTrace)>,
    flows: Vec<FlowConfig>,
    trajectories: Vec<CellTrajectory>,
    shards: Option<usize>,
    backhaul: Option<BackhaulConfig>,
    faults: Option<FaultSchedule>,
    table: SchemeTable,
    observers: Vec<Box<dyn Observer>>,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder::new()
    }
}

impl SimBuilder {
    /// A builder with the default three-cell network, no background load, a
    /// 10-second horizon and the standard scheme table.
    pub fn new() -> Self {
        SimBuilder {
            cellular: CellularConfig::default(),
            load: CellLoadProfile::none(),
            seed: 0,
            duration: Duration::from_secs(10),
            ues: Vec::new(),
            flows: Vec::new(),
            trajectories: Vec::new(),
            shards: None,
            backhaul: None,
            faults: None,
            table: SchemeTable::standard(),
            observers: Vec::new(),
        }
    }

    /// Start from an existing [`SimConfig`] (e.g. one deserialized from
    /// JSON) and extend it with schemes and observers.
    pub fn from_config(config: SimConfig) -> Self {
        SimBuilder {
            cellular: config.cellular,
            load: config.load,
            seed: config.seed,
            duration: config.duration,
            ues: config.ues,
            flows: config.flows,
            trajectories: config.trajectories,
            shards: config.shards,
            backhaul: config.backhaul,
            faults: config.faults,
            table: SchemeTable::standard(),
            observers: Vec::new(),
        }
    }

    /// Set the cell layout and the background-traffic profile together.
    pub fn cell_profile(mut self, cellular: CellularConfig, load: CellLoadProfile) -> Self {
        self.cellular = cellular;
        self.load = load;
        self
    }

    /// Set the experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the simulated duration.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Add a mobile device with its mobility trace.
    pub fn ue(mut self, config: UeConfig, trace: MobilityTrace) -> Self {
        self.ues.push((config, trace));
        self
    }

    /// Override the RSSI trajectory a UE sees towards one of its configured
    /// cells.  With one override per cell, the cells strengthen and fade
    /// independently as the device moves — a multi-cell trajectory, the
    /// input of every handover scenario.
    pub fn trajectory(mut self, ue: UeId, cell: CellId, trace: MobilityTrace) -> Self {
        self.trajectories.push(CellTrajectory { ue, cell, trace });
        self
    }

    /// Add an end-to-end flow.
    pub fn flow(mut self, flow: FlowConfig) -> Self {
        self.flows.push(flow);
        self
    }

    /// Tick the radio access network on the sharded engine with this many
    /// shards.  Results are byte-identical to the serial default for every
    /// shard count; only the wall clock changes.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Route every flow's wired segment through a shared backhaul topology
    /// instead of the per-flow private path (see
    /// [`SimConfig::backhaul`]).
    pub fn backhaul(mut self, backhaul: BackhaulConfig) -> Self {
        self.backhaul = Some(backhaul);
        self
    }

    /// Inject a deterministic fault schedule (cell outages, link flaps,
    /// decode-loss bursts; see [`SimConfig::faults`]).
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Replace the whole scheme table (rarely needed; prefer
    /// [`SimBuilder::scheme`]).
    pub fn scheme_table(mut self, table: SchemeTable) -> Self {
        self.table = table;
        self
    }

    /// Register a congestion-control scheme under a registry key.  Flows
    /// select it with [`SchemeChoice::named`](crate::flow::SchemeChoice::named).
    pub fn scheme<F>(mut self, id: impl Into<SchemeId>, factory: F) -> Self
    where
        F: Fn(&SchemeCtx) -> Box<dyn CongestionControl> + Send + Sync + 'static,
    {
        self.table.register_scheme(id, factory);
        self
    }

    /// Register a receiver-side agent factory for a scheme.
    pub fn receiver_agent(mut self, id: impl Into<SchemeId>, factory: ReceiverFactory) -> Self {
        self.table.register_receiver(id, factory);
        self
    }

    /// Attach an observer to the simulation's event stream.  Any
    /// `FnMut(&SimEvent)` closure qualifies.
    pub fn observe(mut self, observer: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// The accumulated scenario as a plain [`SimConfig`].
    pub fn to_config(&self) -> SimConfig {
        SimConfig {
            cellular: self.cellular.clone(),
            load: self.load,
            seed: self.seed,
            duration: self.duration,
            ues: self.ues.clone(),
            flows: self.flows.clone(),
            trajectories: self.trajectories.clone(),
            shards: self.shards,
            backhaul: self.backhaul.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Build the simulation.
    pub fn build(self) -> Simulation {
        let config = SimConfig {
            cellular: self.cellular,
            load: self.load,
            seed: self.seed,
            duration: self.duration,
            ues: self.ues,
            flows: self.flows,
            trajectories: self.trajectories,
            shards: self.shards,
            backhaul: self.backhaul,
            faults: self.faults,
        };
        Simulation::with_parts(config, self.table, self.observers)
    }

    /// Build and run to completion.
    pub fn run(self) -> SimResult {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::SchemeChoice;
    use crate::observer::SimEvent;
    use pbe_cellular::config::{CellId, UeId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn scenario(seed: u64) -> SimBuilder {
        let ue = UeId(1);
        let duration = Duration::from_secs(2);
        SimBuilder::new()
            .seed(seed)
            .duration(duration)
            .cell_profile(CellularConfig::default(), CellLoadProfile::none())
            .ue(
                UeConfig::new(ue, vec![CellId(0)], 1, -85.0),
                MobilityTrace::stationary(-85.0),
            )
            .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
    }

    #[test]
    fn builder_and_simconfig_paths_are_identical() {
        let via_builder = scenario(9).run();
        let mut direct = Simulation::new(scenario(9).to_config());
        let via_config = direct.run();
        assert_eq!(
            serde_json::to_string(&via_builder).unwrap(),
            serde_json::to_string(&via_config).unwrap(),
            "the builder is sugar, not a different engine"
        );
    }

    #[test]
    fn observers_see_the_event_stream() {
        let counts: Rc<RefCell<(u64, u64)>> = Rc::default();
        let seen = counts.clone();
        let result = scenario(5)
            .observe(move |event: &SimEvent<'_>| {
                let mut c = seen.borrow_mut();
                match event {
                    SimEvent::SubframeScheduled { .. } => c.0 += 1,
                    SimEvent::PacketDelivered {
                        delivered: true, ..
                    } => c.1 += 1,
                    _ => {}
                }
            })
            .run();
        let (subframes, delivered) = *counts.borrow();
        assert_eq!(subframes, 2_000, "one event per subframe");
        assert_eq!(
            delivered, result.flows[0].packets_delivered,
            "observer counted exactly the delivered packets"
        );
    }
}
