//! Flow configuration and results.

use crate::scheme::FIXED_SCHEME_ID;
use pbe_cc_algorithms::api::SchemeName;
use pbe_cc_algorithms::registry::SchemeId;
use pbe_cellular::config::UeId;
use pbe_stats::time::{Duration, Instant};
use pbe_stats::FlowSummary;
use serde::{Deserialize, Serialize};

/// Which congestion-control scheme drives a flow.
///
/// The first three variants are the pre-registry serde shims (their JSON
/// representation is unchanged); [`SchemeChoice::Named`] addresses any scheme
/// registered in the simulation's
/// [`SchemeTable`](crate::scheme::SchemeTable), so experiments can run
/// schemes this workspace has never heard of.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeChoice {
    /// PBE-CC: the sender from `pbe-core`, with the PDCCH decoders, message
    /// fusion and PBE client plugged in as the flow's receiver agent.
    Pbe,
    /// One of the baseline schemes (no receiver-side feedback beyond ACKs).
    Baseline(SchemeName),
    /// A fixed offered load with no congestion control at all (used by the
    /// carrier-aggregation and retransmission micro-experiments, and as the
    /// controlled competitor of §6.3.3).
    FixedRate,
    /// Any scheme registered in the simulation's scheme table under this
    /// registry key.
    Named(String),
}

impl SchemeChoice {
    /// A flow driven by an externally registered scheme.
    pub fn named(id: impl Into<String>) -> Self {
        SchemeChoice::Named(id.into())
    }

    /// The registry key this choice resolves to.  Display names flow from
    /// here — `SchemeId`'s `Display` is the single source of truth.
    pub fn id(&self) -> SchemeId {
        match self {
            SchemeChoice::Pbe => pbe_core::PBE_SCHEME_ID,
            SchemeChoice::Baseline(name) => SchemeId::from(*name),
            SchemeChoice::FixedRate => FIXED_SCHEME_ID,
            SchemeChoice::Named(name) => SchemeId::new(name.clone()),
        }
    }
}

impl std::fmt::Display for SchemeChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id().fmt(f)
    }
}

/// Application (traffic-generation) model of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AppModel {
    /// Bulk transfer: always has data to send (the paper's 20–60 s flows).
    Bulk,
    /// Constant offered load in bits per second, regardless of congestion
    /// control (paper Fig. 2 and Fig. 8 style experiments).
    ConstantRate(f64),
}

/// Configuration of one end-to-end flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Flow identifier (unique within a simulation).
    pub id: u32,
    /// The mobile device the flow terminates at.
    pub ue: UeId,
    /// Congestion-control scheme.
    pub scheme: SchemeChoice,
    /// Traffic model.
    pub app: AppModel,
    /// Time the flow starts sending.
    pub start: Instant,
    /// Time the flow stops sending.
    pub stop: Instant,
    /// One-way propagation delay of the wired path to this flow's server.
    pub server_one_way_delay: Duration,
    /// Optional wired bottleneck rate (bits per second).
    pub wired_bottleneck_bps: Option<f64>,
    /// Wired bottleneck queue limit in bytes.
    pub wired_queue_bytes: u64,
}

impl FlowConfig {
    /// A 20-second bulk flow with a ~40 ms RTT and no wired bottleneck — the
    /// paper's default stationary-link experiment.
    pub fn bulk(id: u32, ue: UeId, scheme: SchemeChoice, duration: Duration) -> Self {
        FlowConfig {
            id,
            ue,
            scheme,
            app: AppModel::Bulk,
            start: Instant::ZERO,
            stop: Instant::ZERO + duration,
            server_one_way_delay: Duration::from_millis(20),
            wired_bottleneck_bps: None,
            wired_queue_bytes: u64::MAX,
        }
    }

    /// Add a wired bottleneck (used by the Internet-bottleneck experiments).
    pub fn with_wired_bottleneck(mut self, rate_bps: f64, queue_bytes: u64) -> Self {
        self.wired_bottleneck_bps = Some(rate_bps);
        self.wired_queue_bytes = queue_bytes;
        self
    }

    /// Change the server's one-way propagation delay (RTT fairness sweeps).
    pub fn with_one_way_delay(mut self, delay: Duration) -> Self {
        self.server_one_way_delay = delay;
        self
    }

    /// Shift the flow's start/stop times.
    pub fn with_lifetime(mut self, start: Instant, stop: Instant) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }
}

/// Per-flow outcome of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowResult {
    /// The flow's configuration id.
    pub id: u32,
    /// The scheme label.
    pub scheme: String,
    /// Summary statistics (throughput, delay order statistics, …).
    pub summary: FlowSummary,
    /// Per-100 ms throughput timeline in Mbit/s.
    pub throughput_timeline_mbps: Vec<f64>,
    /// Per-100 ms mean one-way delay timeline in ms (`None` for idle windows).
    pub delay_timeline_ms: Vec<Option<f64>>,
    /// Packets lost (wired drops plus cellular HARQ failures).
    pub packets_lost: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_compose() {
        let f = FlowConfig::bulk(1, UeId(1), SchemeChoice::Pbe, Duration::from_secs(20))
            .with_wired_bottleneck(24e6, 250_000)
            .with_one_way_delay(Duration::from_millis(148))
            .with_lifetime(Instant::from_secs(5), Instant::from_secs(25));
        assert_eq!(f.scheme.to_string(), "PBE");
        assert_eq!(f.wired_bottleneck_bps, Some(24e6));
        assert_eq!(f.server_one_way_delay, Duration::from_millis(148));
        assert_eq!(f.start, Instant::from_secs(5));
        assert_eq!(f.stop, Instant::from_secs(25));
    }

    #[test]
    fn scheme_display_goes_through_the_registry_key() {
        assert_eq!(SchemeChoice::Baseline(SchemeName::Bbr).to_string(), "BBR");
        assert_eq!(SchemeChoice::FixedRate.to_string(), "Fixed");
        assert_eq!(SchemeChoice::named("TOY").to_string(), "TOY");
        assert_eq!(SchemeChoice::Pbe.id(), SchemeId::new("PBE"));
    }
}
