//! Deterministic end-to-end network simulator for the PBE-CC evaluation.
//!
//! The simulator reproduces the paper's testbed topology (Fig. 4 / Fig. 10a):
//! a content server on the wired Internet, a wired path with its own
//! propagation delay and (optionally) its own bottleneck link and queue, the
//! cellular base station with per-UE queues and carrier aggregation
//! (`pbe-cellular`), and the mobile receiver.  For PBE-CC flows the receiver
//! side additionally runs the control-channel decoders, message fusion and
//! the PBE client (`pbe-pdcch` + `pbe-core`), whose feedback is piggybacked
//! on every acknowledgement exactly as in the paper's §5 prototype.
//!
//! The clock advances in 1 ms subframes (the cellular MAC granularity);
//! within a tick the wired path and pacing operate at microsecond
//! resolution.  All randomness is derived from a single experiment seed, so
//! a run is exactly reproducible.

pub mod flow;
pub mod rate;
pub mod sim;
pub mod wired;

pub use flow::{AppModel, FlowConfig, FlowResult, SchemeChoice};
pub use rate::DeliveryRateEstimator;
pub use sim::{SimConfig, SimResult, Simulation};
pub use wired::WiredPath;
