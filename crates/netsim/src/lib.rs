//! Deterministic end-to-end network simulator for the PBE-CC evaluation.
//!
//! The simulator reproduces the paper's testbed topology (Fig. 4 / Fig. 10a):
//! a content server on the wired Internet, a wired path with its own
//! propagation delay and (optionally) its own bottleneck link and queue, the
//! cellular base station with per-UE queues and carrier aggregation
//! (`pbe-cellular`), and the mobile receiver.  The clock advances in 1 ms
//! subframes (the cellular MAC granularity); all randomness derives from a
//! single experiment seed, so a run is exactly reproducible.
//!
//! # Architecture: schemes, receiver agents, observers
//!
//! The engine in [`sim`] is *scheme-agnostic*; three composable APIs carry
//! everything scheme- or experiment-specific:
//!
//! * **Schemes** — congestion controllers are built from the string-keyed
//!   [`SchemeRegistry`](pbe_cc_algorithms::registry::SchemeRegistry).  The
//!   [`SchemeTable`] used by a simulation maps each
//!   registry key to its sender-side factory; PBE-CC is one entry like any
//!   baseline.  [`SchemeChoice::Named`] selects externally registered
//!   schemes, so an experiment can add one without touching this crate.
//! * **Receiver agents** — per-flow, receiver-side state machines
//!   implementing [`ReceiverAgent`] (re-exported from `pbe-core`): they
//!   observe each subframe's control channel, follow carrier events, and
//!   annotate ACKs.  PBE-CC's decoder → fusion → client pipeline
//!   ([`PbeReceiverAgent`](pbe_core::PbeReceiverAgent)) plugs in here; every
//!   other scheme gets the no-op agent.
//! * **Observers** — the engine narrates typed [`SimEvent`]s (subframes
//!   scheduled, ACKs processed, packets delivered, capacity estimates,
//!   carrier and bottleneck-state changes) to any registered
//!   [`Observer`].  The standard [`SimResult`] is assembled by the built-in
//!   metrics observer from the same stream the experiment binaries tap.
//!
//! # Entry points
//!
//! [`SimBuilder`] is the fluent front door:
//!
//! ```
//! use pbe_netsim::{SimBuilder, FlowConfig, SchemeChoice};
//! use pbe_cellular::config::{CellId, UeConfig, UeId};
//! use pbe_cellular::channel::MobilityTrace;
//! use pbe_stats::time::Duration;
//!
//! let duration = Duration::from_secs(1);
//! let ue = UeId(1);
//! let result = SimBuilder::new()
//!     .seed(1)
//!     .duration(duration)
//!     .ue(UeConfig::new(ue, vec![CellId(0)], 1, -85.0), MobilityTrace::stationary(-85.0))
//!     .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
//!     .run();
//! assert_eq!(result.flows.len(), 1);
//! ```
//!
//! [`Simulation::new`] with a plain [`SimConfig`] remains for serialized
//! scenarios and existing callers; both paths run the identical engine.
//! Scenario grids (scheme × trace × seed) and parallel execution live one
//! level up, in `pbe-bench`'s `sweep` module, which lowers each declarative
//! `ScenarioSpec` onto a [`SimConfig`] and runs it through this engine.

#![warn(missing_docs)]

pub mod backhaul;
pub mod builder;
pub mod faults;
pub mod flow;
pub mod metrics;
pub mod observer;
pub mod rate;
pub mod scheme;
pub mod sim;
pub mod wired;

pub use backhaul::{Backhaul, BackhaulConfig, BackhaulLinkResult, BackhaulLinkSpec, BackhaulRoute};
pub use builder::SimBuilder;
pub use faults::{
    CellOutage, DecodeLossBurst, FaultKind, FaultRecoveryRecord, FaultSchedule, FlapPolicy,
    LinkFlap,
};
pub use flow::{AppModel, FlowConfig, FlowResult, SchemeChoice};
pub use observer::{Observer, SimEvent};
pub use pbe_cellular::handover::HandoverEvent;
pub use pbe_core::receiver::{NullReceiverAgent, ReceiverAgent, ReceiverCtx, ReceiverFactory};
pub use rate::DeliveryRateEstimator;
pub use scheme::{SchemeTable, FIXED_SCHEME_ID};
pub use sim::{CellTrajectory, PrbInterval, SimConfig, SimResult, Simulation};
pub use wired::{LinkStats, WiredPath};
