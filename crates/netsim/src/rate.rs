//! Sender-side delivery-rate estimation.
//!
//! BBR-style algorithms need a per-ACK estimate of the rate at which data is
//! actually being delivered to the receiver.  The estimator keeps a short
//! sliding window of `(ack time, bytes acked)` samples and reports the byte
//! rate over that window.

use pbe_stats::time::{Duration, Instant};
use std::collections::VecDeque;

/// Windowed delivery-rate estimator.
#[derive(Debug, Clone)]
pub struct DeliveryRateEstimator {
    window: Duration,
    samples: VecDeque<(Instant, u64)>,
    total_bytes: u64,
}

impl DeliveryRateEstimator {
    /// Create an estimator with the given averaging window.
    pub fn new(window: Duration) -> Self {
        DeliveryRateEstimator {
            window: window.max(Duration::from_millis(1)),
            samples: VecDeque::new(),
            total_bytes: 0,
        }
    }

    /// Change the averaging window (typically the smoothed RTT).
    pub fn set_window(&mut self, window: Duration) {
        self.window = window.max(Duration::from_millis(1));
    }

    /// Record an acknowledgement of `bytes` at `now` and return the current
    /// delivery-rate estimate in bits per second.
    pub fn on_ack(&mut self, now: Instant, bytes: u64) -> f64 {
        self.samples.push_back((now, bytes));
        self.total_bytes += bytes;
        self.expire(now);
        self.rate_bps(now)
    }

    fn expire(&mut self, now: Instant) {
        while let Some((t, b)) = self.samples.front() {
            if now.saturating_since(*t) > self.window {
                self.total_bytes -= *b;
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current rate estimate in bits per second.
    pub fn rate_bps(&self, now: Instant) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let oldest = self.samples.front().expect("non-empty").0;
        let span = now
            .saturating_since(oldest)
            .as_secs_f64()
            .max(self.window.as_secs_f64() * 0.25);
        self.total_bytes as f64 * 8.0 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_estimates_its_rate() {
        let mut est = DeliveryRateEstimator::new(Duration::from_millis(100));
        // 1500 B per ms = 12 Mbit/s.
        let mut rate = 0.0;
        for ms in 1..=500u64 {
            rate = est.on_ack(Instant::from_millis(ms), 1500);
        }
        assert!((rate - 12e6).abs() / 12e6 < 0.1, "rate = {rate}");
    }

    #[test]
    fn rate_decays_when_acks_stop() {
        let mut est = DeliveryRateEstimator::new(Duration::from_millis(100));
        for ms in 1..=200u64 {
            est.on_ack(Instant::from_millis(ms), 1500);
        }
        let after_gap = est.on_ack(Instant::from_millis(400), 1500);
        assert!(after_gap < 6e6, "old samples expired: {after_gap}");
    }

    #[test]
    fn empty_estimator_reports_zero() {
        let est = DeliveryRateEstimator::new(Duration::from_millis(100));
        assert_eq!(est.rate_bps(Instant::from_millis(10)), 0.0);
    }

    #[test]
    fn window_can_be_resized() {
        let mut est = DeliveryRateEstimator::new(Duration::from_millis(10));
        est.set_window(Duration::from_millis(200));
        for ms in 1..=100u64 {
            est.on_ack(Instant::from_millis(ms), 3000);
        }
        let rate = est.rate_bps(Instant::from_millis(100));
        assert!((rate - 24e6).abs() / 24e6 < 0.15, "rate = {rate}");
    }
}
