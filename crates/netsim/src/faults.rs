//! Deterministic fault injection: the schedule of everything that goes
//! wrong, on purpose, in one simulation run.
//!
//! A [`FaultSchedule`] is part of [`SimConfig`](crate::SimConfig) (a
//! serde-defaulted field, so every existing config and stored content key is
//! untouched) and describes three fault families, all keyed purely by
//! simulation time and configuration — never by wall clock, thread timing or
//! worker completion order — so a faulted run is byte-identical across shard
//! counts, exactly like a healthy one:
//!
//! * **Cell outages** ([`CellOutage`]): the cell stops scheduling for a
//!   window.  Resident UEs see the cell at the RLF floor (−200 dBm), declare
//!   radio-link failure after [`FaultSchedule::rlf_detection_ms`], and
//!   re-select the best surviving configured cell through the existing
//!   A3/X2 handover machinery (queued data forwarded, RLC re-established).
//! * **Backhaul link flaps** ([`LinkFlap`]): the link carries nothing for
//!   the window.  Queued packets drain when the link returns or drop at
//!   admission, per [`FlapPolicy`], and flows whose route crosses the
//!   flapped link re-route over the aggregation default path while it is
//!   down.
//! * **Control-channel decode loss** ([`DecodeLossBurst`]): the PDCCH
//!   decoder of one flow sees a gap.  PBE-CC's receiver pipeline rides the
//!   burst on its held estimate (the PR-4 estimate-hold path) and
//!   re-converges once decoding resumes.
//!
//! Every fault surfaces as a `SimEvent::Fault*` variant on the observer
//! stream, and the metrics collector folds them into
//! [`SimResult::fault_recovery`](crate::SimResult) — time-to-reconnect,
//! packets stranded, and the capacity-estimate error accumulated while the
//! fault was active.

use pbe_cellular::config::CellId;
use serde::{Deserialize, Serialize};

/// RSRP reported for a cell that is down: far below any A3 threshold, so
/// handover evaluation never selects an out-of-service cell.
pub use pbe_cellular::network::OUTAGE_RSRP_DBM;

/// Default radio-link-failure detection delay, milliseconds (how long a
/// cell must be dark before its residents re-select).
pub const DEFAULT_RLF_DETECTION_MS: u64 = 40;

/// One scheduled cell outage: the cell schedules nothing in
/// `[start_ms, end_ms)` and its resident UEs declare RLF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellOutage {
    /// The cell that goes dark.
    pub cell: CellId,
    /// First simulated millisecond of the outage.
    pub start_ms: u64,
    /// First simulated millisecond after the outage (exclusive).
    pub end_ms: u64,
}

/// What happens to traffic that reaches a flapped backhaul link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlapPolicy {
    /// Packets wait in the link queue and serialize once the flap ends
    /// (subject to the normal queue capacity).
    #[default]
    Drain,
    /// Packets arriving during the flap are dropped at admission.
    Drop,
}

/// One scheduled backhaul link flap: the named link carries nothing in
/// `[start_ms, end_ms)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// Name of the flapped link (a `BackhaulLinkSpec::name`).
    pub link: String,
    /// First simulated millisecond of the flap.
    pub start_ms: u64,
    /// First simulated millisecond after the flap (exclusive).
    pub end_ms: u64,
    /// Queueing policy while the link is down.
    #[serde(default)]
    pub policy: FlapPolicy,
}

/// One scheduled control-channel decode-loss burst: the flow's PDCCH
/// pipeline decodes nothing in `[start_ms, end_ms)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeLossBurst {
    /// The affected flow.
    pub flow: u32,
    /// First simulated millisecond of the burst.
    pub start_ms: u64,
    /// First simulated millisecond after the burst (exclusive).
    pub end_ms: u64,
}

/// The complete fault schedule of one run.
///
/// Empty by default (and elided from content keys when empty), so a config
/// without faults hashes and runs exactly as before the subsystem existed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Scheduled cell outages.
    #[serde(default)]
    pub cell_outages: Vec<CellOutage>,
    /// Scheduled backhaul link flaps.
    #[serde(default)]
    pub link_flaps: Vec<LinkFlap>,
    /// Scheduled control-channel decode-loss bursts.
    #[serde(default)]
    pub decode_loss: Vec<DecodeLossBurst>,
    /// Milliseconds a cell must be dark before its resident UEs declare
    /// radio-link failure and re-select (3GPP T310-style timer, scaled to
    /// the simulator's subframe clock).  `None` means
    /// [`DEFAULT_RLF_DETECTION_MS`].
    #[serde(default)]
    pub rlf_detection_ms: Option<u64>,
}

impl FaultSchedule {
    /// A schedule with no faults at all (what `SimConfig` defaults to).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// The RLF detection delay in force, applying the default when the
    /// schedule does not override it.
    pub fn rlf_detection(&self) -> u64 {
        self.rlf_detection_ms.unwrap_or(DEFAULT_RLF_DETECTION_MS)
    }

    /// True when the schedule contains no fault of any kind.
    pub fn is_empty(&self) -> bool {
        self.cell_outages.is_empty() && self.link_flaps.is_empty() && self.decode_loss.is_empty()
    }

    /// Check window sanity: every fault must have `start_ms < end_ms`.
    ///
    /// Returns the first violation as a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        for o in &self.cell_outages {
            if o.start_ms >= o.end_ms {
                return Err(format!(
                    "cell outage of {} has an empty window [{}, {})",
                    o.cell, o.start_ms, o.end_ms
                ));
            }
        }
        for f in &self.link_flaps {
            if f.start_ms >= f.end_ms {
                return Err(format!(
                    "link flap of `{}` has an empty window [{}, {})",
                    f.link, f.start_ms, f.end_ms
                ));
            }
        }
        for d in &self.decode_loss {
            if d.start_ms >= d.end_ms {
                return Err(format!(
                    "decode-loss burst of flow {} has an empty window [{}, {})",
                    d.flow, d.start_ms, d.end_ms
                ));
            }
        }
        Ok(())
    }

    /// True if `cell` is scheduled down at millisecond `t_ms`.
    pub fn cell_is_down(&self, cell: CellId, t_ms: u64) -> bool {
        self.cell_outages
            .iter()
            .any(|o| o.cell == cell && (o.start_ms..o.end_ms).contains(&t_ms))
    }
}

/// The fault family a recovery record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A scheduled cell outage.
    CellOutage,
    /// A scheduled backhaul link flap.
    LinkFlap,
    /// A scheduled control-channel decode-loss burst.
    DecodeLoss,
}

/// Recovery metrics of one injected fault, assembled by the metrics
/// collector and reported in [`SimResult::fault_recovery`](crate::SimResult).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecoveryRecord {
    /// Which fault family this record describes.
    pub kind: FaultKind,
    /// Human-readable fault target: the cell id, link name, or flow id.
    pub target: String,
    /// Scheduled start of the fault window.
    pub start_ms: u64,
    /// Scheduled end of the fault window.
    pub end_ms: u64,
    /// UEs resident on the faulted element when the fault hit (cell
    /// outages only; empty otherwise).
    #[serde(default)]
    pub affected_ues: Vec<u32>,
    /// Per-UE time-to-reconnect in milliseconds, measured from the outage
    /// start to the RLF re-selection that moved the UE to a live cell.
    #[serde(default)]
    pub reconnect_ms: Vec<(u32, u64)>,
    /// Downlink packets still queued at the faulted cell when its residents
    /// re-selected (data the RLF could not forward).
    #[serde(default)]
    pub packets_stranded: u64,
    /// Mean relative capacity-estimate error during the fault window,
    /// against the last estimate before the fault (0 when no flow produced
    /// estimates in the window).
    #[serde(default)]
    pub estimate_error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_is_empty_and_elides_to_nothing() {
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.rlf_detection(), DEFAULT_RLF_DETECTION_MS);
        let mut s = FaultSchedule::none();
        s.rlf_detection_ms = Some(100);
        assert_eq!(s.rlf_detection(), 100, "explicit value wins");
        // Deserializing an empty object applies every serde default.
        let parsed: FaultSchedule = serde_json::from_str("{}").unwrap();
        assert_eq!(parsed, FaultSchedule::none());
    }

    #[test]
    fn validate_rejects_empty_windows() {
        let mut s = FaultSchedule::none();
        s.cell_outages.push(CellOutage {
            cell: CellId(1),
            start_ms: 100,
            end_ms: 100,
        });
        assert!(s.validate().is_err());
        s.cell_outages[0].end_ms = 200;
        assert!(s.validate().is_ok());
        s.link_flaps.push(LinkFlap {
            link: "agg".into(),
            start_ms: 5,
            end_ms: 4,
            policy: FlapPolicy::Drop,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn cell_outage_window_is_half_open() {
        let mut s = FaultSchedule::none();
        s.cell_outages.push(CellOutage {
            cell: CellId(2),
            start_ms: 100,
            end_ms: 200,
        });
        assert!(!s.cell_is_down(CellId(2), 99));
        assert!(s.cell_is_down(CellId(2), 100));
        assert!(s.cell_is_down(CellId(2), 199));
        assert!(!s.cell_is_down(CellId(2), 200));
        assert!(!s.cell_is_down(CellId(3), 150));
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let mut s = FaultSchedule::none();
        s.cell_outages.push(CellOutage {
            cell: CellId(0),
            start_ms: 1_000,
            end_ms: 2_000,
        });
        s.link_flaps.push(LinkFlap {
            link: "cell0".into(),
            start_ms: 500,
            end_ms: 900,
            policy: FlapPolicy::Drain,
        });
        s.decode_loss.push(DecodeLossBurst {
            flow: 1,
            start_ms: 3_000,
            end_ms: 3_200,
        });
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
