//! The wired half of the end-to-end path.
//!
//! Models the path between the content server and the cellular base station:
//! a one-way propagation delay plus, optionally, a bottleneck link with a
//! FIFO queue (used by the Internet-bottleneck experiments).  The reverse
//! (acknowledgement) path has the same propagation delay and is assumed
//! uncongested, as in the paper's setup.

use pbe_stats::time::{transmission_time, Duration, Instant};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Byte and packet counters of one wired link (shared between the per-flow
/// [`WiredPath`] and the shared-backhaul links of
/// [`crate::backhaul::Backhaul`], so telemetry reads identically whichever
/// wired model a scenario uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub admitted_packets: u64,
    /// Bytes accepted into the queue.
    pub admitted_bytes: u64,
    /// Packets that finished crossing the link.
    pub forwarded_packets: u64,
    /// Bytes that finished crossing the link.
    pub forwarded_bytes: u64,
    /// Packets refused by the full queue.
    pub dropped_packets: u64,
    /// Bytes refused by the full queue.
    pub dropped_bytes: u64,
    /// Packets ECN-marked by the queue (always 0 for links without a
    /// marking threshold, [`WiredPath`] included).
    pub marked_packets: u64,
}

/// A packet travelling the wired path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WiredPacket {
    /// Globally unique packet id.
    pub id: u64,
    /// Payload bytes.
    pub bytes: u32,
    /// Time the sender released the packet.
    pub sent_at: Instant,
    /// Time the packet will arrive at the base station.
    pub arrives_at: Instant,
}

/// Configuration and state of one direction of the wired path.
#[derive(Debug, Clone)]
pub struct WiredPath {
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Bottleneck link rate in bits per second (`None` = effectively
    /// unlimited, i.e. the wireless link is always the bottleneck).
    pub bottleneck_bps: Option<f64>,
    /// Maximum bytes the bottleneck queue holds before dropping.
    pub queue_limit_bytes: u64,
    /// Time the bottleneck link becomes free again.
    link_free_at: Instant,
    /// Bytes currently queued at the bottleneck.
    queued_bytes: u64,
    in_flight: VecDeque<WiredPacket>,
    stats: LinkStats,
}

impl WiredPath {
    /// A path with no wired bottleneck (the common, wireless-bottleneck case).
    pub fn unconstrained(propagation: Duration) -> Self {
        WiredPath {
            propagation,
            bottleneck_bps: None,
            queue_limit_bytes: u64::MAX,
            link_free_at: Instant::ZERO,
            queued_bytes: 0,
            in_flight: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    /// A path with a wired bottleneck of the given rate and queue size.
    pub fn with_bottleneck(
        propagation: Duration,
        bottleneck_bps: f64,
        queue_limit_bytes: u64,
    ) -> Self {
        WiredPath {
            propagation,
            bottleneck_bps: Some(bottleneck_bps),
            queue_limit_bytes,
            link_free_at: Instant::ZERO,
            queued_bytes: 0,
            in_flight: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    /// Bytes currently waiting at the wired bottleneck.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Byte and packet counters of the path's bottleneck link.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Send a packet into the path at `now`.  Returns `false` if the packet
    /// was dropped at the bottleneck queue.
    pub fn send(&mut self, id: u64, bytes: u32, now: Instant) -> bool {
        let arrives_at = match self.bottleneck_bps {
            None => now + self.propagation,
            Some(rate) => {
                if self.queued_bytes + u64::from(bytes) > self.queue_limit_bytes {
                    self.stats.dropped_packets += 1;
                    self.stats.dropped_bytes += u64::from(bytes);
                    return false;
                }
                self.queued_bytes += u64::from(bytes);
                let start = self.link_free_at.max(now);
                let tx = transmission_time(bytes as usize, rate);
                self.link_free_at = start + tx;
                self.link_free_at + self.propagation
            }
        };
        self.stats.admitted_packets += 1;
        self.stats.admitted_bytes += u64::from(bytes);
        self.in_flight.push_back(WiredPacket {
            id,
            bytes,
            sent_at: now,
            arrives_at,
        });
        true
    }

    /// Packets that have reached the far end by `now` (in order).
    pub fn arrivals(&mut self, now: Instant) -> Vec<WiredPacket> {
        let mut out = Vec::new();
        while let Some(front) = self.in_flight.front() {
            if front.arrives_at <= now {
                let p = self.in_flight.pop_front().expect("non-empty");
                if self.bottleneck_bps.is_some() {
                    self.queued_bytes = self.queued_bytes.saturating_sub(u64::from(p.bytes));
                }
                self.stats.forwarded_packets += 1;
                self.stats.forwarded_bytes += u64::from(p.bytes);
                out.push(p);
            } else {
                break;
            }
        }
        out
    }

    /// Packets currently inside the path (queued or propagating).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_path_is_pure_delay() {
        let mut path = WiredPath::unconstrained(Duration::from_millis(20));
        assert!(path.send(1, 1500, Instant::from_millis(0)));
        assert!(path.send(2, 1500, Instant::from_millis(1)));
        assert!(path.arrivals(Instant::from_millis(19)).is_empty());
        let a = path.arrivals(Instant::from_millis(20));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].id, 1);
        let b = path.arrivals(Instant::from_millis(25));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].id, 2);
        assert_eq!(path.in_flight(), 0);
        assert_eq!(path.stats().dropped_packets, 0);
    }

    #[test]
    fn bottleneck_serialises_packets() {
        // 12 Mbit/s: a 1500-byte packet takes 1 ms to serialise.
        let mut path = WiredPath::with_bottleneck(Duration::from_millis(10), 12e6, 1_000_000);
        for i in 0..5u64 {
            assert!(path.send(i, 1500, Instant::ZERO));
        }
        // First packet arrives at 1 + 10 ms, the fifth at 5 + 10 ms.
        assert_eq!(path.arrivals(Instant::from_millis(11)).len(), 1);
        assert_eq!(path.arrivals(Instant::from_millis(14)).len(), 3);
        assert_eq!(path.arrivals(Instant::from_millis(15)).len(), 1);
    }

    #[test]
    fn queue_overflow_drops_packets() {
        let mut path = WiredPath::with_bottleneck(Duration::from_millis(10), 1e6, 4_000);
        let mut accepted = 0;
        for i in 0..10u64 {
            if path.send(i, 1500, Instant::ZERO) {
                accepted += 1;
            }
        }
        assert!(accepted < 10);
        assert_eq!(path.stats().dropped_packets, 10 - accepted);
        assert_eq!(path.stats().admitted_packets, accepted);
        // Queue drains over time, making room again.
        let _ = path.arrivals(Instant::from_secs(1));
        assert!(path.send(100, 1500, Instant::from_secs(1)));
    }

    #[test]
    fn queued_bytes_tracks_backlog() {
        let mut path = WiredPath::with_bottleneck(Duration::from_millis(5), 12e6, 100_000);
        for i in 0..10u64 {
            path.send(i, 1500, Instant::ZERO);
        }
        assert_eq!(path.queued_bytes(), 15_000);
        let _ = path.arrivals(Instant::from_millis(8));
        assert!(path.queued_bytes() < 15_000);
    }
}
