//! The built-in metrics observer: from the event stream to [`SimResult`].
//!
//! Everything the simulator reports — per-flow summaries, throughput/delay
//! timelines, the primary-cell PRB fairness timeline, carrier-aggregation
//! events — is derived purely from the [`SimEvent`] stream.  The engine
//! registers one [`MetricsCollector`] for every run; experiment binaries
//! that need a different cut of the same telemetry register their own
//! observers beside it.

use crate::backhaul::BackhaulLinkResult;
use crate::flow::{FlowConfig, FlowResult};
use crate::observer::{Observer, SimEvent};
use crate::sim::{PrbInterval, SimResult};
use pbe_cellular::carrier::CaEvent;
use pbe_cellular::config::{CellId, UeId};
use pbe_cellular::handover::HandoverEvent;
use pbe_stats::summary::FlowSummaryBuilder;
use std::collections::HashMap;

struct FlowMetrics {
    id: u32,
    scheme: String,
    summary: FlowSummaryBuilder,
    delivered: u64,
    lost: u64,
    internet_bottleneck_fraction: f64,
    carrier_aggregation_triggered: bool,
}

/// Accumulates the standard [`SimResult`] from the event stream.
pub struct MetricsCollector {
    flows: Vec<FlowMetrics>,
    index_of: HashMap<u32, usize>,
    /// UE → flow id used for the primary-cell PRB timeline.
    flow_of_ue: HashMap<UeId, u32>,
    primary_cell: CellId,
    ca_events: Vec<CaEvent>,
    handovers: Vec<HandoverEvent>,
    prb_timeline: Vec<PrbInterval>,
    prb_accum: HashMap<u32, f64>,
    prb_accum_start_ms: u64,
    /// Per-link 100 ms maximum-occupancy windows (empty without a backhaul).
    bh_timeline: Vec<Vec<u64>>,
    /// Current window's maximum occupancy per link.
    bh_accum: Vec<u64>,
    /// Samples taken since the last window closed (0 = nothing to flush).
    bh_samples_since_close: u64,
    bh_links: Vec<BackhaulLinkResult>,
}

impl MetricsCollector {
    /// Set up collection for the given flows and primary cell.
    pub fn new(flows: &[FlowConfig], primary_cell: CellId) -> Self {
        let mut flow_of_ue = HashMap::new();
        for f in flows {
            // The first configured flow of a UE owns the PRB attribution,
            // mirroring the historical accounting.
            flow_of_ue.entry(f.ue).or_insert(f.id);
        }
        MetricsCollector {
            flows: flows
                .iter()
                .map(|f| FlowMetrics {
                    id: f.id,
                    scheme: f.scheme.to_string(),
                    summary: FlowSummaryBuilder::new(f.scheme.to_string()),
                    delivered: 0,
                    lost: 0,
                    internet_bottleneck_fraction: 0.0,
                    carrier_aggregation_triggered: false,
                })
                .collect(),
            index_of: flows.iter().enumerate().map(|(i, f)| (f.id, i)).collect(),
            flow_of_ue,
            primary_cell,
            ca_events: Vec::new(),
            handovers: Vec::new(),
            prb_timeline: Vec::new(),
            prb_accum: HashMap::new(),
            prb_accum_start_ms: 0,
            bh_timeline: Vec::new(),
            bh_accum: Vec::new(),
            bh_samples_since_close: 0,
            bh_links: Vec::new(),
        }
    }

    /// Finish collection and assemble the result.
    pub fn finish(mut self) -> SimResult {
        let flows = self
            .flows
            .iter_mut()
            .map(|m| {
                m.summary
                    .set_internet_bottleneck_fraction(m.internet_bottleneck_fraction);
                m.summary
                    .set_carrier_aggregation_triggered(m.carrier_aggregation_triggered);
                let windows = m.summary.windows().windows();
                FlowResult {
                    id: m.id,
                    scheme: m.scheme.clone(),
                    summary: m.summary.build(),
                    throughput_timeline_mbps: windows.iter().map(|w| w.throughput_mbps).collect(),
                    delay_timeline_ms: windows.iter().map(|w| w.mean_delay_ms).collect(),
                    packets_lost: m.lost,
                    packets_delivered: m.delivered,
                }
            })
            .collect();
        // Flush the final (possibly partial) backhaul sampling window and
        // pair each link summary with its timeline.
        if self.bh_samples_since_close > 0 {
            if self.bh_timeline.len() < self.bh_accum.len() {
                self.bh_timeline.resize_with(self.bh_accum.len(), Vec::new);
            }
            for (link, &max) in self.bh_accum.iter().enumerate() {
                self.bh_timeline[link].push(max);
            }
        }
        for (link, result) in self.bh_links.iter_mut().enumerate() {
            if let Some(windows) = self.bh_timeline.get(link) {
                result.queue_timeline_bytes = windows.clone();
            }
        }
        SimResult {
            flows,
            primary_prb_timeline: self.prb_timeline,
            ca_events: self.ca_events,
            handovers: self.handovers,
            backhaul_links: self.bh_links,
        }
    }
}

impl Observer for MetricsCollector {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::PacketDelivered {
                flow,
                at,
                bytes,
                one_way,
                delivered,
                ..
            } => {
                let Some(&idx) = self.index_of.get(flow) else {
                    return;
                };
                let m = &mut self.flows[idx];
                if *delivered {
                    m.delivered += 1;
                    m.summary.record_packet(*at, *bytes, *one_way);
                } else {
                    m.lost += 1;
                }
            }
            SimEvent::SubframeScheduled { now, report } => {
                for cr in &report.cell_reports {
                    if cr.cell != self.primary_cell {
                        continue;
                    }
                    // Every tracked flow owns an interval entry even when it
                    // was never scheduled (intervals report explicit zeros);
                    // refill once after each interval's drain.
                    if self.prb_accum.len() != self.flow_of_ue.len() {
                        for flow_id in self.flow_of_ue.values() {
                            self.prb_accum.entry(*flow_id).or_insert(0.0);
                        }
                    }
                    // One pass over the subframe's allocation list instead of
                    // one full `allocated_to` scan per tracked UE.
                    for a in &cr.prb_usage.allocations {
                        if let Some(flow_id) = self.flow_of_ue.get(&a.ue) {
                            if let Some(total) = self.prb_accum.get_mut(flow_id) {
                                *total += f64::from(a.num_prbs);
                            }
                        }
                    }
                }
                let t_ms = now.as_millis();
                if (t_ms + 1) % 100 == 0 {
                    let mut per_ue = HashMap::new();
                    for (flow_id, total) in self.prb_accum.drain() {
                        per_ue.insert(flow_id, total / 100.0);
                    }
                    self.prb_timeline.push(PrbInterval {
                        start_s: self.prb_accum_start_ms as f64 / 1000.0,
                        per_ue,
                    });
                    self.prb_accum_start_ms = t_ms + 1;
                }
            }
            SimEvent::CaTriggered { event } => self.ca_events.push(*event),
            SimEvent::Handover { at, ue, from, to } => self.handovers.push(HandoverEvent {
                ue: *ue,
                from: *from,
                to: *to,
                at: *at,
            }),
            SimEvent::FlowClosed {
                flow,
                internet_bottleneck_fraction,
                carrier_aggregation_triggered,
            } => {
                let Some(&idx) = self.index_of.get(flow) else {
                    return;
                };
                let m = &mut self.flows[idx];
                m.internet_bottleneck_fraction = *internet_bottleneck_fraction;
                m.carrier_aggregation_triggered = *carrier_aggregation_triggered;
            }
            SimEvent::BackhaulSampled { now, queued_bytes } => {
                if self.bh_accum.len() < queued_bytes.len() {
                    self.bh_accum.resize(queued_bytes.len(), 0);
                }
                for (acc, &q) in self.bh_accum.iter_mut().zip(queued_bytes.iter()) {
                    *acc = (*acc).max(q);
                }
                self.bh_samples_since_close += 1;
                // Windows close on the same 100 ms boundaries as the PRB
                // timeline, so the two plots line up sample for sample.
                let t_ms = now.as_millis();
                if (t_ms + 1) % 100 == 0 {
                    if self.bh_timeline.len() < self.bh_accum.len() {
                        self.bh_timeline.resize_with(self.bh_accum.len(), Vec::new);
                    }
                    for (link, acc) in self.bh_accum.iter_mut().enumerate() {
                        self.bh_timeline[link].push(*acc);
                        *acc = 0;
                    }
                    self.bh_samples_since_close = 0;
                }
            }
            SimEvent::BackhaulLinkClosed {
                link,
                name,
                rate_bps,
                stats,
                max_queued_bytes,
                p50_queue_delay_ms,
                p95_queue_delay_ms,
            } => {
                debug_assert_eq!(*link, self.bh_links.len(), "links close in order");
                self.bh_links.push(BackhaulLinkResult {
                    name: (*name).to_string(),
                    rate_bps: *rate_bps,
                    stats: *stats,
                    max_queued_bytes: *max_queued_bytes,
                    p50_queue_delay_ms: *p50_queue_delay_ms,
                    p95_queue_delay_ms: *p95_queue_delay_ms,
                    queue_timeline_bytes: Vec::new(),
                });
            }
            SimEvent::AckProcessed { .. }
            | SimEvent::CapacityEstimated { .. }
            | SimEvent::StateChanged { .. }
            | SimEvent::BackhaulMark { .. }
            | SimEvent::BackhaulDrop { .. } => {}
        }
    }
}
