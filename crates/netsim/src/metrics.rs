//! The built-in metrics observer: from the event stream to [`SimResult`].
//!
//! Everything the simulator reports — per-flow summaries, throughput/delay
//! timelines, the primary-cell PRB fairness timeline, carrier-aggregation
//! events — is derived purely from the [`SimEvent`] stream.  The engine
//! registers one [`MetricsCollector`] for every run; experiment binaries
//! that need a different cut of the same telemetry register their own
//! observers beside it.

use crate::backhaul::BackhaulLinkResult;
use crate::faults::{FaultKind, FaultRecoveryRecord};
use crate::flow::{FlowConfig, FlowResult};
use crate::observer::{Observer, SimEvent};
use crate::sim::{PrbInterval, SimResult};
use pbe_cellular::carrier::CaEvent;
use pbe_cellular::config::{CellId, UeId};
use pbe_cellular::handover::HandoverEvent;
use pbe_stats::summary::FlowSummaryBuilder;
use std::collections::HashMap;

/// One fault whose window is still open: recovery metrics accumulate here
/// until the matching end event (or the end of the run) closes it.
struct OpenFault {
    kind: FaultKind,
    target: String,
    start_ms: u64,
    /// Known up front only for decode-loss bursts (their end rides on the
    /// start event); outages and flaps close on their end events.
    end_ms: Option<u64>,
    affected_ues: Vec<u32>,
    reconnect_ms: Vec<(u32, u64)>,
    packets_stranded: u64,
    /// Restrict estimate-error accounting to one flow (decode loss); `None`
    /// accumulates over every flow.
    flow_filter: Option<u32>,
    /// Last capacity estimate per flow just before the fault hit.
    baseline: HashMap<u32, f64>,
    err_sum: f64,
    err_count: u64,
}

impl OpenFault {
    fn close(self, end_ms: u64) -> FaultRecoveryRecord {
        FaultRecoveryRecord {
            kind: self.kind,
            target: self.target,
            start_ms: self.start_ms,
            end_ms: self.end_ms.unwrap_or(end_ms),
            affected_ues: self.affected_ues,
            reconnect_ms: self.reconnect_ms,
            packets_stranded: self.packets_stranded,
            estimate_error: if self.err_count > 0 {
                self.err_sum / self.err_count as f64
            } else {
                0.0
            },
        }
    }
}

struct FlowMetrics {
    id: u32,
    scheme: String,
    summary: FlowSummaryBuilder,
    delivered: u64,
    lost: u64,
    internet_bottleneck_fraction: f64,
    carrier_aggregation_triggered: bool,
}

/// Accumulates the standard [`SimResult`] from the event stream.
pub struct MetricsCollector {
    flows: Vec<FlowMetrics>,
    index_of: HashMap<u32, usize>,
    /// UE → flow id used for the primary-cell PRB timeline.
    flow_of_ue: HashMap<UeId, u32>,
    primary_cell: CellId,
    ca_events: Vec<CaEvent>,
    handovers: Vec<HandoverEvent>,
    prb_timeline: Vec<PrbInterval>,
    prb_accum: HashMap<u32, f64>,
    prb_accum_start_ms: u64,
    /// Per-link 100 ms maximum-occupancy windows (empty without a backhaul).
    bh_timeline: Vec<Vec<u64>>,
    /// Current window's maximum occupancy per link.
    bh_accum: Vec<u64>,
    /// Samples taken since the last window closed (0 = nothing to flush).
    bh_samples_since_close: u64,
    bh_links: Vec<BackhaulLinkResult>,
    /// Last capacity estimate seen per flow (baseline for fault error).
    last_capacity: HashMap<u32, f64>,
    open_faults: Vec<OpenFault>,
    fault_records: Vec<FaultRecoveryRecord>,
    /// Newest subframe time seen, for closing still-open faults at the end.
    last_subframe_ms: u64,
}

impl MetricsCollector {
    /// Set up collection for the given flows and primary cell.
    pub fn new(flows: &[FlowConfig], primary_cell: CellId) -> Self {
        let mut flow_of_ue = HashMap::new();
        for f in flows {
            // The first configured flow of a UE owns the PRB attribution,
            // mirroring the historical accounting.
            flow_of_ue.entry(f.ue).or_insert(f.id);
        }
        MetricsCollector {
            flows: flows
                .iter()
                .map(|f| FlowMetrics {
                    id: f.id,
                    scheme: f.scheme.to_string(),
                    summary: FlowSummaryBuilder::new(f.scheme.to_string()),
                    delivered: 0,
                    lost: 0,
                    internet_bottleneck_fraction: 0.0,
                    carrier_aggregation_triggered: false,
                })
                .collect(),
            index_of: flows.iter().enumerate().map(|(i, f)| (f.id, i)).collect(),
            flow_of_ue,
            primary_cell,
            ca_events: Vec::new(),
            handovers: Vec::new(),
            prb_timeline: Vec::new(),
            prb_accum: HashMap::new(),
            prb_accum_start_ms: 0,
            bh_timeline: Vec::new(),
            bh_accum: Vec::new(),
            bh_samples_since_close: 0,
            bh_links: Vec::new(),
            last_capacity: HashMap::new(),
            open_faults: Vec::new(),
            fault_records: Vec::new(),
            last_subframe_ms: 0,
        }
    }

    fn open_fault(&mut self, kind: FaultKind, target: String, start_ms: u64) -> &mut OpenFault {
        self.open_faults.push(OpenFault {
            kind,
            target,
            start_ms,
            end_ms: None,
            affected_ues: Vec::new(),
            reconnect_ms: Vec::new(),
            packets_stranded: 0,
            flow_filter: None,
            baseline: self.last_capacity.clone(),
            err_sum: 0.0,
            err_count: 0,
        });
        self.open_faults.last_mut().expect("just pushed")
    }

    /// Close the newest open fault matching `kind` and `target`.
    fn close_fault(&mut self, kind: FaultKind, target: &str, end_ms: u64) {
        if let Some(pos) = self
            .open_faults
            .iter()
            .rposition(|f| f.kind == kind && f.target == target)
        {
            let fault = self.open_faults.remove(pos);
            self.fault_records.push(fault.close(end_ms));
        }
    }

    /// Finish collection and assemble the result.
    pub fn finish(mut self) -> SimResult {
        let flows = self
            .flows
            .iter_mut()
            .map(|m| {
                m.summary
                    .set_internet_bottleneck_fraction(m.internet_bottleneck_fraction);
                m.summary
                    .set_carrier_aggregation_triggered(m.carrier_aggregation_triggered);
                let windows = m.summary.windows().windows();
                FlowResult {
                    id: m.id,
                    scheme: m.scheme.clone(),
                    summary: m.summary.build(),
                    throughput_timeline_mbps: windows.iter().map(|w| w.throughput_mbps).collect(),
                    delay_timeline_ms: windows.iter().map(|w| w.mean_delay_ms).collect(),
                    packets_lost: m.lost,
                    packets_delivered: m.delivered,
                }
            })
            .collect();
        // Flush the final (possibly partial) backhaul sampling window and
        // pair each link summary with its timeline.
        if self.bh_samples_since_close > 0 {
            if self.bh_timeline.len() < self.bh_accum.len() {
                self.bh_timeline.resize_with(self.bh_accum.len(), Vec::new);
            }
            for (link, &max) in self.bh_accum.iter().enumerate() {
                self.bh_timeline[link].push(max);
            }
        }
        for (link, result) in self.bh_links.iter_mut().enumerate() {
            if let Some(windows) = self.bh_timeline.get(link) {
                result.queue_timeline_bytes = windows.clone();
            }
        }
        // Faults still open when the run ends close at the final subframe.
        let end_ms = self.last_subframe_ms + 1;
        for fault in self.open_faults.drain(..) {
            self.fault_records.push(fault.close(end_ms));
        }
        SimResult {
            flows,
            primary_prb_timeline: self.prb_timeline,
            ca_events: self.ca_events,
            handovers: self.handovers,
            backhaul_links: self.bh_links,
            fault_recovery: self.fault_records,
        }
    }
}

impl Observer for MetricsCollector {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::PacketDelivered {
                flow,
                at,
                bytes,
                one_way,
                delivered,
                ..
            } => {
                let Some(&idx) = self.index_of.get(flow) else {
                    return;
                };
                let m = &mut self.flows[idx];
                if *delivered {
                    m.delivered += 1;
                    m.summary.record_packet(*at, *bytes, *one_way);
                } else {
                    m.lost += 1;
                }
            }
            SimEvent::SubframeScheduled { now, report } => {
                for cr in &report.cell_reports {
                    if cr.cell != self.primary_cell {
                        continue;
                    }
                    // Every tracked flow owns an interval entry even when it
                    // was never scheduled (intervals report explicit zeros);
                    // refill once after each interval's drain.
                    if self.prb_accum.len() != self.flow_of_ue.len() {
                        for flow_id in self.flow_of_ue.values() {
                            self.prb_accum.entry(*flow_id).or_insert(0.0);
                        }
                    }
                    // One pass over the subframe's allocation list instead of
                    // one full `allocated_to` scan per tracked UE.
                    for a in &cr.prb_usage.allocations {
                        if let Some(flow_id) = self.flow_of_ue.get(&a.ue) {
                            if let Some(total) = self.prb_accum.get_mut(flow_id) {
                                *total += f64::from(a.num_prbs);
                            }
                        }
                    }
                }
                let t_ms = now.as_millis();
                self.last_subframe_ms = self.last_subframe_ms.max(t_ms);
                // Decode-loss bursts know their end up front and close on
                // the subframe clock.
                while let Some(pos) = self
                    .open_faults
                    .iter()
                    .position(|f| f.end_ms.is_some_and(|end| t_ms >= end))
                {
                    let fault = self.open_faults.remove(pos);
                    let end = fault.end_ms.expect("checked");
                    self.fault_records.push(fault.close(end));
                }
                if (t_ms + 1) % 100 == 0 {
                    let mut per_ue = HashMap::new();
                    for (flow_id, total) in self.prb_accum.drain() {
                        per_ue.insert(flow_id, total / 100.0);
                    }
                    self.prb_timeline.push(PrbInterval {
                        start_s: self.prb_accum_start_ms as f64 / 1000.0,
                        per_ue,
                    });
                    self.prb_accum_start_ms = t_ms + 1;
                }
            }
            SimEvent::CaTriggered { event } => self.ca_events.push(*event),
            SimEvent::Handover { at, ue, from, to } => self.handovers.push(HandoverEvent {
                ue: *ue,
                from: *from,
                to: *to,
                at: *at,
            }),
            SimEvent::FlowClosed {
                flow,
                internet_bottleneck_fraction,
                carrier_aggregation_triggered,
            } => {
                let Some(&idx) = self.index_of.get(flow) else {
                    return;
                };
                let m = &mut self.flows[idx];
                m.internet_bottleneck_fraction = *internet_bottleneck_fraction;
                m.carrier_aggregation_triggered = *carrier_aggregation_triggered;
            }
            SimEvent::BackhaulSampled { now, queued_bytes } => {
                if self.bh_accum.len() < queued_bytes.len() {
                    self.bh_accum.resize(queued_bytes.len(), 0);
                }
                for (acc, &q) in self.bh_accum.iter_mut().zip(queued_bytes.iter()) {
                    *acc = (*acc).max(q);
                }
                self.bh_samples_since_close += 1;
                // Windows close on the same 100 ms boundaries as the PRB
                // timeline, so the two plots line up sample for sample.
                let t_ms = now.as_millis();
                if (t_ms + 1) % 100 == 0 {
                    if self.bh_timeline.len() < self.bh_accum.len() {
                        self.bh_timeline.resize_with(self.bh_accum.len(), Vec::new);
                    }
                    for (link, acc) in self.bh_accum.iter_mut().enumerate() {
                        self.bh_timeline[link].push(*acc);
                        *acc = 0;
                    }
                    self.bh_samples_since_close = 0;
                }
            }
            SimEvent::BackhaulLinkClosed {
                link,
                name,
                rate_bps,
                stats,
                max_queued_bytes,
                p50_queue_delay_ms,
                p95_queue_delay_ms,
            } => {
                debug_assert_eq!(*link, self.bh_links.len(), "links close in order");
                self.bh_links.push(BackhaulLinkResult {
                    name: (*name).to_string(),
                    rate_bps: *rate_bps,
                    stats: *stats,
                    max_queued_bytes: *max_queued_bytes,
                    p50_queue_delay_ms: *p50_queue_delay_ms,
                    p95_queue_delay_ms: *p95_queue_delay_ms,
                    queue_timeline_bytes: Vec::new(),
                });
            }
            SimEvent::CapacityEstimated { flow, feedback, .. } => {
                let cap = feedback.capacity_bps();
                if cap.is_finite() {
                    for f in &mut self.open_faults {
                        if f.flow_filter.is_some_and(|only| only != *flow) {
                            continue;
                        }
                        if let Some(&base) = f.baseline.get(flow) {
                            if base > 0.0 {
                                f.err_sum += (cap - base).abs() / base;
                                f.err_count += 1;
                            }
                        }
                    }
                    self.last_capacity.insert(*flow, cap);
                }
            }
            SimEvent::FaultCellOutage {
                cell,
                at,
                down,
                residents,
            } => {
                let target = format!("cell-{}", cell.0);
                if *down {
                    let fault = self.open_fault(FaultKind::CellOutage, target, at.as_millis());
                    fault.affected_ues = residents.iter().map(|u| u.0).collect();
                } else {
                    self.close_fault(FaultKind::CellOutage, &target, at.as_millis());
                }
            }
            SimEvent::FaultRlf {
                cell,
                at,
                reconnected,
                stranded_packets,
                ..
            } => {
                let target = format!("cell-{}", cell.0);
                let at_ms = at.as_millis();
                if let Some(fault) = self
                    .open_faults
                    .iter_mut()
                    .rev()
                    .find(|f| f.kind == FaultKind::CellOutage && f.target == target)
                {
                    for (ue, _to) in reconnected.iter() {
                        fault
                            .reconnect_ms
                            .push((ue.0, at_ms.saturating_sub(fault.start_ms)));
                    }
                    fault.packets_stranded += stranded_packets;
                }
            }
            SimEvent::FaultLinkFlap { name, at, down } => {
                if *down {
                    self.open_fault(FaultKind::LinkFlap, (*name).to_string(), at.as_millis());
                } else {
                    self.close_fault(FaultKind::LinkFlap, name, at.as_millis());
                }
            }
            SimEvent::FaultDecodeLoss { flow, at, until_ms } => {
                let fault = self.open_fault(
                    FaultKind::DecodeLoss,
                    format!("flow-{flow}"),
                    at.as_millis(),
                );
                fault.end_ms = Some(*until_ms);
                fault.flow_filter = Some(*flow);
            }
            SimEvent::AckProcessed { .. }
            | SimEvent::StateChanged { .. }
            | SimEvent::BackhaulMark { .. }
            | SimEvent::BackhaulDrop { .. } => {}
        }
    }
}
