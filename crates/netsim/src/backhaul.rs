//! The shared wired backhaul between the content servers and the base
//! stations.
//!
//! The per-flow [`WiredPath`](crate::wired::WiredPath) models every flow's
//! wired segment as a private bottleneck; real congestion in the paper's
//! metro deployments is *shared*: thousands of flows from one server funnel
//! through an aggregation link before fanning out over per-cell backhaul
//! links.  This module models that sharing as a small DAG of wired links —
//! `server → metro aggregation → per-cell backhaul → base station` — each
//! with a line rate, a propagation delay and a FIFO drop-tail queue with an
//! optional RED-style marking threshold.
//!
//! Topology rules: the links referenced by the routes must form a *forest*
//! (every link has at most one upstream predecessor across all routes, and a
//! link is either always a route head or never).  The rule is what makes the
//! analytic packet walk below exact: packets are processed in global ingress
//! order, and under a single-predecessor topology every link then sees its
//! arrivals in nondecreasing time order, so a FIFO queue can be simulated by
//! a single forward pass per packet.
//!
//! Determinism and sharding: the backhaul is stepped by the simulation
//! driver loop, outside the radio-access-network tick — conceptually it is
//! owned by shard 0.  All of its ordering is by `(time, submission
//! sequence)` pairs, so results are byte-identical for every shard count.

use crate::faults::{FlapPolicy, LinkFlap};
use crate::wired::LinkStats;
use pbe_cellular::config::CellId;
use pbe_stats::percentile;
use pbe_stats::time::{transmission_time, Duration, Instant};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Configuration of one wired backhaul link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackhaulLinkSpec {
    /// Human-readable link name (`"agg"`, `"cell-3"`, ...).
    pub name: String,
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay of the link.
    pub propagation: Duration,
    /// Maximum bytes the drop-tail queue holds before dropping.
    pub queue_limit_bytes: u64,
    /// RED-style marking threshold: a packet arriving to find at least this
    /// many bytes already queued is ECN-marked.  `None` disables marking.
    #[serde(default)]
    pub mark_threshold_bytes: Option<u64>,
}

impl BackhaulLinkSpec {
    /// A link with the given name, rate, propagation and queue limit, and no
    /// marking threshold.
    pub fn new(
        name: impl Into<String>,
        rate_bps: f64,
        propagation: Duration,
        queue_limit_bytes: u64,
    ) -> Self {
        BackhaulLinkSpec {
            name: name.into(),
            rate_bps,
            propagation,
            queue_limit_bytes,
            mark_threshold_bytes: None,
        }
    }

    /// The same link with an ECN marking threshold.
    pub fn with_mark_threshold(mut self, bytes: u64) -> Self {
        self.mark_threshold_bytes = Some(bytes);
        self
    }
}

/// The path packets towards one cell take through the backhaul.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackhaulRoute {
    /// The destination cell.
    pub cell: CellId,
    /// Link indices into [`BackhaulConfig::links`], in server → base-station
    /// order.
    pub path: Vec<usize>,
}

/// Configuration of the shared backhaul topology.
///
/// When [`SimConfig::backhaul`](crate::sim::SimConfig) carries one of these,
/// every flow's wired segment is routed through it (by the cell its UE is
/// currently attached to) instead of through the flow's private
/// [`WiredPath`](crate::wired::WiredPath).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackhaulConfig {
    /// The wired links of the topology.
    pub links: Vec<BackhaulLinkSpec>,
    /// Per-cell routes through the links.
    pub routes: Vec<BackhaulRoute>,
    /// Fallback path for cells without an explicit route (a handover target
    /// outside the configured set, for instance).  `None` means such a cell
    /// is a configuration error.
    #[serde(default)]
    pub default_path: Option<Vec<usize>>,
}

impl BackhaulConfig {
    /// The canonical fan-out topology: one shared aggregation link feeding
    /// one backhaul link per cell.  The aggregation link carries the marking
    /// threshold (it is the intended shared bottleneck); the per-cell links
    /// are unmarked.
    pub fn shared_aggregation(
        cells: &[CellId],
        agg: BackhaulLinkSpec,
        cell_link: impl Fn(CellId) -> BackhaulLinkSpec,
    ) -> Self {
        let mut links = vec![agg];
        let mut routes = Vec::with_capacity(cells.len());
        for &cell in cells {
            let idx = links.len();
            links.push(cell_link(cell));
            routes.push(BackhaulRoute {
                cell,
                path: vec![0, idx],
            });
        }
        BackhaulConfig {
            links,
            routes,
            default_path: None,
        }
    }

    /// Check the topology invariants the simulator relies on.
    ///
    /// Every route (and the default path) must reference existing links, use
    /// each link at most once, and respect the single-predecessor rule: a
    /// link is fed by exactly one upstream link across all routes, or is
    /// always a route head.  Rates and queue limits must be positive.
    pub fn validate(&self) -> Result<(), String> {
        for (i, l) in self.links.iter().enumerate() {
            if l.rate_bps <= 0.0 || l.rate_bps.is_nan() {
                return Err(format!("link {i} ({}) has non-positive rate", l.name));
            }
            if l.queue_limit_bytes == 0 {
                return Err(format!("link {i} ({}) has a zero queue limit", l.name));
            }
        }
        // pred[link] = Some(None) head, Some(Some(p)) fed by p.
        let mut pred: Vec<Option<Option<usize>>> = vec![None; self.links.len()];
        let mut seen_cells: Vec<CellId> = Vec::new();
        let paths = self
            .routes
            .iter()
            .map(|r| (&r.path, Some(r.cell)))
            .chain(self.default_path.iter().map(|p| (p, None)));
        for (path, cell) in paths {
            if let Some(cell) = cell {
                if seen_cells.contains(&cell) {
                    return Err(format!("cell {} has two routes", cell.0));
                }
                seen_cells.push(cell);
            }
            if path.is_empty() {
                return Err("a route has an empty path".to_string());
            }
            let mut prev: Option<usize> = None;
            for &link in path {
                if link >= self.links.len() {
                    return Err(format!("path references missing link {link}"));
                }
                if path.iter().filter(|&&l| l == link).count() > 1 {
                    return Err(format!("path uses link {link} twice"));
                }
                match pred[link] {
                    None => pred[link] = Some(prev),
                    Some(existing) if existing == prev => {}
                    Some(_) => {
                        return Err(format!(
                            "link {link} ({}) has two different upstream predecessors \
                             (the backhaul must be a forest)",
                            self.links[link].name
                        ))
                    }
                }
                prev = Some(link);
            }
        }
        Ok(())
    }
}

/// A packet ECN-marked by a backhaul queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkRecord {
    /// Index of the flow (into the simulation's flow list) owning the packet.
    pub flow: usize,
    /// The marked packet.
    pub packet_id: u64,
    /// The marking link (index into [`BackhaulConfig::links`]).
    pub link: usize,
    /// When the marking decision was taken (arrival at the link).
    pub at: Instant,
    /// Bytes already queued at the link when the packet arrived.
    pub queued_bytes: u64,
    /// The marking link's line rate, bits per second.
    pub link_rate_bps: f64,
    /// Queueing delay the marked packet experienced at the link.
    pub queue_delay: Duration,
    /// Propagation of the path upstream of the marking link (base of the
    /// near-source signal latency; the flow's server delay comes on top).
    pub upstream_delay: Duration,
    /// True if this is the packet's first mark on its path — only first
    /// marks generate near-source signals.
    pub first_on_path: bool,
}

/// A packet dropped by a backhaul queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// Index of the flow owning the packet.
    pub flow: usize,
    /// The dropped packet.
    pub packet_id: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// The dropping link (index into [`BackhaulConfig::links`]).
    pub link: usize,
    /// When the drop happened (arrival at the link).
    pub at: Instant,
    /// Bytes queued at the link when the packet was refused.
    pub queued_bytes: u64,
}

/// A packet that crossed the whole backhaul and reached its base station.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Index of the flow owning the packet.
    pub flow: usize,
    /// The delivered packet.
    pub packet_id: u64,
    /// Payload bytes.
    pub bytes: u32,
    /// Arrival time at the base station.
    pub arrive_at: Instant,
}

/// Everything one [`Backhaul::tick`] produced, with reusable buffers.
#[derive(Debug, Default)]
pub struct BackhaulTickReport {
    /// Packets that reached their base station this tick, in deterministic
    /// `(arrival, submission)` order.
    pub deliveries: Vec<DeliveryRecord>,
    /// ECN marks taken this tick.
    pub marks: Vec<MarkRecord>,
    /// Queue drops taken this tick.
    pub drops: Vec<DropRecord>,
}

impl BackhaulTickReport {
    fn clear(&mut self) {
        self.deliveries.clear();
        self.marks.clear();
        self.drops.clear();
    }
}

/// End-of-run summary of one backhaul link (also the shape stored in
/// [`SimResult::backhaul_links`](crate::sim::SimResult)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackhaulLinkResult {
    /// Link name from the configuration.
    pub name: String,
    /// Line rate, bits per second.
    pub rate_bps: f64,
    /// Byte and packet counters.
    pub stats: LinkStats,
    /// Largest queue occupancy ever seen, bytes.
    pub max_queued_bytes: u64,
    /// Median per-packet queueing delay, milliseconds (0 when idle).
    pub p50_queue_delay_ms: f64,
    /// 95th-percentile per-packet queueing delay, milliseconds.
    pub p95_queue_delay_ms: f64,
    /// Per-100 ms maximum queue occupancy, bytes (sampled each subframe).
    #[serde(default)]
    pub queue_timeline_bytes: Vec<u64>,
}

/// One queued-or-serialising packet, from the perspective of a clock: it
/// stops occupying the queue when the link finishes serialising it.
type Departure = (Instant, u32);

/// One scheduled flap window, resolved to a link index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlapWindow {
    link: usize,
    start: Instant,
    end: Instant,
    drop: bool,
}

fn flap_on(flaps: &[FlapWindow], link: usize, at: Instant) -> Option<FlapWindow> {
    flaps
        .iter()
        .find(|f| f.link == link && f.start <= at && at < f.end)
        .copied()
}

fn path_flapped(flaps: &[FlapWindow], path: &[usize], at: Instant) -> bool {
    path.iter().any(|&li| flap_on(flaps, li, at).is_some())
}

#[derive(Debug)]
struct LinkState {
    rate_bps: f64,
    propagation: Duration,
    queue_limit_bytes: u64,
    mark_threshold_bytes: Option<u64>,
    /// When the link finishes serialising the newest admitted packet.
    link_free_at: Instant,
    /// Occupancy as seen by the analytic per-packet walk (drained at packet
    /// arrival times, which can run ahead of the wall clock).
    walk_queue: VecDeque<Departure>,
    walk_queued_bytes: u64,
    /// Occupancy as seen by the wall clock (drained once per tick; this is
    /// what the sampled timeline and the final stats report).
    clock_queue: VecDeque<Departure>,
    clock_queued_bytes: u64,
    stats: LinkStats,
    max_queued_bytes: u64,
    delay_samples_ms: Vec<f64>,
}

impl LinkState {
    fn new(spec: &BackhaulLinkSpec) -> Self {
        LinkState {
            rate_bps: spec.rate_bps,
            propagation: spec.propagation,
            queue_limit_bytes: spec.queue_limit_bytes,
            mark_threshold_bytes: spec.mark_threshold_bytes,
            link_free_at: Instant::ZERO,
            walk_queue: VecDeque::new(),
            walk_queued_bytes: 0,
            clock_queue: VecDeque::new(),
            clock_queued_bytes: 0,
            stats: LinkStats::default(),
            max_queued_bytes: 0,
            delay_samples_ms: Vec::new(),
        }
    }

    fn drain_walk(&mut self, at: Instant) {
        while let Some(&(departure, bytes)) = self.walk_queue.front() {
            if departure > at {
                break;
            }
            self.walk_queue.pop_front();
            self.walk_queued_bytes -= u64::from(bytes);
        }
    }

    fn drain_clock(&mut self, now: Instant) {
        while let Some(&(departure, bytes)) = self.clock_queue.front() {
            if departure > now {
                break;
            }
            self.clock_queue.pop_front();
            self.clock_queued_bytes -= u64::from(bytes);
            self.stats.forwarded_packets += 1;
            self.stats.forwarded_bytes += u64::from(bytes);
        }
    }
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct IngressEntry {
    ingress_at: Instant,
    seq: u64,
    flow: usize,
    packet_id: u64,
    bytes: u32,
    /// Route index, or `usize::MAX` for the default path.
    route: usize,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyEntry {
    arrive_at: Instant,
    seq: u64,
    flow: usize,
    packet_id: u64,
    bytes: u32,
}

/// The running backhaul: analytic FIFO link queues plus the deterministic
/// ingress and delivery orderings.
#[derive(Debug)]
pub struct Backhaul {
    cfg: BackhaulConfig,
    route_of_cell: HashMap<CellId, usize>,
    links: Vec<LinkState>,
    ingress: BinaryHeap<Reverse<IngressEntry>>,
    ready: BinaryHeap<Reverse<ReadyEntry>>,
    seq: u64,
    /// Per-flow newest delivery time: deliveries are clamped to be
    /// nondecreasing per flow, modelling in-order (RLC-style) hand-off to
    /// the base station so a reroute cannot reorder a flow's packets.
    last_delivery: HashMap<usize, Instant>,
    /// Scheduled link flaps, resolved to link indices (empty unless a fault
    /// schedule installed some via [`Backhaul::set_flaps`]).
    flaps: Vec<FlapWindow>,
    occupancy_buf: Vec<u64>,
    in_transit_packets: u64,
    in_transit_bytes: u64,
    submitted_bytes: u64,
    delivered_bytes: u64,
    dropped_bytes: u64,
}

impl Backhaul {
    /// Build the runtime from a validated configuration.
    ///
    /// # Panics
    /// Panics if [`BackhaulConfig::validate`] rejects the configuration.
    pub fn new(cfg: BackhaulConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid backhaul configuration: {e}");
        }
        let route_of_cell = cfg
            .routes
            .iter()
            .enumerate()
            .map(|(i, r)| (r.cell, i))
            .collect();
        let links = cfg.links.iter().map(LinkState::new).collect();
        Backhaul {
            cfg,
            route_of_cell,
            links,
            ingress: BinaryHeap::new(),
            ready: BinaryHeap::new(),
            seq: 0,
            last_delivery: HashMap::new(),
            flaps: Vec::new(),
            occupancy_buf: Vec::new(),
            in_transit_packets: 0,
            in_transit_bytes: 0,
            submitted_bytes: 0,
            delivered_bytes: 0,
            dropped_bytes: 0,
        }
    }

    /// The configuration this backhaul was built from.
    pub fn config(&self) -> &BackhaulConfig {
        &self.cfg
    }

    /// Install the scheduled link flaps of a fault schedule, resolving link
    /// names to indices.  While a flap window is open the link carries
    /// nothing: arrivals wait for the window to close ([`FlapPolicy::Drain`],
    /// still subject to the queue limit) or are refused at admission
    /// ([`FlapPolicy::Drop`]), and a route that crosses a flapped link at
    /// ingress time falls back to the default path when one is configured.
    ///
    /// Windows only affect packets *arriving* inside them; a packet admitted
    /// just before the flap finishes serialising undisturbed.
    pub fn set_flaps(&mut self, flaps: &[LinkFlap]) -> Result<(), String> {
        let mut resolved = Vec::with_capacity(flaps.len());
        for flap in flaps {
            let link = self
                .cfg
                .links
                .iter()
                .position(|l| l.name == flap.link)
                .ok_or_else(|| format!("link flap references unknown link `{}`", flap.link))?;
            resolved.push(FlapWindow {
                link,
                start: Instant::from_millis(flap.start_ms),
                end: Instant::from_millis(flap.end_ms),
                drop: flap.policy == FlapPolicy::Drop,
            });
        }
        self.flaps = resolved;
        Ok(())
    }

    /// Submit a packet heading for `cell`, entering the first backhaul link
    /// at `ingress_at` (the send time plus the flow's server-side delay).
    ///
    /// # Panics
    /// Panics if the cell has no route and no default path is configured.
    pub fn submit(
        &mut self,
        flow: usize,
        cell: CellId,
        packet_id: u64,
        bytes: u32,
        ingress_at: Instant,
    ) {
        let route = match self.route_of_cell.get(&cell) {
            Some(&r) => r,
            None if self.cfg.default_path.is_some() => usize::MAX,
            None => panic!("no backhaul route for cell {} and no default path", cell.0),
        };
        let seq = self.seq;
        self.seq += 1;
        self.in_transit_packets += 1;
        self.in_transit_bytes += u64::from(bytes);
        self.submitted_bytes += u64::from(bytes);
        self.ingress.push(Reverse(IngressEntry {
            ingress_at,
            seq,
            flow,
            packet_id,
            bytes,
            route,
        }));
    }

    /// Advance to `now`: walk every packet whose ingress time has come
    /// through its route, collect marks and drops, and release the packets
    /// that have reached their base station.
    pub fn tick(&mut self, now: Instant, report: &mut BackhaulTickReport) {
        report.clear();

        // 1. Walk due ingress entries through their routes, in global
        //    (ingress, submission) order — the order every link sees its
        //    arrivals in, by the forest topology rule.
        while let Some(Reverse(head)) = self.ingress.peek() {
            if head.ingress_at > now {
                break;
            }
            let Reverse(entry) = self.ingress.pop().expect("non-empty");
            let mut path: &[usize] = if entry.route == usize::MAX {
                self.cfg.default_path.as_deref().expect("validated")
            } else {
                &self.cfg.routes[entry.route].path
            };
            // Re-route around a flap: a route crossing a flapped link at
            // ingress time falls back to the default path, provided that
            // path is itself flap-free.  The per-flow in-order clamp below
            // keeps the detour from reordering the flow.
            if entry.route != usize::MAX
                && !self.flaps.is_empty()
                && path_flapped(&self.flaps, path, entry.ingress_at)
            {
                if let Some(fallback) = self.cfg.default_path.as_deref() {
                    if !path_flapped(&self.flaps, fallback, entry.ingress_at) {
                        path = fallback;
                    }
                }
            }
            let mut at = entry.ingress_at;
            let mut upstream = Duration::ZERO;
            let mut dropped = false;
            let mut marked = false;
            for &li in path {
                let flap = flap_on(&self.flaps, li, at);
                let link = &mut self.links[li];
                link.drain_walk(at);
                let occupancy = link.walk_queued_bytes;
                if flap.is_some_and(|f| f.drop)
                    || occupancy + u64::from(entry.bytes) > link.queue_limit_bytes
                {
                    link.stats.dropped_packets += 1;
                    link.stats.dropped_bytes += u64::from(entry.bytes);
                    report.drops.push(DropRecord {
                        flow: entry.flow,
                        packet_id: entry.packet_id,
                        bytes: u64::from(entry.bytes),
                        link: li,
                        at,
                        queued_bytes: occupancy,
                    });
                    dropped = true;
                    break;
                }
                // A draining flap holds the arrival in the queue until the
                // window closes; serialisation resumes from the flap end.
                let start = match flap {
                    Some(f) => link.link_free_at.max(at).max(f.end),
                    None => link.link_free_at.max(at),
                };
                let queue_delay = start.saturating_since(at);
                let departure = start + transmission_time(entry.bytes as usize, link.rate_bps);
                link.link_free_at = departure;
                link.walk_queue.push_back((departure, entry.bytes));
                link.walk_queued_bytes += u64::from(entry.bytes);
                link.clock_queue.push_back((departure, entry.bytes));
                link.clock_queued_bytes += u64::from(entry.bytes);
                link.max_queued_bytes = link.max_queued_bytes.max(link.walk_queued_bytes);
                link.stats.admitted_packets += 1;
                link.stats.admitted_bytes += u64::from(entry.bytes);
                link.delay_samples_ms.push(queue_delay.as_millis_f64());
                if link
                    .mark_threshold_bytes
                    .is_some_and(|thresh| occupancy >= thresh)
                {
                    link.stats.marked_packets += 1;
                    report.marks.push(MarkRecord {
                        flow: entry.flow,
                        packet_id: entry.packet_id,
                        link: li,
                        at,
                        queued_bytes: occupancy,
                        link_rate_bps: link.rate_bps,
                        queue_delay,
                        upstream_delay: upstream,
                        first_on_path: !marked,
                    });
                    marked = true;
                }
                upstream += self.links[li].propagation;
                at = departure + self.links[li].propagation;
            }
            if dropped {
                self.in_transit_packets -= 1;
                self.in_transit_bytes -= u64::from(entry.bytes);
                self.dropped_bytes += u64::from(entry.bytes);
                continue;
            }
            // In-order hand-off: a faster post-reroute path may not overtake
            // packets the flow already has further along the old path.
            let floor = self
                .last_delivery
                .get(&entry.flow)
                .copied()
                .unwrap_or(Instant::ZERO);
            let arrive_at = at.max(floor);
            self.last_delivery.insert(entry.flow, arrive_at);
            self.ready.push(Reverse(ReadyEntry {
                arrive_at,
                seq: entry.seq,
                flow: entry.flow,
                packet_id: entry.packet_id,
                bytes: entry.bytes,
            }));
        }

        // 2. Wall-clock work: drain every link's queue to `now`.
        for link in self.links.iter_mut() {
            link.drain_clock(now);
        }

        // 3. Release packets whose base-station arrival time has come.
        while let Some(Reverse(head)) = self.ready.peek() {
            if head.arrive_at > now {
                break;
            }
            let Reverse(e) = self.ready.pop().expect("non-empty");
            self.in_transit_packets -= 1;
            self.in_transit_bytes -= u64::from(e.bytes);
            self.delivered_bytes += u64::from(e.bytes);
            report.deliveries.push(DeliveryRecord {
                flow: e.flow,
                packet_id: e.packet_id,
                bytes: e.bytes,
                arrive_at: e.arrive_at,
            });
        }
    }

    /// Wall-clock queue occupancy of every link, bytes, in link order (call
    /// after [`Backhaul::tick`] so the queues are drained to `now`).
    pub fn occupancy(&mut self) -> &[u64] {
        self.occupancy_buf.clear();
        self.occupancy_buf
            .extend(self.links.iter().map(|l| l.clock_queued_bytes));
        &self.occupancy_buf
    }

    /// Per-link counters.
    pub fn link_stats(&self, link: usize) -> LinkStats {
        self.links[link].stats
    }

    /// Packets currently inside the backhaul (queued, serialising or
    /// propagating).
    pub fn in_transit_packets(&self) -> u64 {
        self.in_transit_packets
    }

    /// Bytes currently inside the backhaul.
    pub fn in_transit_bytes(&self) -> u64 {
        self.in_transit_bytes
    }

    /// Total bytes ever submitted.
    pub fn submitted_bytes(&self) -> u64 {
        self.submitted_bytes
    }

    /// Total bytes delivered to base stations.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Total bytes dropped at link queues.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// End-of-run per-link summaries (timelines are filled in by the metrics
    /// collector, which owns the sampling windows).
    pub fn link_summaries(&self) -> Vec<BackhaulLinkResult> {
        self.links
            .iter()
            .zip(&self.cfg.links)
            .map(|(state, spec)| BackhaulLinkResult {
                name: spec.name.clone(),
                rate_bps: spec.rate_bps,
                stats: state.stats,
                max_queued_bytes: state.max_queued_bytes,
                p50_queue_delay_ms: percentile(&state.delay_samples_ms, 50.0).unwrap_or(0.0),
                p95_queue_delay_ms: percentile(&state.delay_samples_ms, 95.0).unwrap_or(0.0),
                queue_timeline_bytes: Vec::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Instant {
        Instant::from_millis(v)
    }

    /// One 12 Mbit/s link (1500 bytes = 1 ms of serialisation), marking at
    /// 3000 queued bytes.
    fn one_link(mark: Option<u64>) -> BackhaulConfig {
        let mut link = BackhaulLinkSpec::new("agg", 12e6, Duration::from_millis(5), 1_000_000);
        link.mark_threshold_bytes = mark;
        BackhaulConfig {
            links: vec![link],
            routes: vec![BackhaulRoute {
                cell: CellId(0),
                path: vec![0],
            }],
            default_path: None,
        }
    }

    #[test]
    fn marking_threshold_is_hit_deterministically() {
        // Five back-to-back packets: occupancy seen on arrival is 0, 1500,
        // 3000, 4500 and 6000 bytes — with the threshold at 3000, exactly
        // packets 3, 4 and 5 are marked.
        let mut bh = Backhaul::new(one_link(Some(3_000)));
        for id in 1..=5u64 {
            bh.submit(0, CellId(0), id, 1500, ms(0));
        }
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(0), &mut report);
        let marked: Vec<u64> = report.marks.iter().map(|m| m.packet_id).collect();
        assert_eq!(marked, vec![3, 4, 5]);
        assert_eq!(report.marks[0].queued_bytes, 3_000);
        assert_eq!(report.marks[2].queued_bytes, 6_000);
        assert!(report.marks.iter().all(|m| m.first_on_path));
        assert_eq!(bh.link_stats(0).marked_packets, 3);
        // Queue delays: packet 3 waits exactly two serialisation times.
        assert_eq!(report.marks[0].queue_delay, Duration::from_millis(2));
    }

    #[test]
    fn below_threshold_nothing_is_marked() {
        let mut bh = Backhaul::new(one_link(Some(3_000)));
        bh.submit(0, CellId(0), 1, 1500, ms(0));
        bh.submit(0, CellId(0), 2, 1500, ms(0));
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(0), &mut report);
        assert!(report.marks.is_empty());
        // After the queue drains, a new burst starts marking from scratch.
        bh.submit(0, CellId(0), 3, 1500, ms(100));
        bh.tick(ms(100), &mut report);
        assert!(report.marks.is_empty());
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut cfg = one_link(None);
        cfg.links[0].queue_limit_bytes = 4_000;
        let mut bh = Backhaul::new(cfg);
        for id in 1..=5u64 {
            bh.submit(0, CellId(0), id, 1500, ms(0));
        }
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(0), &mut report);
        // 2 × 1500 fit; the third arrival would make 4500 > 4000.
        let dropped: Vec<u64> = report.drops.iter().map(|d| d.packet_id).collect();
        assert_eq!(dropped, vec![3, 4, 5]);
        assert_eq!(bh.link_stats(0).dropped_packets, 3);
        assert_eq!(bh.link_stats(0).admitted_packets, 2);
        assert_eq!(bh.dropped_bytes(), 4_500);
    }

    #[test]
    fn packets_cross_the_link_in_fifo_order_with_correct_latency() {
        let mut bh = Backhaul::new(one_link(None));
        for id in 1..=3u64 {
            bh.submit(0, CellId(0), id, 1500, ms(0));
        }
        let mut report = BackhaulTickReport::default();
        // 1 ms serialisation each + 5 ms propagation: arrivals at 6, 7, 8 ms.
        bh.tick(ms(5), &mut report);
        assert!(report.deliveries.is_empty());
        bh.tick(ms(6), &mut report);
        assert_eq!(report.deliveries.len(), 1);
        assert_eq!(report.deliveries[0].packet_id, 1);
        assert_eq!(report.deliveries[0].arrive_at, ms(6));
        bh.tick(ms(8), &mut report);
        let ids: Vec<u64> = report.deliveries.iter().map(|d| d.packet_id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(bh.in_transit_packets(), 0);
    }

    #[test]
    fn heterogeneous_ingress_delays_are_ordered_by_ingress_time() {
        // Flow 0 submits first but with a 10 ms server delay; flow 1 submits
        // later with no delay — flow 1's packet enters (and crosses) the
        // link first.
        let mut bh = Backhaul::new(one_link(None));
        bh.submit(0, CellId(0), 1, 1500, ms(10));
        bh.submit(1, CellId(0), 2, 1500, ms(2));
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(30), &mut report);
        let ids: Vec<u64> = report.deliveries.iter().map(|d| d.packet_id).collect();
        assert_eq!(ids, vec![2, 1]);
        // 2 entered at 2 ms, departed 3 ms, arrived 8 ms; 1 entered at
        // 10 ms (link idle again), arrived 16 ms.
        assert_eq!(report.deliveries[0].arrive_at, ms(8));
        assert_eq!(report.deliveries[1].arrive_at, ms(16));
    }

    #[test]
    fn reroute_keeps_a_flows_packets_in_order() {
        // Cell 0 routes over a slow link, cell 1 over a fast one.  A flow
        // that reroutes mid-burst (handover) must not have its later packets
        // overtake the earlier ones.
        let cfg = BackhaulConfig {
            links: vec![
                BackhaulLinkSpec::new("slow", 1.2e6, Duration::from_millis(10), 1_000_000),
                BackhaulLinkSpec::new("fast", 120e6, Duration::from_millis(1), 1_000_000),
            ],
            routes: vec![
                BackhaulRoute {
                    cell: CellId(0),
                    path: vec![0],
                },
                BackhaulRoute {
                    cell: CellId(1),
                    path: vec![1],
                },
            ],
            default_path: None,
        };
        let mut bh = Backhaul::new(cfg);
        // 10 ms serialisation each on the slow link.
        for id in 1..=4u64 {
            bh.submit(0, CellId(0), id, 1500, ms(0));
        }
        // The flow reroutes to the fast path: raw arrival would be ~1 ms,
        // far earlier than the slow path's backlog.
        for id in 5..=8u64 {
            bh.submit(0, CellId(1), id, 1500, ms(1));
        }
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(200), &mut report);
        let ids: Vec<u64> = report.deliveries.iter().map(|d| d.packet_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7, 8], "no loss, no reorder");
        // The rerouted packets were clamped to the slow path's last arrival.
        let arrivals: Vec<Instant> = report.deliveries.iter().map(|d| d.arrive_at).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(arrivals[3], arrivals[7], "fast-path packets clamped");
    }

    #[test]
    fn shared_aggregation_marks_at_the_shared_link_only() {
        let cells = [CellId(0), CellId(1)];
        let cfg = BackhaulConfig::shared_aggregation(
            &cells,
            BackhaulLinkSpec::new("agg", 12e6, Duration::from_millis(2), 1_000_000)
                .with_mark_threshold(3_000),
            |cell| {
                BackhaulLinkSpec::new(
                    format!("cell-{}", cell.0),
                    100e6,
                    Duration::from_millis(1),
                    1_000_000,
                )
            },
        );
        cfg.validate().expect("canonical topology validates");
        let mut bh = Backhaul::new(cfg);
        for id in 1..=6u64 {
            let cell = cells[(id % 2) as usize];
            bh.submit(id as usize % 2, cell, id, 1500, ms(0));
        }
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(50), &mut report);
        assert_eq!(report.deliveries.len(), 6);
        assert!(report.marks.iter().all(|m| m.link == 0), "only agg marks");
        assert_eq!(bh.link_stats(0).marked_packets as usize, report.marks.len());
        assert!(!report.marks.is_empty());
        // Marks on the shared link report no upstream propagation (it is the
        // first hop).
        assert!(report
            .marks
            .iter()
            .all(|m| m.upstream_delay == Duration::ZERO));
    }

    #[test]
    fn validate_rejects_merging_topologies() {
        // Two routes feeding the same downstream link from different
        // predecessors break the forest rule.
        let cfg = BackhaulConfig {
            links: vec![
                BackhaulLinkSpec::new("a", 1e6, Duration::ZERO, 1_000),
                BackhaulLinkSpec::new("b", 1e6, Duration::ZERO, 1_000),
                BackhaulLinkSpec::new("shared", 1e6, Duration::ZERO, 1_000),
            ],
            routes: vec![
                BackhaulRoute {
                    cell: CellId(0),
                    path: vec![0, 2],
                },
                BackhaulRoute {
                    cell: CellId(1),
                    path: vec![1, 2],
                },
            ],
            default_path: None,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_indices_empty_paths_and_duplicate_cells() {
        let link = || BackhaulLinkSpec::new("l", 1e6, Duration::ZERO, 1_000);
        let bad_index = BackhaulConfig {
            links: vec![link()],
            routes: vec![BackhaulRoute {
                cell: CellId(0),
                path: vec![1],
            }],
            default_path: None,
        };
        assert!(bad_index.validate().is_err());
        let empty_path = BackhaulConfig {
            links: vec![link()],
            routes: vec![BackhaulRoute {
                cell: CellId(0),
                path: vec![],
            }],
            default_path: None,
        };
        assert!(empty_path.validate().is_err());
        let duplicate_cell = BackhaulConfig {
            links: vec![link()],
            routes: vec![
                BackhaulRoute {
                    cell: CellId(0),
                    path: vec![0],
                },
                BackhaulRoute {
                    cell: CellId(0),
                    path: vec![0],
                },
            ],
            default_path: None,
        };
        assert!(duplicate_cell.validate().is_err());
    }

    #[test]
    fn default_path_serves_unrouted_cells() {
        let mut cfg = one_link(None);
        cfg.default_path = Some(vec![0]);
        let mut bh = Backhaul::new(cfg);
        bh.submit(0, CellId(99), 1, 1500, ms(0));
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(50), &mut report);
        assert_eq!(report.deliveries.len(), 1);
    }

    fn flap(link: &str, start_ms: u64, end_ms: u64, policy: FlapPolicy) -> LinkFlap {
        LinkFlap {
            link: link.into(),
            start_ms,
            end_ms,
            policy,
        }
    }

    #[test]
    fn draining_flap_holds_arrivals_until_the_window_closes() {
        let mut bh = Backhaul::new(one_link(None));
        bh.set_flaps(&[flap("agg", 0, 10, FlapPolicy::Drain)])
            .unwrap();
        bh.submit(0, CellId(0), 1, 1500, ms(0));
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(9), &mut report);
        assert!(report.deliveries.is_empty(), "held through the flap");
        // Serialisation restarts at the flap end: 10 + 1 ms + 5 ms prop.
        bh.tick(ms(16), &mut report);
        assert_eq!(report.deliveries.len(), 1);
        assert_eq!(report.deliveries[0].arrive_at, ms(16));
        assert_eq!(bh.link_stats(0).dropped_packets, 0);
    }

    #[test]
    fn dropping_flap_refuses_arrivals_at_admission() {
        let mut bh = Backhaul::new(one_link(None));
        bh.set_flaps(&[flap("agg", 0, 10, FlapPolicy::Drop)])
            .unwrap();
        bh.submit(0, CellId(0), 1, 1500, ms(5));
        bh.submit(0, CellId(0), 2, 1500, ms(10));
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(50), &mut report);
        // Packet 1 arrived inside the window and was refused; packet 2
        // arrived exactly at the (exclusive) end and crossed normally.
        assert_eq!(report.drops.len(), 1);
        assert_eq!(report.drops[0].packet_id, 1);
        let ids: Vec<u64> = report.deliveries.iter().map(|d| d.packet_id).collect();
        assert_eq!(ids, vec![2]);
        assert_eq!(bh.dropped_bytes(), 1_500);
    }

    #[test]
    fn flapped_route_falls_back_to_the_default_path() {
        let cfg = BackhaulConfig {
            links: vec![
                BackhaulLinkSpec::new("main", 12e6, Duration::from_millis(5), 1_000_000),
                BackhaulLinkSpec::new("backup", 12e6, Duration::from_millis(20), 1_000_000),
            ],
            routes: vec![BackhaulRoute {
                cell: CellId(0),
                path: vec![0],
            }],
            default_path: Some(vec![1]),
        };
        let mut bh = Backhaul::new(cfg);
        bh.set_flaps(&[flap("main", 0, 100, FlapPolicy::Drain)])
            .unwrap();
        bh.submit(0, CellId(0), 1, 1500, ms(0));
        bh.submit(0, CellId(0), 2, 1500, ms(150));
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(200), &mut report);
        let ids: Vec<u64> = report.deliveries.iter().map(|d| d.packet_id).collect();
        assert_eq!(ids, vec![1, 2]);
        // Packet 1 detoured over the backup link (1 ms + 20 ms prop);
        // packet 2, after the flap, used the main path again.
        assert_eq!(report.deliveries[0].arrive_at, ms(21));
        assert_eq!(report.deliveries[1].arrive_at, ms(156));
        assert_eq!(bh.link_stats(1).admitted_packets, 1);
        assert_eq!(bh.link_stats(0).admitted_packets, 1);
    }

    #[test]
    fn set_flaps_rejects_unknown_link_names() {
        let mut bh = Backhaul::new(one_link(None));
        let err = bh
            .set_flaps(&[flap("no-such-link", 0, 10, FlapPolicy::Drain)])
            .unwrap_err();
        assert!(err.contains("no-such-link"));
    }

    #[test]
    fn per_link_byte_conservation_holds_mid_run() {
        let mut cfg = one_link(None);
        cfg.links[0].queue_limit_bytes = 6_000;
        let mut bh = Backhaul::new(cfg);
        for id in 1..=10u64 {
            bh.submit(0, CellId(0), id, 1500, ms(0));
        }
        let mut report = BackhaulTickReport::default();
        bh.tick(ms(2), &mut report);
        let stats = bh.link_stats(0);
        let occ = bh.occupancy()[0];
        assert_eq!(stats.admitted_bytes, stats.forwarded_bytes + occ);
        assert_eq!(
            bh.submitted_bytes(),
            bh.delivered_bytes() + bh.dropped_bytes() + bh.in_transit_bytes()
        );
    }
}
