//! The end-to-end simulation engine: servers, wired paths, the cellular
//! network and the mobile receivers, advanced together one subframe at a
//! time.
//!
//! The engine is scheme-agnostic.  Congestion controllers come from the
//! [`SchemeTable`], receiver-side per-flow state machines are
//! [`ReceiverAgent`]s built through the same table, and every measurable
//! occurrence is narrated to the registered [`Observer`]s as typed
//! [`SimEvent`]s — the standard [`SimResult`] is produced by the built-in
//! [`MetricsCollector`] listening to that same stream.

use crate::backhaul::{Backhaul, BackhaulConfig, BackhaulLinkResult, BackhaulTickReport};
use crate::faults::{FaultRecoveryRecord, FaultSchedule};
use crate::flow::{AppModel, FlowConfig, FlowResult, SchemeChoice};
use crate::metrics::MetricsCollector;
use crate::observer::{Observer, SimEvent};
use crate::rate::DeliveryRateEstimator;
use crate::scheme::SchemeTable;
use crate::wired::WiredPath;
use pbe_cc_algorithms::api::{
    AckInfo, CongestionControl, CongestionSignal, PbeFeedback, MSS_BYTES,
};
use pbe_cc_algorithms::registry::SchemeCtx;
use pbe_cellular::carrier::CaEvent;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::handover::HandoverEvent;
use pbe_cellular::network::{CellularNetwork, Delivery, NetworkTickReport, RlfOutcome};
use pbe_cellular::shard::ShardedNetwork;
use pbe_cellular::traffic::CellLoadProfile;
use pbe_core::receiver::{ReceiverAgent, ReceiverCtx};
use pbe_pdcch::batch::DciBatcher;
use pbe_stats::time::{Duration, Instant};
use pbe_stats::DetRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cellular-network configuration (cells, CA policy, overheads).
    pub cellular: CellularConfig,
    /// Background-traffic load profile applied to every cell.
    pub load: CellLoadProfile,
    /// Experiment seed; everything stochastic derives from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: Duration,
    /// Mobile devices and their mobility traces.
    pub ues: Vec<(UeConfig, MobilityTrace)>,
    /// End-to-end flows.
    pub flows: Vec<FlowConfig>,
    /// Per-cell trajectory overrides for multi-cell mobility: each entry
    /// replaces the RSSI trace one UE sees towards one of its configured
    /// cells, so different cells can strengthen and fade independently —
    /// the prerequisite for any handover scenario.  `default` keeps
    /// pre-handover scenario JSON loadable.
    #[serde(default)]
    pub trajectories: Vec<CellTrajectory>,
    /// Shard count for the cellular tick engine.  `None` (the default, and
    /// what pre-shard configuration JSON loads as) ticks the radio access
    /// network serially; `Some(n)` partitions the cell grid into `n`
    /// geo-contiguous shards ticked in parallel on a persistent worker pool.
    /// Every shard count produces byte-identical results; only the wall
    /// clock changes.  When this is `None`, the `PBE_FORCE_SHARDS`
    /// environment variable (a positive integer) overrides it — the CI lever
    /// that runs the whole test suite over the sharded path.
    #[serde(default)]
    pub shards: Option<usize>,
    /// Shared wired backhaul topology.  `None` (the default, and what every
    /// pre-backhaul configuration JSON loads as) keeps each flow on its
    /// private [`WiredPath`]; `Some` routes every flow through the shared
    /// link DAG by the cell its UE is attached to, re-routing on handover.
    /// The backhaul is stepped by the driver loop outside the RAN tick
    /// (conceptually owned by shard 0), so results stay byte-identical for
    /// every shard count.
    #[serde(default)]
    pub backhaul: Option<BackhaulConfig>,
    /// Deterministic fault schedule: cell outages, backhaul link flaps and
    /// control-channel decode-loss bursts, all keyed purely by simulated
    /// time.  `None` (the default, and what every pre-fault configuration
    /// JSON loads as) injects nothing; a schedule is applied identically by
    /// the serial and sharded engines, so faulted runs stay byte-identical
    /// across shard counts.
    #[serde(default)]
    pub faults: Option<FaultSchedule>,
}

/// The radio access network behind one simulation: the serial engine, or
/// the shard-parallel engine when [`SimConfig::shards`] (or the
/// `PBE_FORCE_SHARDS` environment variable) asks for it.  Both produce
/// byte-identical reports; the dispatch exists so the serial engine stays
/// the default and pays no synchronisation cost.
enum Ran {
    Serial(CellularNetwork),
    Sharded(ShardedNetwork),
}

impl Ran {
    fn new(cfg: &SimConfig) -> Self {
        let shards = cfg.shards.or_else(|| {
            std::env::var("PBE_FORCE_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|n| *n > 0)
        });
        match shards {
            Some(n) => Ran::Sharded(ShardedNetwork::new(
                cfg.cellular.clone(),
                cfg.load,
                cfg.seed,
                n,
            )),
            None => Ran::Serial(CellularNetwork::new(
                cfg.cellular.clone(),
                cfg.load,
                cfg.seed,
            )),
        }
    }

    fn add_ue(&mut self, ue: UeConfig, trace: MobilityTrace) {
        match self {
            Ran::Serial(n) => {
                n.add_ue(ue, trace);
            }
            Ran::Sharded(n) => {
                n.add_ue(ue, trace);
            }
        }
    }

    fn set_cell_trace(&mut self, ue: UeId, cell: CellId, trace: MobilityTrace) {
        match self {
            Ran::Serial(n) => n.set_cell_trace(ue, cell, trace),
            Ran::Sharded(n) => n.set_cell_trace(ue, cell, trace),
        }
    }

    fn rnti_of(&self, ue: UeId) -> Option<pbe_cellular::config::Rnti> {
        match self {
            Ran::Serial(n) => n.rnti_of(ue),
            Ran::Sharded(n) => n.rnti_of(ue),
        }
    }

    fn enqueue_packet(&mut self, ue: UeId, packet_id: u64, bytes: u32, now: Instant) {
        match self {
            Ran::Serial(n) => n.enqueue_packet(ue, packet_id, bytes, now),
            Ran::Sharded(n) => n.enqueue_packet(ue, packet_id, bytes, now),
        }
    }

    fn tick_into(&mut self, now: Instant, report: &mut NetworkTickReport) {
        match self {
            Ran::Serial(n) => n.tick_into(now, report),
            Ran::Sharded(n) => n.tick_into(now, report),
        }
    }

    fn carrier_aggregation_triggered(&self, ue: UeId) -> bool {
        match self {
            Ran::Serial(n) => n.carrier_aggregation_triggered(ue),
            Ran::Sharded(n) => n.carrier_aggregation_triggered(ue),
        }
    }

    fn set_cell_outage(&mut self, cell: CellId, down: bool) -> Vec<UeId> {
        match self {
            Ran::Serial(n) => n.set_cell_outage(cell, down),
            Ran::Sharded(n) => n.set_cell_outage(cell, down),
        }
    }

    fn declare_rlf(
        &mut self,
        cell: CellId,
        now: Instant,
        deliveries: &mut Vec<Delivery>,
    ) -> RlfOutcome {
        match self {
            Ran::Serial(n) => n.declare_rlf(cell, now, deliveries),
            Ran::Sharded(n) => n.declare_rlf(cell, now, deliveries),
        }
    }
}

/// One per-cell trajectory override of [`SimConfig::trajectories`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellTrajectory {
    /// The device the override applies to.
    pub ue: UeId,
    /// The configured cell whose trace is replaced.
    pub cell: CellId,
    /// The RSSI-versus-time trajectory towards that cell.
    pub trace: MobilityTrace,
}

impl SimConfig {
    /// A single-UE, single-flow scenario on the default three-cell network.
    pub fn single_flow(
        scheme: SchemeChoice,
        duration: Duration,
        load: CellLoadProfile,
        seed: u64,
    ) -> Self {
        let ue = UeId(1);
        SimConfig {
            cellular: CellularConfig::default(),
            load,
            seed,
            duration,
            ues: vec![(
                UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], 3, -85.0),
                MobilityTrace::stationary(-85.0),
            )],
            flows: vec![FlowConfig::bulk(1, ue, scheme, duration)],
            trajectories: Vec::new(),
            shards: None,
            backhaul: None,
            faults: None,
        }
    }
}

/// Per-UE average PRBs allocated by the primary cell over one 100 ms
/// interval (the quantity plotted in the paper's Fig. 21).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrbInterval {
    /// Interval start, seconds.
    pub start_s: f64,
    /// Average PRBs per subframe allocated to each foreground UE, keyed by
    /// the id of the UE's first configured flow (see
    /// [`PrbInterval::prbs_for`]).
    pub per_ue: HashMap<u32, f64>,
}

impl PrbInterval {
    /// Average PRBs per subframe the primary cell allocated to the UE this
    /// flow id attributes (0.0 for flows with no attribution entry).
    ///
    /// Attribution is per *device*, keyed by the id of the UE's first
    /// configured flow (the timeline cannot tell a device's flows apart at
    /// the MAC layer).  For one-flow-per-UE scenarios — fig21's fairness
    /// cases — that is simply the flow's own id; a second flow on the same
    /// UE has no entry of its own and reads 0.0 here.
    pub fn prbs_for(&self, flow: u32) -> f64 {
        self.per_ue.get(&flow).copied().unwrap_or(0.0)
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// One result per configured flow, in configuration order.
    pub flows: Vec<FlowResult>,
    /// Primary-cell PRB allocation timeline (100 ms intervals).
    pub primary_prb_timeline: Vec<PrbInterval>,
    /// Carrier aggregation events that occurred.
    pub ca_events: Vec<CaEvent>,
    /// Serving-cell handovers that occurred.
    #[serde(default)]
    pub handovers: Vec<HandoverEvent>,
    /// Per-link backhaul summaries, in configuration order (empty when no
    /// backhaul topology was configured).
    #[serde(default)]
    pub backhaul_links: Vec<BackhaulLinkResult>,
    /// Recovery metrics of every injected fault, in fault-closure order
    /// (empty when [`SimConfig::faults`] schedules nothing).
    #[serde(default)]
    pub fault_recovery: Vec<FaultRecoveryRecord>,
}

impl SimResult {
    /// Find a flow result by flow id.
    pub fn flow(&self, id: u32) -> Option<&FlowResult> {
        self.flows.iter().find(|f| f.id == id)
    }
}

struct PendingEvent {
    arrive_at: Instant,
    packet_id: u64,
    bytes: u64,
    sent_at: Instant,
    one_way_delay_ms: f64,
    ecn_ce: bool,
    pbe: Option<PbeFeedback>,
    lost: bool,
}

/// A near-source congestion signal in flight towards one sender, ordered by
/// `(delivery time, mark sequence)` so signal delivery is deterministic.
struct SignalEntry {
    at: Instant,
    seq: u64,
    flow: usize,
    signal: CongestionSignal,
}

impl PartialEq for SignalEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for SignalEntry {}

impl PartialOrd for SignalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SignalEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct FlowState<'a> {
    config: &'a FlowConfig,
    cc: Option<Box<dyn CongestionControl>>,
    receiver: Box<dyn ReceiverAgent>,
    /// Last bottleneck-state flag fed back, for `StateChanged` events.
    last_internet_flag: bool,
    downlink: WiredPath,
    allowance_bytes: f64,
    inflight_bytes: u64,
    sent_packets: HashMap<u64, (u64, Instant)>,
    rate_est: DeliveryRateEstimator,
    srtt: Duration,
    pending: VecDeque<PendingEvent>,
}

/// The simulation driver.
pub struct Simulation {
    config: SimConfig,
    table: SchemeTable,
    observers: Vec<Box<dyn Observer>>,
}

fn emit(observers: &mut [Box<dyn Observer>], metrics: &mut MetricsCollector, event: SimEvent<'_>) {
    metrics.on_event(&event);
    for o in observers.iter_mut() {
        o.on_event(&event);
    }
}

impl Simulation {
    /// Create a simulation from its configuration, with the standard scheme
    /// table and no external observers.
    pub fn new(config: SimConfig) -> Self {
        Simulation::with_parts(config, SchemeTable::standard(), Vec::new())
    }

    /// Create a simulation with a custom scheme table and observers (the
    /// [`SimBuilder`](crate::builder::SimBuilder) entry point).
    pub fn with_parts(
        config: SimConfig,
        table: SchemeTable,
        observers: Vec<Box<dyn Observer>>,
    ) -> Self {
        Simulation {
            config,
            table,
            observers,
        }
    }

    /// Register an additional observer.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// The simulation's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run the simulation to completion and produce the per-flow results.
    pub fn run(&mut self) -> SimResult {
        // Split borrows: flow state borrows the configuration for the whole
        // run while the observer list stays mutably emittable.
        let Simulation {
            config: cfg,
            table,
            observers,
        } = self;
        let primary_cell = cfg
            .cellular
            .cells
            .first()
            .map(|c| c.id)
            .unwrap_or(CellId(0));
        let mut metrics = MetricsCollector::new(&cfg.flows, primary_cell);

        let mut net = Ran::new(cfg);
        for (ue_cfg, trace) in &cfg.ues {
            net.add_ue(ue_cfg.clone(), trace.clone());
        }
        for t in &cfg.trajectories {
            net.set_cell_trace(t.ue, t.cell, t.trace.clone());
        }
        let decoder_rng = DetRng::new(cfg.seed).split("decoders");

        // Build per-flow state: congestion controller and receiver agent both
        // come from the scheme table — the engine knows no scheme by name.
        let mut flows: Vec<FlowState<'_>> = cfg
            .flows
            .iter()
            .map(|f| {
                let rtprop_hint =
                    Duration::from_micros(2 * f.server_one_way_delay.as_micros() + 10_000);
                let scheme = f.scheme.id();
                let cc = table.build_cc(
                    &scheme,
                    &SchemeCtx {
                        rtprop_hint,
                        seed: cfg.seed,
                    },
                );
                let rnti = net.rnti_of(f.ue).expect("flow UE registered");
                let primary = cfg
                    .ues
                    .iter()
                    .find(|(u, _)| u.id == f.ue)
                    .map(|(u, _)| u.primary_cell())
                    .expect("flow UE configured");
                let total_prbs = cfg
                    .cellular
                    .cell(primary)
                    .expect("primary cell exists")
                    .total_prbs();
                let receiver = table.build_receiver(
                    &scheme,
                    &ReceiverCtx {
                        flow: f.id,
                        rnti,
                        cells: vec![(primary, total_prbs)],
                        rng: decoder_rng.clone(),
                    },
                );
                let downlink = match f.wired_bottleneck_bps {
                    Some(rate) => WiredPath::with_bottleneck(
                        f.server_one_way_delay,
                        rate,
                        f.wired_queue_bytes,
                    ),
                    None => WiredPath::unconstrained(f.server_one_way_delay),
                };
                FlowState {
                    cc,
                    receiver,
                    last_internet_flag: false,
                    downlink,
                    allowance_bytes: 0.0,
                    inflight_bytes: 0,
                    sent_packets: HashMap::new(),
                    rate_est: DeliveryRateEstimator::new(rtprop_hint),
                    srtt: rtprop_hint,
                    pending: VecDeque::new(),
                    config: f,
                }
            })
            .collect();

        let mut packet_owner: HashMap<u64, usize> = HashMap::new();
        let mut next_packet_id: u64 = 1;

        // Shared-backhaul state: the link DAG itself, the cell each flow's
        // packets currently route towards (updated on handover), the ids of
        // ECN-marked packets awaiting their ACK echo, and the near-source
        // signals in flight back towards the senders.
        let mut backhaul = cfg.backhaul.clone().map(Backhaul::new);
        let mut bh_report = BackhaulTickReport::default();

        // Fault schedule: validated up front; link flaps install on the
        // backhaul, outage and decode-loss boundaries are applied by this
        // loop at their scheduled subframes.  Everything is keyed by
        // configuration and simulated time only, so a faulted run stays
        // byte-identical across shard counts.
        let faults = cfg.faults.clone().unwrap_or_default();
        if let Err(e) = faults.validate() {
            panic!("invalid fault schedule: {e}");
        }
        if !faults.link_flaps.is_empty() {
            let bh = backhaul
                .as_mut()
                .expect("link flaps require a backhaul topology");
            if let Err(e) = bh.set_flaps(&faults.link_flaps) {
                panic!("invalid fault schedule: {e}");
            }
        }
        let rlf_detection_ms = faults.rlf_detection();
        let mut serving_cell: Vec<CellId> = cfg
            .flows
            .iter()
            .map(|f| {
                cfg.ues
                    .iter()
                    .find(|(u, _)| u.id == f.ue)
                    .map(|(u, _)| u.primary_cell())
                    .expect("flow UE configured")
            })
            .collect();
        let mut marked: HashSet<u64> = HashSet::new();
        let mut signals: BinaryHeap<Reverse<SignalEntry>> = BinaryHeap::new();
        let mut signal_seq: u64 = 0;

        // One report, reused across every subframe: its buffers are cleared
        // and refilled in place, so the per-subframe loop stops allocating
        // once they reach their working size.
        let mut report = NetworkTickReport::default();
        // Likewise one DCI batcher: its per-cell run table is rebuilt in
        // place every subframe.
        let mut batcher = DciBatcher::new();
        let total_ms = cfg.duration.as_millis();
        for t_ms in 0..total_ms {
            let now = Instant::from_millis(t_ms);

            // 0a. Scheduled fault boundaries crossing this subframe.
            if !faults.is_empty() {
                for o in &faults.cell_outages {
                    if o.start_ms == t_ms {
                        let residents = net.set_cell_outage(o.cell, true);
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::FaultCellOutage {
                                cell: o.cell,
                                at: now,
                                down: true,
                                residents: &residents,
                            },
                        );
                    }
                    // Overlapping windows on one cell: the cell only comes
                    // back once no window covers this subframe.
                    if o.end_ms == t_ms && !faults.cell_is_down(o.cell, t_ms) {
                        net.set_cell_outage(o.cell, false);
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::FaultCellOutage {
                                cell: o.cell,
                                at: now,
                                down: false,
                                residents: &[],
                            },
                        );
                    }
                }
                for f in &faults.link_flaps {
                    // Behaviour lives in the backhaul (flaps were installed
                    // up front); the boundaries are narrated for observers
                    // and the recovery metrics.
                    if f.start_ms == t_ms {
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::FaultLinkFlap {
                                name: &f.link,
                                at: now,
                                down: true,
                            },
                        );
                    }
                    if f.end_ms == t_ms {
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::FaultLinkFlap {
                                name: &f.link,
                                at: now,
                                down: false,
                            },
                        );
                    }
                }
                for d in &faults.decode_loss {
                    if d.start_ms == t_ms {
                        for flow in flows.iter_mut() {
                            if flow.config.id == d.flow {
                                flow.receiver.on_decode_loss(d.end_ms);
                            }
                        }
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::FaultDecodeLoss {
                                flow: d.flow,
                                at: now,
                                until_ms: d.end_ms,
                            },
                        );
                    }
                }
            }

            // 0. Near-source congestion signals reach their senders (they
            //    undercut the ACK clock, so they are delivered first).
            while let Some(Reverse(head)) = signals.peek() {
                if head.at > now {
                    break;
                }
                let Reverse(entry) = signals.pop().expect("non-empty");
                if let Some(cc) = flows[entry.flow].cc.as_mut() {
                    cc.on_signal(now, &entry.signal);
                }
            }

            // 1. Deliver ACKs / loss notifications that have reached the
            //    sender, and let the congestion controller react.
            for flow in flows.iter_mut() {
                while let Some(front) = flow.pending.front() {
                    if front.arrive_at > now {
                        break;
                    }
                    let ev = flow.pending.pop_front().expect("non-empty");
                    flow.sent_packets.remove(&ev.packet_id);
                    flow.inflight_bytes = flow.inflight_bytes.saturating_sub(ev.bytes);
                    if ev.lost {
                        if let Some(cc) = flow.cc.as_mut() {
                            cc.on_loss(now);
                        }
                        continue;
                    }
                    let rtt = now.saturating_since(ev.sent_at);
                    flow.srtt = Duration::from_secs_f64(
                        flow.srtt.as_secs_f64() * 0.875 + rtt.as_secs_f64() * 0.125,
                    );
                    flow.rate_est.set_window(flow.srtt);
                    let delivery_rate = flow.rate_est.on_ack(now, ev.bytes);
                    let ack = AckInfo {
                        now,
                        packet_id: ev.packet_id,
                        bytes_acked: ev.bytes,
                        rtt,
                        one_way_delay_ms: ev.one_way_delay_ms,
                        delivery_rate_bps: delivery_rate,
                        inflight_bytes: flow.inflight_bytes,
                        loss_detected: false,
                        ecn_ce: ev.ecn_ce,
                        pbe: ev.pbe,
                    };
                    if let Some(cc) = flow.cc.as_mut() {
                        cc.on_ack(&ack);
                    }
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::AckProcessed {
                            flow: flow.config.id,
                            ack: &ack,
                        },
                    );
                }
            }

            // 2. Senders release packets under pacing + cwnd control.
            for (idx, flow) in flows.iter_mut().enumerate() {
                if now < flow.config.start || now >= flow.config.stop {
                    continue;
                }
                let (budget_bps, gate_by_cwnd) = match (&flow.config.app, flow.cc.as_ref()) {
                    (AppModel::ConstantRate(r), _) => (*r, false),
                    (AppModel::Bulk, Some(cc)) => (cc.pacing_rate_bps(), true),
                    (AppModel::Bulk, None) => (12e6, false),
                };
                flow.allowance_bytes += budget_bps / 8.0 * 1e-3;
                // Cap the carried-over allowance at one burst worth of data so
                // an idle app cannot accumulate an unbounded token bucket.
                flow.allowance_bytes = flow
                    .allowance_bytes
                    .min(budget_bps / 8.0 * 0.05 + 2.0 * MSS_BYTES as f64);
                while flow.allowance_bytes >= MSS_BYTES as f64 {
                    if gate_by_cwnd {
                        let cwnd = flow.cc.as_ref().map(|c| c.cwnd_bytes()).unwrap_or(u64::MAX);
                        if flow.inflight_bytes + MSS_BYTES > cwnd {
                            break;
                        }
                    }
                    let id = next_packet_id;
                    next_packet_id += 1;
                    flow.allowance_bytes -= MSS_BYTES as f64;
                    if let Some(bh) = backhaul.as_mut() {
                        // Shared backhaul: routing (and any drop) resolves
                        // inside the link DAG at the packet's ingress time.
                        flow.sent_packets.insert(id, (MSS_BYTES, now));
                        flow.inflight_bytes += MSS_BYTES;
                        packet_owner.insert(id, idx);
                        if let Some(cc) = flow.cc.as_mut() {
                            cc.on_packet_sent(now, MSS_BYTES, flow.inflight_bytes);
                        }
                        bh.submit(
                            idx,
                            serving_cell[idx],
                            id,
                            MSS_BYTES as u32,
                            now + flow.config.server_one_way_delay,
                        );
                    } else if flow.downlink.send(id, MSS_BYTES as u32, now) {
                        flow.sent_packets.insert(id, (MSS_BYTES, now));
                        flow.inflight_bytes += MSS_BYTES;
                        packet_owner.insert(id, idx);
                        if let Some(cc) = flow.cc.as_mut() {
                            cc.on_packet_sent(now, MSS_BYTES, flow.inflight_bytes);
                        }
                    } else {
                        // Dropped at the wired bottleneck queue: the sender
                        // learns about it roughly one RTT later.
                        let notify = now + flow.srtt;
                        flow.pending.push_back(PendingEvent {
                            arrive_at: notify,
                            packet_id: id,
                            bytes: 0,
                            sent_at: now,
                            one_way_delay_ms: 0.0,
                            ecn_ce: false,
                            pbe: None,
                            lost: true,
                        });
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::PacketDelivered {
                                flow: flow.config.id,
                                at: now,
                                bytes: MSS_BYTES,
                                one_way: Duration::ZERO,
                                delivered: false,
                                wired_drop: true,
                            },
                        );
                    }
                }
            }

            // 3. Wired arrivals reach the base stations — through the
            //    shared backhaul DAG when one is configured, through each
            //    flow's private path otherwise.
            if let Some(bh) = backhaul.as_mut() {
                bh.tick(now, &mut bh_report);
                for m in &bh_report.marks {
                    marked.insert(m.packet_id);
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::BackhaulMark {
                            flow: flows[m.flow].config.id,
                            link: m.link,
                            name: &bh.config().links[m.link].name,
                            at: m.at,
                            queued_bytes: m.queued_bytes,
                        },
                    );
                    if m.first_on_path {
                        // The signal travels back upstream: it reaches the
                        // sender after the server-side delay plus the
                        // propagation of the links before the marking one.
                        let delay = flows[m.flow].config.server_one_way_delay + m.upstream_delay;
                        signals.push(Reverse(SignalEntry {
                            at: m.at + delay,
                            seq: signal_seq,
                            flow: m.flow,
                            signal: CongestionSignal {
                                at: m.at,
                                link_rate_bps: m.link_rate_bps,
                                queue_bytes: m.queued_bytes,
                                queue_delay: m.queue_delay,
                            },
                        }));
                        signal_seq += 1;
                    }
                }
                for d in &bh_report.drops {
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::BackhaulDrop {
                            flow: flows[d.flow].config.id,
                            link: d.link,
                            name: &bh.config().links[d.link].name,
                            at: d.at,
                            queued_bytes: d.queued_bytes,
                        },
                    );
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::PacketDelivered {
                            flow: flows[d.flow].config.id,
                            at: now,
                            bytes: d.bytes,
                            one_way: Duration::ZERO,
                            delivered: false,
                            wired_drop: true,
                        },
                    );
                    packet_owner.remove(&d.packet_id);
                    marked.remove(&d.packet_id);
                    // Unlike the synchronous per-flow wired drop, the packet
                    // was charged to the congestion window when it was
                    // submitted, so the loss notification must return its
                    // bytes to the in-flight account.
                    let flow = &mut flows[d.flow];
                    let notify = now + flow.srtt;
                    flow.pending.push_back(PendingEvent {
                        arrive_at: notify,
                        packet_id: d.packet_id,
                        bytes: d.bytes,
                        sent_at: now,
                        one_way_delay_ms: 0.0,
                        ecn_ce: false,
                        pbe: None,
                        lost: true,
                    });
                }
                for d in &bh_report.deliveries {
                    net.enqueue_packet(flows[d.flow].config.ue, d.packet_id, d.bytes, now);
                }
                let occupancy = bh.occupancy();
                emit(
                    observers,
                    &mut metrics,
                    SimEvent::BackhaulSampled {
                        now,
                        queued_bytes: occupancy,
                    },
                );
            } else {
                for flow in flows.iter_mut() {
                    for pkt in flow.downlink.arrivals(now) {
                        net.enqueue_packet(flow.config.ue, pkt.id, pkt.bytes, now);
                    }
                }
            }

            // 4. The radio access network advances one subframe.
            net.tick_into(now, &mut report);

            // 4b. Radio-link failure: residents of a cell that has been dark
            //     for the detection delay abandon it through the ordinary
            //     handover machinery.  The resulting events join the report
            //     before it is narrated, so receiver re-targeting, backhaul
            //     re-routing and metrics all see them like any A3 handover.
            for o in &faults.cell_outages {
                if t_ms == o.start_ms + rlf_detection_ms && faults.cell_is_down(o.cell, t_ms) {
                    let outcome = net.declare_rlf(o.cell, now, &mut report.deliveries);
                    let reconnected: Vec<(UeId, CellId)> =
                        outcome.events.iter().map(|e| (e.ue, e.to)).collect();
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::FaultRlf {
                            cell: o.cell,
                            at: now,
                            reconnected: &reconnected,
                            stranded_ues: &outcome.stayed,
                            stranded_packets: outcome.stranded_packets,
                        },
                    );
                    report.handovers.extend(outcome.events);
                }
            }
            emit(
                observers,
                &mut metrics,
                SimEvent::SubframeScheduled {
                    now,
                    report: &report,
                },
            );
            for event in &report.ca_events {
                emit(
                    observers,
                    &mut metrics,
                    SimEvent::CaTriggered { event: *event },
                );
            }
            for event in &report.handovers {
                emit(
                    observers,
                    &mut metrics,
                    SimEvent::Handover {
                        at: event.at,
                        ue: event.ue,
                        from: event.from,
                        to: event.to,
                    },
                );
            }

            // 5. Carrier and handover events reach the receiver agents of
            //    affected flows.
            for event in &report.ca_events {
                let total_prbs = cfg
                    .cellular
                    .cell(event.cell)
                    .map(|c| c.total_prbs())
                    .unwrap_or(50);
                for flow in flows.iter_mut() {
                    if flow.config.ue == event.ue {
                        flow.receiver.on_carrier_event(event, total_prbs);
                    }
                }
            }
            for event in &report.handovers {
                let total_prbs = cfg
                    .cellular
                    .cell(event.to)
                    .map(|c| c.total_prbs())
                    .unwrap_or(50);
                let gap = cfg.cellular.handover.reacquisition_gap_ms;
                for (idx, flow) in flows.iter_mut().enumerate() {
                    if flow.config.ue == event.ue {
                        flow.receiver.on_handover(event, total_prbs, gap);
                        // Packets the flow sends from now on route through
                        // the target cell's backhaul path.
                        serving_cell[idx] = event.to;
                    }
                }
            }

            // 6. Receiver agents observe this subframe's control channels.
            //    The stream is grouped by cell once, so every agent hands its
            //    per-cell decoders pre-sliced message runs instead of each
            //    decoder re-scanning the whole network's DCI traffic.
            let subframe = now.subframe_index();
            let batch = batcher.batch(subframe, &report.dci_messages);
            for flow in flows.iter_mut() {
                flow.receiver.on_subframe(&batch);
                // Keep receiver-side averaging windows matched to the flow RTT.
                flow.receiver.set_rtprop_ms(flow.srtt.as_millis_f64());
            }

            // 7. Packet deliveries at the UEs generate acknowledgements.
            for d in &report.deliveries {
                let Some(&owner) = packet_owner.get(&d.packet_id) else {
                    continue;
                };
                let flow = &mut flows[owner];
                let Some(&(bytes, sent_at)) = flow.sent_packets.get(&d.packet_id) else {
                    continue;
                };
                packet_owner.remove(&d.packet_id);
                let one_way = d.at.saturating_since(sent_at);
                let ack_at = d.at + flow.config.server_one_way_delay;
                let ecn_ce = marked.remove(&d.packet_id);
                if d.delivered {
                    let pbe = flow.receiver.on_packet(d.at, one_way.as_millis_f64());
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::PacketDelivered {
                            flow: flow.config.id,
                            at: d.at,
                            bytes,
                            one_way,
                            delivered: true,
                            wired_drop: false,
                        },
                    );
                    if let Some(feedback) = pbe {
                        emit(
                            observers,
                            &mut metrics,
                            SimEvent::CapacityEstimated {
                                flow: flow.config.id,
                                at: d.at,
                                feedback,
                            },
                        );
                        if feedback.internet_bottleneck != flow.last_internet_flag {
                            flow.last_internet_flag = feedback.internet_bottleneck;
                            emit(
                                observers,
                                &mut metrics,
                                SimEvent::StateChanged {
                                    flow: flow.config.id,
                                    at: d.at,
                                    internet_bottleneck: feedback.internet_bottleneck,
                                },
                            );
                        }
                    }
                    flow.pending.push_back(PendingEvent {
                        arrive_at: ack_at,
                        packet_id: d.packet_id,
                        bytes,
                        sent_at,
                        one_way_delay_ms: one_way.as_millis_f64(),
                        ecn_ce,
                        pbe,
                        lost: false,
                    });
                } else {
                    emit(
                        observers,
                        &mut metrics,
                        SimEvent::PacketDelivered {
                            flow: flow.config.id,
                            at: d.at,
                            bytes,
                            one_way,
                            delivered: false,
                            wired_drop: false,
                        },
                    );
                    flow.pending.push_back(PendingEvent {
                        arrive_at: ack_at,
                        packet_id: d.packet_id,
                        bytes,
                        sent_at,
                        one_way_delay_ms: one_way.as_millis_f64(),
                        ecn_ce: false,
                        pbe: None,
                        lost: true,
                    });
                }
            }
        }

        // Finalise the backhaul links through the event stream.
        if let Some(bh) = backhaul.as_ref() {
            for (link, summary) in bh.link_summaries().iter().enumerate() {
                emit(
                    observers,
                    &mut metrics,
                    SimEvent::BackhaulLinkClosed {
                        link,
                        name: &summary.name,
                        rate_bps: summary.rate_bps,
                        stats: summary.stats,
                        max_queued_bytes: summary.max_queued_bytes,
                        p50_queue_delay_ms: summary.p50_queue_delay_ms,
                        p95_queue_delay_ms: summary.p95_queue_delay_ms,
                    },
                );
            }
        }

        // Finalise per-flow results through the event stream.
        for flow in flows.iter() {
            emit(
                observers,
                &mut metrics,
                SimEvent::FlowClosed {
                    flow: flow.config.id,
                    internet_bottleneck_fraction: flow
                        .cc
                        .as_ref()
                        .map(|cc| cc.internet_bottleneck_fraction())
                        .unwrap_or(0.0),
                    carrier_aggregation_triggered: net
                        .carrier_aggregation_triggered(flow.config.ue),
                },
            );
        }
        metrics.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backhaul::BackhaulLinkSpec;
    use pbe_cc_algorithms::api::SchemeName;

    fn quick(scheme: SchemeChoice, seconds: u64, load: CellLoadProfile) -> SimResult {
        let cfg = SimConfig::single_flow(scheme, Duration::from_secs(seconds), load, 7);
        Simulation::new(cfg).run()
    }

    #[test]
    fn pbe_flow_achieves_high_throughput_and_low_delay_on_idle_cell() {
        let result = quick(SchemeChoice::Pbe, 6, CellLoadProfile::none());
        let flow = &result.flows[0];
        assert!(
            flow.summary.avg_throughput_mbps > 40.0,
            "PBE throughput = {} Mbit/s",
            flow.summary.avg_throughput_mbps
        );
        assert!(
            flow.summary.p95_delay_ms < 80.0,
            "PBE p95 delay = {} ms",
            flow.summary.p95_delay_ms
        );
        assert!(flow.packets_delivered > 1000);
    }

    #[test]
    fn bbr_flow_works_end_to_end() {
        let result = quick(
            SchemeChoice::Baseline(SchemeName::Bbr),
            6,
            CellLoadProfile::none(),
        );
        let flow = &result.flows[0];
        assert!(
            flow.summary.avg_throughput_mbps > 20.0,
            "BBR tput = {}",
            flow.summary.avg_throughput_mbps
        );
        assert!(flow.packets_delivered > 1000);
    }

    #[test]
    fn pbe_keeps_delay_lower_than_cubic_under_load() {
        let pbe = quick(SchemeChoice::Pbe, 6, CellLoadProfile::none());
        let cubic = quick(
            SchemeChoice::Baseline(SchemeName::Cubic),
            6,
            CellLoadProfile::none(),
        );
        let pbe_delay = pbe.flows[0].summary.p95_delay_ms;
        let cubic_delay = cubic.flows[0].summary.p95_delay_ms;
        assert!(
            pbe_delay < cubic_delay,
            "PBE p95 {pbe_delay} ms should undercut CUBIC p95 {cubic_delay} ms"
        );
    }

    #[test]
    fn constant_rate_flow_is_not_congestion_controlled() {
        let ue = UeId(1);
        let cfg = SimConfig {
            flows: vec![FlowConfig {
                app: AppModel::ConstantRate(12e6),
                scheme: SchemeChoice::FixedRate,
                ..FlowConfig::bulk(1, ue, SchemeChoice::FixedRate, Duration::from_secs(4))
            }],
            ..SimConfig::single_flow(
                SchemeChoice::FixedRate,
                Duration::from_secs(4),
                CellLoadProfile::none(),
                3,
            )
        };
        let result = Simulation::new(cfg).run();
        let tput = result.flows[0].summary.avg_throughput_mbps;
        assert!(
            (tput - 12.0).abs() < 2.0,
            "constant-rate flow delivers ~12 Mbit/s, got {tput}"
        );
    }

    #[test]
    fn two_pbe_flows_share_the_primary_cell_fairly() {
        let ue_a = UeId(1);
        let ue_b = UeId(2);
        let duration = Duration::from_secs(6);
        let cfg = SimConfig {
            cellular: CellularConfig::default(),
            load: CellLoadProfile::none(),
            seed: 11,
            duration,
            ues: vec![
                (
                    UeConfig::new(ue_a, vec![CellId(0)], 1, -85.0),
                    MobilityTrace::stationary(-85.0),
                ),
                (
                    UeConfig::new(ue_b, vec![CellId(0)], 1, -85.0),
                    MobilityTrace::stationary(-85.0),
                ),
            ],
            flows: vec![
                FlowConfig::bulk(1, ue_a, SchemeChoice::Pbe, duration),
                FlowConfig::bulk(2, ue_b, SchemeChoice::Pbe, duration),
            ],
            trajectories: Vec::new(),
            shards: None,
            backhaul: None,
            faults: None,
        };
        let result = Simulation::new(cfg).run();
        let a = result.flows[0].summary.avg_throughput_mbps;
        let b = result.flows[1].summary.avg_throughput_mbps;
        let ratio = a / b;
        assert!(
            (0.7..1.4).contains(&ratio),
            "throughput ratio {ratio} ({a} vs {b})"
        );
        assert!(!result.primary_prb_timeline.is_empty());
    }

    #[test]
    fn sharded_simulation_is_byte_identical_to_serial() {
        // The engine dispatch must be invisible end to end: a whole
        // simulation (flows, metrics, CA on the 3-cell default network)
        // serialises identically whatever the shard count.
        let cfg = SimConfig::single_flow(
            SchemeChoice::Pbe,
            Duration::from_secs(2),
            CellLoadProfile::busy(),
            13,
        );
        let serial = serde_json::to_string(&Simulation::new(cfg.clone()).run()).unwrap();
        for shards in [1usize, 2, 3] {
            let mut sharded_cfg = cfg.clone();
            sharded_cfg.shards = Some(shards);
            let sharded = serde_json::to_string(&Simulation::new(sharded_cfg).run()).unwrap();
            assert_eq!(serial, sharded, "{shards} shards diverged from serial");
        }
    }

    #[test]
    fn backhaul_simulation_is_byte_identical_across_shard_counts() {
        // The backhaul is stepped in the single-threaded driver loop
        // ("owned by shard 0"), so its arrivals — and everything downstream
        // of them — must serialise identically whatever the shard count,
        // across seeds.
        for seed in [13u64, 29] {
            let mut cfg = SimConfig::single_flow(
                SchemeChoice::Pbe,
                Duration::from_secs(2),
                CellLoadProfile::busy(),
                seed,
            );
            cfg.backhaul = Some(BackhaulConfig::shared_aggregation(
                &[CellId(0), CellId(1), CellId(2)],
                BackhaulLinkSpec::new("agg", 40e6, Duration::from_millis(2), 150_000)
                    .with_mark_threshold(45_000),
                |cell| {
                    BackhaulLinkSpec::new(
                        format!("cell-{}", cell.0),
                        100e6,
                        Duration::from_millis(1),
                        300_000,
                    )
                },
            ));
            let serial = serde_json::to_string(&Simulation::new(cfg.clone()).run()).unwrap();
            for shards in [1usize, 2, 3] {
                let mut sharded_cfg = cfg.clone();
                sharded_cfg.shards = Some(shards);
                let sharded = serde_json::to_string(&Simulation::new(sharded_cfg).run()).unwrap();
                assert_eq!(
                    serial, sharded,
                    "{shards} shards diverged from serial (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn faulted_simulation_is_byte_identical_across_shard_counts() {
        // Fault injection is config/time-derived and applied in the
        // single-threaded driver, so a faulted run — a cell outage with RLF
        // re-selection, a drained link flap and a decode-loss burst — must
        // serialise identically whatever the shard count.
        use crate::faults::{CellOutage, DecodeLossBurst, FaultKind, FlapPolicy, LinkFlap};
        for seed in [13u64, 29] {
            let mut cfg = SimConfig::single_flow(
                SchemeChoice::Pbe,
                Duration::from_secs(3),
                CellLoadProfile::busy(),
                seed,
            );
            cfg.backhaul = Some(BackhaulConfig::shared_aggregation(
                &[CellId(0), CellId(1), CellId(2)],
                BackhaulLinkSpec::new("agg", 40e6, Duration::from_millis(2), 150_000)
                    .with_mark_threshold(45_000),
                |cell| {
                    BackhaulLinkSpec::new(
                        format!("cell-{}", cell.0),
                        100e6,
                        Duration::from_millis(1),
                        300_000,
                    )
                },
            ));
            cfg.faults = Some(FaultSchedule {
                cell_outages: vec![CellOutage {
                    cell: CellId(0),
                    start_ms: 500,
                    end_ms: 1_500,
                }],
                link_flaps: vec![LinkFlap {
                    link: "agg".to_string(),
                    start_ms: 2_000,
                    end_ms: 2_120,
                    policy: FlapPolicy::Drain,
                }],
                decode_loss: vec![DecodeLossBurst {
                    flow: 1,
                    start_ms: 2_400,
                    end_ms: 2_480,
                }],
                rlf_detection_ms: None,
            });
            let serial_result = Simulation::new(cfg.clone()).run();
            assert_eq!(
                serial_result.fault_recovery.len(),
                3,
                "every injected fault produces a recovery record (seed {seed})"
            );
            assert!(
                serial_result
                    .fault_recovery
                    .iter()
                    .any(|r| r.kind == FaultKind::CellOutage && !r.reconnect_ms.is_empty()),
                "the outage triggered an RLF re-selection (seed {seed})"
            );
            let serial = serde_json::to_string(&serial_result).unwrap();
            for shards in [1usize, 2, 3, 7] {
                let mut sharded_cfg = cfg.clone();
                sharded_cfg.shards = Some(shards);
                let sharded = serde_json::to_string(&Simulation::new(sharded_cfg).run()).unwrap();
                assert_eq!(
                    serial, sharded,
                    "{shards} shards diverged from serial (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn pbe_reconverges_within_gap_plus_fill_after_an_injected_rlf() {
        // After an injected RLF the PBE receiver re-targets the decoders
        // and holds its estimate through the reacquisition gap; once the
        // primary window refills (at most 8 real subframes) the estimate
        // must reflect the *new* serving cell.  Cell 0 is 20 MHz and the
        // re-selection targets a 10 MHz cell, so convergence is visible as
        // a large capacity drop.
        use crate::builder::SimBuilder;
        use crate::faults::{CellOutage, FaultKind, FaultSchedule};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut cfg = SimConfig::single_flow(
            SchemeChoice::Pbe,
            Duration::from_secs(4),
            CellLoadProfile::none(),
            7,
        );
        cfg.faults = Some(FaultSchedule {
            cell_outages: vec![CellOutage {
                cell: CellId(0),
                start_ms: 2_000,
                end_ms: 4_000,
            }],
            ..FaultSchedule::none()
        });
        let detection = cfg.faults.as_ref().unwrap().rlf_detection();
        let rlf_ms = 2_000 + detection;
        let gap = cfg.cellular.handover.reacquisition_gap_ms;
        let fill = 8; // primary-window refill bound: window_subframes.clamp(1, 8)
        let deadline = rlf_ms + gap + fill;

        let estimates: Rc<RefCell<Vec<(u64, f64)>>> = Rc::default();
        let sink = estimates.clone();
        let result = SimBuilder::from_config(cfg)
            .observe(move |event: &SimEvent<'_>| {
                if let SimEvent::CapacityEstimated { at, feedback, .. } = event {
                    sink.borrow_mut()
                        .push((at.as_millis(), feedback.capacity_bps()));
                }
            })
            .run();

        let rec = result
            .fault_recovery
            .iter()
            .find(|r| r.kind == FaultKind::CellOutage)
            .expect("the outage produced a recovery record");
        assert_eq!(rec.affected_ues, vec![1], "the single UE was resident");
        assert_eq!(
            rec.reconnect_ms,
            vec![(1, detection)],
            "the UE reconnected at the RLF detection deadline"
        );

        let est = estimates.borrow();
        let held = est
            .iter()
            .rev()
            .find(|(t, _)| *t <= rlf_ms)
            .map(|(_, c)| *c)
            .expect("estimates exist before the RLF");
        assert!(
            est.iter().any(|(t, _)| *t > rlf_ms && *t <= deadline),
            "feedback kept flowing on the held estimate during the gap"
        );
        // Allow a short packet-clocked slack after the refill deadline: the
        // first post-release estimate rides on the next delivered packet.
        let post = est
            .iter()
            .filter(|(t, _)| *t > deadline && *t <= deadline + 60)
            .map(|(_, c)| *c)
            .collect::<Vec<_>>();
        let converged = post
            .last()
            .copied()
            .expect("estimates resumed after the refill deadline");
        assert!(
            converged < 0.75 * held,
            "estimate re-converged to the 10 MHz cell within gap + fill: \
             held {held:.0} bit/s vs converged {converged:.0} bit/s"
        );
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let a = quick(SchemeChoice::Pbe, 3, CellLoadProfile::busy());
        let b = quick(SchemeChoice::Pbe, 3, CellLoadProfile::busy());
        assert_eq!(
            a.flows[0].summary.avg_throughput_mbps,
            b.flows[0].summary.avg_throughput_mbps
        );
        assert_eq!(a.flows[0].packets_delivered, b.flows[0].packets_delivered);
    }

    #[test]
    fn engine_contains_no_scheme_specific_branches() {
        // The acceptance check of the API redesign: the engine resolves every
        // scheme through the table, so a PBE flow and a BBR flow differ only
        // in what the table hands back.
        let pbe = quick(SchemeChoice::Pbe, 2, CellLoadProfile::none());
        let named_pbe = quick(SchemeChoice::named("PBE"), 2, CellLoadProfile::none());
        assert_eq!(
            pbe.flows[0].packets_delivered, named_pbe.flows[0].packets_delivered,
            "`Named(\"PBE\")` and the `Pbe` shim resolve to the same registry entry"
        );
    }
}
