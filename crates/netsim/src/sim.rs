//! The end-to-end simulation: servers, wired paths, the cellular network and
//! the mobile receivers, advanced together one subframe at a time.

use crate::flow::{AppModel, FlowConfig, FlowResult, SchemeChoice};
use crate::rate::DeliveryRateEstimator;
use crate::wired::WiredPath;
use pbe_cc_algorithms::api::{AckInfo, CongestionControl, PbeFeedback, MSS_BYTES};
use pbe_cc_algorithms::baseline_by_name;
use pbe_cellular::carrier::CaEvent;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::network::CellularNetwork;
use pbe_cellular::traffic::CellLoadProfile;
use pbe_core::client::{PbeClient, PbeClientConfig};
use pbe_core::sender::PbeSender;
use pbe_pdcch::decoder::{ControlChannelDecoder, DecoderConfig};
use pbe_pdcch::fusion::MessageFusion;
use pbe_stats::summary::FlowSummaryBuilder;
use pbe_stats::time::{Duration, Instant, MICROS_PER_MS};
use pbe_stats::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cellular-network configuration (cells, CA policy, overheads).
    pub cellular: CellularConfig,
    /// Background-traffic load profile applied to every cell.
    pub load: CellLoadProfile,
    /// Experiment seed; everything stochastic derives from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: Duration,
    /// Mobile devices and their mobility traces.
    pub ues: Vec<(UeConfig, MobilityTrace)>,
    /// End-to-end flows.
    pub flows: Vec<FlowConfig>,
}

impl SimConfig {
    /// A single-UE, single-flow scenario on the default three-cell network.
    pub fn single_flow(scheme: SchemeChoice, duration: Duration, load: CellLoadProfile, seed: u64) -> Self {
        let ue = UeId(1);
        SimConfig {
            cellular: CellularConfig::default(),
            load,
            seed,
            duration,
            ues: vec![(
                UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], 3, -85.0),
                MobilityTrace::stationary(-85.0),
            )],
            flows: vec![FlowConfig::bulk(1, ue, scheme, duration)],
        }
    }
}

/// Per-UE average PRBs allocated by the primary cell over one 100 ms
/// interval (the quantity plotted in the paper's Fig. 21).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrbInterval {
    /// Interval start, seconds.
    pub start_s: f64,
    /// Average PRBs per subframe allocated to each foreground UE.
    pub per_ue: HashMap<u32, f64>,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// One result per configured flow, in configuration order.
    pub flows: Vec<FlowResult>,
    /// Primary-cell PRB allocation timeline (100 ms intervals).
    pub primary_prb_timeline: Vec<PrbInterval>,
    /// Carrier aggregation events that occurred.
    pub ca_events: Vec<CaEvent>,
}

impl SimResult {
    /// Find a flow result by flow id.
    pub fn flow(&self, id: u32) -> Option<&FlowResult> {
        self.flows.iter().find(|f| f.id == id)
    }
}

struct PbeReceiver {
    decoders: HashMap<CellId, ControlChannelDecoder>,
    fusion: MessageFusion,
    client: PbeClient,
}

struct PendingEvent {
    arrive_at: Instant,
    packet_id: u64,
    bytes: u64,
    sent_at: Instant,
    one_way_delay_ms: f64,
    pbe: Option<PbeFeedback>,
    lost: bool,
}

struct FlowState {
    config: FlowConfig,
    cc: Option<Box<dyn CongestionControl>>,
    downlink: WiredPath,
    allowance_bytes: f64,
    inflight_bytes: u64,
    sent_packets: HashMap<u64, (u64, Instant)>,
    rate_est: DeliveryRateEstimator,
    srtt: Duration,
    pending: VecDeque<PendingEvent>,
    summary: FlowSummaryBuilder,
    receiver: Option<PbeReceiver>,
    delivered: u64,
    lost: u64,
}

/// The simulation driver.
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Create a simulation from its configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation { config }
    }

    /// Run the simulation to completion and produce the per-flow results.
    pub fn run(&self) -> SimResult {
        let cfg = &self.config;
        let mut net = CellularNetwork::new(cfg.cellular.clone(), cfg.load, cfg.seed);
        for (ue_cfg, trace) in &cfg.ues {
            net.add_ue(ue_cfg.clone(), trace.clone());
        }
        let decoder_rng = DetRng::new(cfg.seed).split("decoders");

        // Build per-flow state.
        let mut flows: Vec<FlowState> = cfg
            .flows
            .iter()
            .map(|f| {
                let rtprop_hint = Duration::from_micros(2 * f.server_one_way_delay.as_micros() + 10_000);
                let cc: Option<Box<dyn CongestionControl>> = match f.scheme {
                    SchemeChoice::Pbe => Some(Box::new(PbeSender::with_defaults(rtprop_hint))),
                    SchemeChoice::Baseline(name) => Some(baseline_by_name(name, rtprop_hint)),
                    SchemeChoice::FixedRate => None,
                };
                let receiver = if matches!(f.scheme, SchemeChoice::Pbe) {
                    let rnti = net.rnti_of(f.ue).expect("flow UE registered");
                    let primary = cfg
                        .ues
                        .iter()
                        .find(|(u, _)| u.id == f.ue)
                        .map(|(u, _)| u.primary_cell())
                        .expect("flow UE configured");
                    let total_prbs = cfg.cellular.cell(primary).expect("primary cell exists").total_prbs();
                    let mut decoders = HashMap::new();
                    decoders.insert(
                        primary,
                        ControlChannelDecoder::new(
                            primary,
                            DecoderConfig {
                                total_prbs,
                                ..DecoderConfig::default()
                            },
                            decoder_rng.split_indexed("cell", u64::from(primary.0) << 16 | u64::from(f.id)),
                        ),
                    );
                    Some(PbeReceiver {
                        decoders,
                        fusion: MessageFusion::new(vec![primary]),
                        client: PbeClient::new(PbeClientConfig::new(rnti, vec![(primary, total_prbs)])),
                    })
                } else {
                    None
                };
                let downlink = match f.wired_bottleneck_bps {
                    Some(rate) => WiredPath::with_bottleneck(f.server_one_way_delay, rate, f.wired_queue_bytes),
                    None => WiredPath::unconstrained(f.server_one_way_delay),
                };
                FlowState {
                    cc,
                    downlink,
                    allowance_bytes: 0.0,
                    inflight_bytes: 0,
                    sent_packets: HashMap::new(),
                    rate_est: DeliveryRateEstimator::new(rtprop_hint),
                    srtt: rtprop_hint,
                    pending: VecDeque::new(),
                    summary: FlowSummaryBuilder::new(f.scheme.label()),
                    receiver,
                    delivered: 0,
                    lost: 0,
                    config: f.clone(),
                }
            })
            .collect();

        let mut packet_owner: HashMap<u64, usize> = HashMap::new();
        let mut next_packet_id: u64 = 1;
        let mut ca_events: Vec<CaEvent> = Vec::new();
        let mut prb_timeline: Vec<PrbInterval> = Vec::new();
        let mut prb_accum: HashMap<u32, f64> = HashMap::new();
        let mut prb_accum_start = 0u64;
        let primary_cell = cfg.cellular.cells.first().map(|c| c.id).unwrap_or(CellId(0));
        let foreground_ues: Vec<UeId> = cfg.ues.iter().map(|(u, _)| u.id).collect();

        let total_ms = cfg.duration.as_millis();
        for t_ms in 0..total_ms {
            let now = Instant::from_millis(t_ms);

            // 1. Deliver ACKs / loss notifications that have reached the
            //    sender, and let the congestion controller react.
            for flow in flows.iter_mut() {
                while let Some(front) = flow.pending.front() {
                    if front.arrive_at > now {
                        break;
                    }
                    let ev = flow.pending.pop_front().expect("non-empty");
                    flow.sent_packets.remove(&ev.packet_id);
                    flow.inflight_bytes = flow.inflight_bytes.saturating_sub(ev.bytes);
                    if ev.lost {
                        if let Some(cc) = flow.cc.as_mut() {
                            cc.on_loss(now);
                        }
                        continue;
                    }
                    let rtt = now.saturating_since(ev.sent_at);
                    flow.srtt = Duration::from_secs_f64(
                        flow.srtt.as_secs_f64() * 0.875 + rtt.as_secs_f64() * 0.125,
                    );
                    flow.rate_est.set_window(flow.srtt);
                    let delivery_rate = flow.rate_est.on_ack(now, ev.bytes);
                    if let Some(cc) = flow.cc.as_mut() {
                        cc.on_ack(&AckInfo {
                            now,
                            packet_id: ev.packet_id,
                            bytes_acked: ev.bytes,
                            rtt,
                            one_way_delay_ms: ev.one_way_delay_ms,
                            delivery_rate_bps: delivery_rate,
                            inflight_bytes: flow.inflight_bytes,
                            loss_detected: false,
                            pbe: ev.pbe,
                        });
                    }
                }
            }

            // 2. Senders release packets under pacing + cwnd control.
            for (idx, flow) in flows.iter_mut().enumerate() {
                if now < flow.config.start || now >= flow.config.stop {
                    continue;
                }
                let (budget_bps, gate_by_cwnd) = match (&flow.config.app, flow.cc.as_ref()) {
                    (AppModel::ConstantRate(r), _) => (*r, false),
                    (AppModel::Bulk, Some(cc)) => (cc.pacing_rate_bps(), true),
                    (AppModel::Bulk, None) => (12e6, false),
                };
                flow.allowance_bytes += budget_bps / 8.0 * 1e-3;
                // Cap the carried-over allowance at one burst worth of data so
                // an idle app cannot accumulate an unbounded token bucket.
                flow.allowance_bytes = flow.allowance_bytes.min(budget_bps / 8.0 * 0.05 + 2.0 * MSS_BYTES as f64);
                while flow.allowance_bytes >= MSS_BYTES as f64 {
                    if gate_by_cwnd {
                        let cwnd = flow.cc.as_ref().map(|c| c.cwnd_bytes()).unwrap_or(u64::MAX);
                        if flow.inflight_bytes + MSS_BYTES > cwnd {
                            break;
                        }
                    }
                    let id = next_packet_id;
                    next_packet_id += 1;
                    flow.allowance_bytes -= MSS_BYTES as f64;
                    if flow.downlink.send(id, MSS_BYTES as u32, now) {
                        flow.sent_packets.insert(id, (MSS_BYTES, now));
                        flow.inflight_bytes += MSS_BYTES;
                        packet_owner.insert(id, idx);
                        if let Some(cc) = flow.cc.as_mut() {
                            cc.on_packet_sent(now, MSS_BYTES, flow.inflight_bytes);
                        }
                    } else {
                        // Dropped at the wired bottleneck queue: the sender
                        // learns about it roughly one RTT later.
                        let notify = now + flow.srtt;
                        flow.pending.push_back(PendingEvent {
                            arrive_at: notify,
                            packet_id: id,
                            bytes: 0,
                            sent_at: now,
                            one_way_delay_ms: 0.0,
                            pbe: None,
                            lost: true,
                        });
                        flow.lost += 1;
                    }
                }
            }

            // 3. Wired arrivals reach the base station.
            for flow in flows.iter_mut() {
                for pkt in flow.downlink.arrivals(now) {
                    net.enqueue_packet(flow.config.ue, pkt.id, pkt.bytes, now);
                }
            }

            // 4. The radio access network advances one subframe.
            let report = net.tick(now);
            ca_events.extend(report.ca_events.iter().copied());

            // 5. Carrier events adjust the PBE receivers' decoder sets.
            for event in &report.ca_events {
                for flow in flows.iter_mut() {
                    if flow.config.ue != event.ue {
                        continue;
                    }
                    let Some(receiver) = flow.receiver.as_mut() else { continue };
                    if event.activated {
                        let total_prbs = cfg
                            .cellular
                            .cell(event.cell)
                            .map(|c| c.total_prbs())
                            .unwrap_or(50);
                        receiver.decoders.entry(event.cell).or_insert_with(|| {
                            ControlChannelDecoder::new(
                                event.cell,
                                DecoderConfig {
                                    total_prbs,
                                    ..DecoderConfig::default()
                                },
                                decoder_rng.split_indexed(
                                    "cell",
                                    u64::from(event.cell.0) << 16 | u64::from(flow.config.id),
                                ),
                            )
                        });
                        receiver.client.add_cell(event.cell, total_prbs);
                    } else {
                        receiver.decoders.remove(&event.cell);
                        receiver.client.remove_cell(event.cell);
                    }
                    let cells: Vec<CellId> = receiver.decoders.keys().copied().collect();
                    receiver.fusion.set_watched_cells(cells);
                }
            }

            // 6. PBE receivers decode this subframe's control channels.
            let subframe = now.subframe_index();
            for flow in flows.iter_mut() {
                let Some(receiver) = flow.receiver.as_mut() else { continue };
                let mut fused_ready = Vec::new();
                for (cell, decoder) in receiver.decoders.iter_mut() {
                    let decoded = decoder.decode_subframe(subframe, &report.dci_messages);
                    fused_ready.extend(receiver.fusion.ingest(*cell, subframe, decoded));
                }
                for fused in fused_ready {
                    receiver.client.on_subframe(&fused);
                }
                // Keep the client's averaging window matched to the flow RTT.
                receiver.client.set_rtprop_ms(flow.srtt.as_millis_f64());
            }

            // 7. Packet deliveries at the UEs generate acknowledgements.
            for d in &report.deliveries {
                let Some(&owner) = packet_owner.get(&d.packet_id) else { continue };
                let flow = &mut flows[owner];
                let Some(&(bytes, sent_at)) = flow.sent_packets.get(&d.packet_id) else { continue };
                packet_owner.remove(&d.packet_id);
                let one_way = d.at.saturating_since(sent_at);
                let ack_at = d.at + flow.config.server_one_way_delay;
                if d.delivered {
                    flow.delivered += 1;
                    flow.summary.record_packet(d.at, bytes, one_way);
                    let pbe = flow
                        .receiver
                        .as_mut()
                        .map(|r| r.client.on_packet(d.at, one_way.as_millis_f64()));
                    flow.pending.push_back(PendingEvent {
                        arrive_at: ack_at,
                        packet_id: d.packet_id,
                        bytes,
                        sent_at,
                        one_way_delay_ms: one_way.as_millis_f64(),
                        pbe,
                        lost: false,
                    });
                } else {
                    flow.lost += 1;
                    flow.pending.push_back(PendingEvent {
                        arrive_at: ack_at,
                        packet_id: d.packet_id,
                        bytes,
                        sent_at,
                        one_way_delay_ms: one_way.as_millis_f64(),
                        pbe: None,
                        lost: true,
                    });
                }
            }

            // 8. Primary-cell PRB accounting for the fairness timeline.
            for cr in &report.cell_reports {
                if cr.cell != primary_cell {
                    continue;
                }
                for ue in &foreground_ues {
                    let prbs = cr.prb_usage.allocated_to(*ue);
                    if let Some(flow) = cfg.flows.iter().find(|f| f.ue == *ue) {
                        *prb_accum.entry(flow.id).or_insert(0.0) += f64::from(prbs);
                    }
                }
            }
            if (t_ms + 1) % 100 == 0 {
                let mut per_ue = HashMap::new();
                for (flow_id, total) in prb_accum.drain() {
                    per_ue.insert(flow_id, total / 100.0);
                }
                prb_timeline.push(PrbInterval {
                    start_s: prb_accum_start as f64 / 1000.0,
                    per_ue,
                });
                prb_accum_start = t_ms + 1;
            }
            let _ = MICROS_PER_MS; // keep the import meaningful for readers
        }

        // Finalise per-flow results.
        let results = flows
            .iter_mut()
            .map(|flow| {
                if let Some(cc) = flow.cc.as_ref() {
                    flow.summary
                        .set_internet_bottleneck_fraction(cc.internet_bottleneck_fraction());
                }
                flow.summary
                    .set_carrier_aggregation_triggered(net.carrier_aggregation_triggered(flow.config.ue));
                let windows = flow.summary.windows().windows();
                FlowResult {
                    id: flow.config.id,
                    scheme: flow.config.scheme.label().to_string(),
                    summary: flow.summary.build(),
                    throughput_timeline_mbps: windows.iter().map(|w| w.throughput_mbps).collect(),
                    delay_timeline_ms: windows.iter().map(|w| w.mean_delay_ms).collect(),
                    packets_lost: flow.lost,
                    packets_delivered: flow.delivered,
                }
            })
            .collect();
        SimResult {
            flows: results,
            primary_prb_timeline: prb_timeline,
            ca_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_cc_algorithms::api::SchemeName;

    fn quick(scheme: SchemeChoice, seconds: u64, load: CellLoadProfile) -> SimResult {
        let cfg = SimConfig::single_flow(scheme, Duration::from_secs(seconds), load, 7);
        Simulation::new(cfg).run()
    }

    #[test]
    fn pbe_flow_achieves_high_throughput_and_low_delay_on_idle_cell() {
        let result = quick(SchemeChoice::Pbe, 6, CellLoadProfile::none());
        let flow = &result.flows[0];
        assert!(
            flow.summary.avg_throughput_mbps > 40.0,
            "PBE throughput = {} Mbit/s",
            flow.summary.avg_throughput_mbps
        );
        assert!(
            flow.summary.p95_delay_ms < 80.0,
            "PBE p95 delay = {} ms",
            flow.summary.p95_delay_ms
        );
        assert!(flow.packets_delivered > 1000);
    }

    #[test]
    fn bbr_flow_works_end_to_end() {
        let result = quick(SchemeChoice::Baseline(SchemeName::Bbr), 6, CellLoadProfile::none());
        let flow = &result.flows[0];
        assert!(flow.summary.avg_throughput_mbps > 20.0, "BBR tput = {}", flow.summary.avg_throughput_mbps);
        assert!(flow.packets_delivered > 1000);
    }

    #[test]
    fn pbe_keeps_delay_lower_than_cubic_under_load() {
        let pbe = quick(SchemeChoice::Pbe, 6, CellLoadProfile::none());
        let cubic = quick(SchemeChoice::Baseline(SchemeName::Cubic), 6, CellLoadProfile::none());
        let pbe_delay = pbe.flows[0].summary.p95_delay_ms;
        let cubic_delay = cubic.flows[0].summary.p95_delay_ms;
        assert!(
            pbe_delay < cubic_delay,
            "PBE p95 {pbe_delay} ms should undercut CUBIC p95 {cubic_delay} ms"
        );
    }

    #[test]
    fn constant_rate_flow_is_not_congestion_controlled() {
        let ue = UeId(1);
        let cfg = SimConfig {
            flows: vec![FlowConfig {
                app: AppModel::ConstantRate(12e6),
                scheme: SchemeChoice::FixedRate,
                ..FlowConfig::bulk(1, ue, SchemeChoice::FixedRate, Duration::from_secs(4))
            }],
            ..SimConfig::single_flow(SchemeChoice::FixedRate, Duration::from_secs(4), CellLoadProfile::none(), 3)
        };
        let result = Simulation::new(cfg).run();
        let tput = result.flows[0].summary.avg_throughput_mbps;
        assert!((tput - 12.0).abs() < 2.0, "constant-rate flow delivers ~12 Mbit/s, got {tput}");
    }

    #[test]
    fn two_pbe_flows_share_the_primary_cell_fairly() {
        let ue_a = UeId(1);
        let ue_b = UeId(2);
        let duration = Duration::from_secs(6);
        let cfg = SimConfig {
            cellular: CellularConfig::default(),
            load: CellLoadProfile::none(),
            seed: 11,
            duration,
            ues: vec![
                (
                    UeConfig::new(ue_a, vec![CellId(0)], 1, -85.0),
                    MobilityTrace::stationary(-85.0),
                ),
                (
                    UeConfig::new(ue_b, vec![CellId(0)], 1, -85.0),
                    MobilityTrace::stationary(-85.0),
                ),
            ],
            flows: vec![
                FlowConfig::bulk(1, ue_a, SchemeChoice::Pbe, duration),
                FlowConfig::bulk(2, ue_b, SchemeChoice::Pbe, duration),
            ],
        };
        let result = Simulation::new(cfg).run();
        let a = result.flows[0].summary.avg_throughput_mbps;
        let b = result.flows[1].summary.avg_throughput_mbps;
        let ratio = a / b;
        assert!((0.7..1.4).contains(&ratio), "throughput ratio {ratio} ({a} vs {b})");
        assert!(!result.primary_prb_timeline.is_empty());
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let a = quick(SchemeChoice::Pbe, 3, CellLoadProfile::busy());
        let b = quick(SchemeChoice::Pbe, 3, CellLoadProfile::busy());
        assert_eq!(
            a.flows[0].summary.avg_throughput_mbps,
            b.flows[0].summary.avg_throughput_mbps
        );
        assert_eq!(a.flows[0].packets_delivered, b.flows[0].packets_delivered);
    }
}
