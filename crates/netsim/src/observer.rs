//! Typed simulation events and the observer interface.
//!
//! The simulation engine narrates everything measurable as [`SimEvent`]s.
//! Observers registered through
//! [`SimBuilder::observe`](crate::builder::SimBuilder::observe) receive every
//! event; the built-in metrics collector that produces
//! [`SimResult`](crate::sim::SimResult) is itself an observer of the same
//! stream, so an experiment binary that needs a custom telemetry cut (the
//! `fig*` binaries, for instance) taps the events instead of re-deriving
//! numbers from bespoke simulator hooks.

use crate::wired::LinkStats;
use pbe_cc_algorithms::api::{AckInfo, PbeFeedback};
use pbe_cellular::carrier::CaEvent;
use pbe_cellular::config::{CellId, UeId};
use pbe_cellular::network::NetworkTickReport;
use pbe_stats::time::{Duration, Instant};

/// One observable simulation event.
#[derive(Debug)]
pub enum SimEvent<'a> {
    /// The radio access network finished scheduling one subframe.  The
    /// report carries the DCI messages, per-cell PRB usage and deliveries.
    SubframeScheduled {
        /// Subframe start time.
        now: Instant,
        /// The network's full per-subframe report.
        report: &'a NetworkTickReport,
    },
    /// A secondary carrier was activated or deactivated.
    CaTriggered {
        /// The carrier-aggregation event.
        event: CaEvent,
    },
    /// A UE's serving cell changed (A3 reselection fired): queued and
    /// in-flight data was forwarded to the target cell and the endpoint's
    /// monitor began re-synchronising onto its control channel.
    Handover {
        /// When the switch took effect.
        at: Instant,
        /// The device that changed cells.
        ue: UeId,
        /// The old serving cell.
        from: CellId,
        /// The new serving cell.
        to: CellId,
    },
    /// The sender of a flow processed one acknowledgement (after the
    /// congestion controller saw it).
    AckProcessed {
        /// Flow id.
        flow: u32,
        /// The acknowledgement, including any PBE feedback it carried.
        ack: &'a AckInfo,
    },
    /// A packet reached the receiver, or was lost — either on the radio link
    /// (HARQ exhaustion) or dropped at the wired bottleneck queue.
    PacketDelivered {
        /// Flow id.
        flow: u32,
        /// Delivery (or loss) time.  For wired drops this is the send time —
        /// the packet never crossed the path.
        at: Instant,
        /// Payload bytes.
        bytes: u64,
        /// One-way delay experienced by the packet (zero for wired drops,
        /// which have no meaningful delay sample).
        one_way: Duration,
        /// False if the packet was lost.
        delivered: bool,
        /// True when the loss happened at the wired bottleneck queue rather
        /// than on the radio link; always false when `delivered` is true.
        wired_drop: bool,
    },
    /// A receiver agent produced a capacity estimate for an ACK.
    CapacityEstimated {
        /// Flow id.
        flow: u32,
        /// Time of the estimate.
        at: Instant,
        /// The feedback piggybacked on the acknowledgement.
        feedback: PbeFeedback,
    },
    /// A flow's receiver agent changed its bottleneck-state belief.
    StateChanged {
        /// Flow id.
        flow: u32,
        /// Time of the switch.
        at: Instant,
        /// The new belief: true if the wired Internet is the bottleneck.
        internet_bottleneck: bool,
    },
    /// A shared-backhaul queue ECN-marked a packet (only emitted when
    /// [`SimConfig::backhaul`](crate::sim::SimConfig) is configured).
    BackhaulMark {
        /// Flow id owning the marked packet.
        flow: u32,
        /// Index of the marking link in the backhaul configuration.
        link: usize,
        /// Name of the marking link.
        name: &'a str,
        /// When the marking decision was taken.
        at: Instant,
        /// Bytes already queued at the link when the packet arrived.
        queued_bytes: u64,
    },
    /// A shared-backhaul queue dropped a packet.
    BackhaulDrop {
        /// Flow id owning the dropped packet.
        flow: u32,
        /// Index of the dropping link in the backhaul configuration.
        link: usize,
        /// Name of the dropping link.
        name: &'a str,
        /// When the drop happened.
        at: Instant,
        /// Bytes queued at the link when the packet was refused.
        queued_bytes: u64,
    },
    /// Per-subframe sample of every backhaul link's queue occupancy, in
    /// link-configuration order (only emitted when a backhaul is configured).
    BackhaulSampled {
        /// Sample time (the subframe start).
        now: Instant,
        /// Queued bytes per link.
        queued_bytes: &'a [u64],
    },
    /// End-of-run summary of one backhaul link.
    BackhaulLinkClosed {
        /// Index of the link in the backhaul configuration.
        link: usize,
        /// Link name.
        name: &'a str,
        /// Line rate, bits per second.
        rate_bps: f64,
        /// Byte and packet counters.
        stats: LinkStats,
        /// Largest queue occupancy ever seen, bytes.
        max_queued_bytes: u64,
        /// Median per-packet queueing delay, milliseconds.
        p50_queue_delay_ms: f64,
        /// 95th-percentile per-packet queueing delay, milliseconds.
        p95_queue_delay_ms: f64,
    },
    /// A scheduled cell outage started or ended (only emitted when
    /// [`SimConfig::faults`](crate::sim::SimConfig) schedules one).
    FaultCellOutage {
        /// The cell going dark (or coming back).
        cell: CellId,
        /// When the transition happened.
        at: Instant,
        /// True at the outage start, false at the end.
        down: bool,
        /// UEs whose primary serving cell was the faulted cell at the
        /// transition (empty at outage end).
        residents: &'a [UeId],
    },
    /// Resident UEs of a dark cell declared radio-link failure and
    /// re-selected (or failed to).
    FaultRlf {
        /// The cell the UEs abandoned.
        cell: CellId,
        /// When RLF was declared (outage start + detection delay).
        at: Instant,
        /// UEs that found a live configured cell, with their new serving
        /// cell, in UE order.
        reconnected: &'a [(UeId, CellId)],
        /// UEs with no live configured cell to fall back to; they stay
        /// attached and wait for service to return.
        stranded_ues: &'a [UeId],
        /// Downlink packets left queued at the dark cell by UEs that could
        /// not re-select.
        stranded_packets: u64,
    },
    /// A scheduled backhaul link flap started or ended.
    FaultLinkFlap {
        /// Name of the flapped link.
        name: &'a str,
        /// When the transition happened.
        at: Instant,
        /// True at the flap start, false at the end.
        down: bool,
    },
    /// A scheduled control-channel decode-loss burst started: the flow's
    /// PDCCH pipeline decodes nothing until `until_ms`.
    FaultDecodeLoss {
        /// The affected flow.
        flow: u32,
        /// Burst start.
        at: Instant,
        /// First millisecond after the burst (exclusive).
        until_ms: u64,
    },
    /// A flow reached the end of the simulation; final sender-side stats.
    FlowClosed {
        /// Flow id.
        flow: u32,
        /// Fraction of time the sender spent in the Internet-bottleneck
        /// state (0 for schemes without the concept).
        internet_bottleneck_fraction: f64,
        /// True if the flow's UE ever aggregated a secondary carrier.
        carrier_aggregation_triggered: bool,
    },
}

/// A consumer of simulation events.
pub trait Observer {
    /// Called for every event, in simulation order.
    fn on_event(&mut self, event: &SimEvent<'_>);
}

impl<F: FnMut(&SimEvent<'_>)> Observer for F {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self(event)
    }
}
