//! Regression test: event dispatch hands observers *borrowed* payloads and
//! allocates nothing per event.
//!
//! The per-subframe hot loop emits a `SimEvent` to every observer; if any of
//! those emissions cloned a `String` or `Vec` (as the metrics collector once
//! did), simulation cost would scale with observer count.  This test installs
//! a counting global allocator and drives the observer interface directly:
//! steady-state dispatch — including the built-in metrics collector's
//! subframe accounting on non-boundary subframes — must perform zero
//! allocations.

use pbe_cellular::config::{CellId, Rnti, UeId};
use pbe_cellular::dci::{DciFormat, DciMessage};
use pbe_cellular::mcs::McsIndex;
use pbe_cellular::network::NetworkTickReport;
use pbe_cellular::prb::PrbAllocation;
use pbe_netsim::flow::{FlowConfig, SchemeChoice};
use pbe_netsim::metrics::MetricsCollector;
use pbe_netsim::observer::{Observer, SimEvent};
use pbe_stats::time::{Duration, Instant};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

fn dci(cell: CellId, rnti: Rnti, subframe: u64) -> DciMessage {
    DciMessage {
        cell,
        subframe,
        rnti,
        format: DciFormat::Format1,
        first_prb: 0,
        num_prbs: 25,
        mcs: McsIndex(20),
        spatial_streams: 2,
        new_data_indicator: true,
        harq_process: 0,
        tbs_bits: 36_000,
    }
}

/// A report shaped like a busy subframe of a two-UE cell.
fn report(subframe: u64) -> NetworkTickReport {
    let mut report = NetworkTickReport {
        subframe,
        ..NetworkTickReport::default()
    };
    let mut cr = pbe_cellular::cell::SubframeReport {
        cell: CellId(0),
        subframe,
        ..Default::default()
    };
    for ue in [UeId(1), UeId(2)] {
        let rnti = Rnti(0x0100 + u16::try_from(ue.0).unwrap());
        cr.dci_messages.push(dci(CellId(0), rnti, subframe));
        cr.prb_usage.total = 100;
        cr.prb_usage.allocations.push(PrbAllocation {
            ue,
            rnti,
            first_prb: 25 * (u16::try_from(ue.0).unwrap() - 1),
            num_prbs: 25,
        });
        cr.queue_bits.insert(ue, 48_000);
        report.dci_messages.push(dci(CellId(0), rnti, subframe));
    }
    report.cell_reports.push(cr);
    report
}

#[test]
fn steady_state_dispatch_allocates_nothing() {
    let flows = vec![
        FlowConfig::bulk(1, UeId(1), SchemeChoice::Pbe, Duration::from_secs(10)),
        FlowConfig::bulk(2, UeId(2), SchemeChoice::Pbe, Duration::from_secs(10)),
    ];
    let mut metrics = MetricsCollector::new(&flows, CellId(0));
    let mut borrowed_events = 0u64;
    let mut probe = |event: &SimEvent<'_>| {
        // The closure observer reads straight through the borrow — nothing
        // here forces a clone.
        if let SimEvent::SubframeScheduled { report, .. } = event {
            borrowed_events += u64::from(!report.dci_messages.is_empty());
        }
    };

    // Warm-up: fill the collector's accumulator maps to working size and
    // cross one 100 ms interval boundary (the boundary itself legitimately
    // allocates the interval record).
    let warm = report(0);
    for sf in 0..200u64 {
        let event = SimEvent::SubframeScheduled {
            now: Instant::from_millis(sf),
            report: &warm,
        };
        metrics.on_event(&event);
        probe.on_event(&event);
    }

    // Steady state: subframes 200..=298 stay inside one interval (the next
    // boundary fires at t_ms = 299), so dispatching to both observers must
    // not allocate at all.
    let r = report(200);
    let before = alloc_counter::allocation_count();
    for sf in 200..299u64 {
        let event = SimEvent::SubframeScheduled {
            now: Instant::from_millis(sf),
            report: &r,
        };
        metrics.on_event(&event);
        probe.on_event(&event);
    }
    let allocations = alloc_counter::allocation_count() - before;
    assert_eq!(
        allocations, 0,
        "steady-state observer dispatch allocated {allocations} times"
    );
    assert_eq!(borrowed_events, 99 + 200);
}
