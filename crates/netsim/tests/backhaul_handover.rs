//! Handover rerouting through the shared backhaul.
//!
//! A flow's backhaul route follows the cell its UE is attached to.  This
//! test drives the canonical A3 handover scenario (serving cell fades while
//! the neighbour rises) over a fan-out backhaul whose per-cell links mark
//! every packet (threshold 0), so the `BackhaulMark` stream reveals exactly
//! which per-cell link every packet traversed — before the handover all
//! traffic must ride the cell-0 link, after it the cell-1 link, with no
//! backhaul drops anywhere in between.

use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{
    BackhaulConfig, BackhaulLinkSpec, FlowConfig, SchemeChoice, SimBuilder, SimEvent,
};
use pbe_stats::time::Duration;
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn handover_reroutes_the_backhaul_path_without_losing_packets() {
    let ue = UeId(1);
    let duration = Duration::from_secs(10);
    // Generous capacities: the backhaul must not be the constraint, so any
    // drop would be a rerouting bug rather than congestion.
    let backhaul = BackhaulConfig::shared_aggregation(
        &[CellId(0), CellId(1), CellId(2)],
        BackhaulLinkSpec::new("agg", 400e6, Duration::from_millis(2), 4_000_000),
        |cell| {
            BackhaulLinkSpec::new(
                format!("cell-{}", cell.0),
                200e6,
                Duration::from_millis(1),
                4_000_000,
            )
            // Threshold 0 marks every packet: the mark stream doubles as a
            // per-packet record of which cell link the packet took.
            .with_mark_threshold(0)
        },
    );

    let marks: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
    let drops: Rc<RefCell<Vec<usize>>> = Rc::default();
    let handovers: Rc<RefCell<Vec<(u64, CellId, CellId)>>> = Rc::default();
    let mark_sink = marks.clone();
    let drop_sink = drops.clone();
    let ho_sink = handovers.clone();

    let result = SimBuilder::new()
        .seed(42)
        .duration(duration)
        .cell_profile(CellularConfig::default(), CellLoadProfile::idle())
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 1, -85.0),
            MobilityTrace::stationary(-85.0),
        )
        .trajectory(
            ue,
            CellId(0),
            MobilityTrace::from_secs(&[(0.0, -85.0), (7.0, -110.0)]),
        )
        .trajectory(
            ue,
            CellId(1),
            MobilityTrace::from_secs(&[(0.0, -110.0), (7.0, -85.0)]),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
        .backhaul(backhaul)
        .observe(move |event: &SimEvent<'_>| match event {
            SimEvent::BackhaulMark { at, link, .. } => {
                mark_sink.borrow_mut().push((at.as_millis(), *link))
            }
            SimEvent::BackhaulDrop { link, .. } => drop_sink.borrow_mut().push(*link),
            SimEvent::Handover { at, from, to, .. } => {
                ho_sink.borrow_mut().push((at.as_millis(), *from, *to))
            }
            _ => {}
        })
        .run();

    // The crossing fired exactly the expected handover.
    let handovers = handovers.borrow();
    assert!(!handovers.is_empty(), "no handover fired");
    let (ho_ms, from, to) = handovers[0];
    assert_eq!(from, CellId(0));
    assert_eq!(to, CellId(1));

    // Zero backhaul drops: rerouting never loses a packet.
    assert!(
        drops.borrow().is_empty(),
        "backhaul dropped packets: {:?}",
        drops.borrow()
    );
    for link in &result.backhaul_links {
        assert_eq!(
            link.stats.dropped_packets, 0,
            "link {} dropped packets",
            link.name
        );
    }

    // The mark stream shows the path switch: traffic rides the cell-0 link
    // (index 1) before the handover and the cell-1 link (index 2) after it.
    // Routing is decided at submission, so cell-0 marks may trail the
    // handover instant by the in-flight horizon (server delay + queueing).
    let marks = marks.borrow();
    let on_cell0 = marks.iter().filter(|&&(_, l)| l == 1).count();
    let on_cell1 = marks.iter().filter(|&&(_, l)| l == 2).count();
    assert!(on_cell0 > 100, "cell-0 link carried {on_cell0} packets");
    assert!(on_cell1 > 100, "cell-1 link carried {on_cell1} packets");
    assert!(
        marks.iter().all(|&(_, l)| l == 1 || l == 2),
        "marks outside the two serving-cell links"
    );
    assert!(
        marks
            .iter()
            .filter(|&&(_, l)| l == 2)
            .all(|&(at, _)| at >= ho_ms),
        "cell-1 link saw traffic before the handover at {ho_ms} ms"
    );
    let in_flight_horizon_ms = 300;
    assert!(
        marks
            .iter()
            .filter(|&&(_, l)| l == 1)
            .all(|&(at, _)| at <= ho_ms + in_flight_horizon_ms),
        "cell-0 link still carried traffic long after the handover"
    );

    // Routing conservation: everything the shared aggregation link admitted
    // came out of exactly the two serving-cell links, and the unused cell-2
    // route stayed idle.
    let admitted: Vec<u64> = result
        .backhaul_links
        .iter()
        .map(|l| l.stats.admitted_packets)
        .collect();
    assert_eq!(admitted[0], admitted[1] + admitted[2] + admitted[3]);
    assert_eq!(admitted[3], 0, "cell-2 link should never carry traffic");

    // The flow itself survives the switch at a healthy rate.
    assert!(
        result.flows[0].summary.avg_throughput_mbps > 10.0,
        "flow collapsed across the handover: {} Mbit/s",
        result.flows[0].summary.avg_throughput_mbps
    );
}
