//! Property tests: byte conservation of the shared backhaul.
//!
//! The backhaul is an analytic queueing model — packets are walked through
//! their whole route the moment their ingress time comes, while wall-clock
//! telemetry drains separately.  The invariant that keeps the two views
//! honest is conservation: every byte submitted is, at any instant,
//! delivered, dropped, or still inside the network — globally and per link.
//! These properties drive random fan-out and chain topologies with random
//! packet schedules and check the books after every tick.

use pbe_cellular::config::CellId;
use pbe_netsim::backhaul::BackhaulTickReport;
use pbe_netsim::{Backhaul, BackhaulConfig, BackhaulLinkSpec, BackhaulRoute};
use pbe_stats::time::{Duration, Instant};
use proptest::prelude::*;

/// Assert the global and per-link books balance at the current tick.
///
/// Globally: submitted = delivered + dropped + in-transit.  Per link:
/// admitted = forwarded + queued (the wall-clock queue the occupancy sample
/// reads), with drops accounted before admission.
fn assert_conserved(bh: &mut Backhaul, context: &str) {
    let submitted = bh.submitted_bytes();
    let delivered = bh.delivered_bytes();
    let dropped = bh.dropped_bytes();
    let in_transit = bh.in_transit_bytes();
    assert_eq!(
        submitted,
        delivered + dropped + in_transit,
        "end-to-end conservation {context}: {submitted} != {delivered} + {dropped} + {in_transit}"
    );
    let occupancy: Vec<u64> = bh.occupancy().to_vec();
    for (li, &queued) in occupancy.iter().enumerate() {
        let stats = bh.link_stats(li);
        assert_eq!(
            stats.admitted_bytes,
            stats.forwarded_bytes + queued,
            "link {li} conservation {context}: admitted {} != forwarded {} + queued {}",
            stats.admitted_bytes,
            stats.forwarded_bytes,
            queued
        );
        assert!(stats.forwarded_packets <= stats.admitted_packets);
        assert!(stats.marked_packets <= stats.admitted_packets);
    }
}

proptest! {
    /// Fan-out topology (one shared aggregation link feeding one link per
    /// cell): conservation holds after every tick, and after a full drain
    /// the queues are empty and every byte is delivered or dropped.
    #[test]
    fn fanout_topology_conserves_bytes(
        cells in 1usize..6,
        agg_rate_mbps in 4.0f64..40.0,
        cell_rate_mbps in 20.0f64..120.0,
        agg_limit_kb in 4u64..48,
        packets in proptest::collection::vec(
            (0u32..8, 200u32..1500, 0u64..200),
            1..150,
        ),
    ) {
        let cell_ids: Vec<CellId> = (0..cells as u16).map(CellId).collect();
        let cfg = BackhaulConfig::shared_aggregation(
            &cell_ids,
            BackhaulLinkSpec::new(
                "agg",
                agg_rate_mbps * 1e6,
                Duration::from_millis(2),
                agg_limit_kb * 1000,
            )
            .with_mark_threshold(agg_limit_kb * 500),
            |cell| {
                BackhaulLinkSpec::new(
                    format!("cell-{}", cell.0),
                    cell_rate_mbps * 1e6,
                    Duration::from_millis(1),
                    64_000,
                )
            },
        );
        cfg.validate().expect("fan-out topology validates");
        let mut bh = Backhaul::new(cfg);
        let mut expected_submitted = 0u64;
        for (id, &(cell_pick, bytes, ingress_ms)) in packets.iter().enumerate() {
            let cell = cell_ids[cell_pick as usize % cells];
            bh.submit(
                cell.0 as usize,
                cell,
                id as u64,
                bytes,
                Instant::from_millis(ingress_ms),
            );
            expected_submitted += u64::from(bytes);
        }
        prop_assert_eq!(bh.submitted_bytes(), expected_submitted);

        let mut report = BackhaulTickReport::default();
        let mut delivered_via_reports = 0u64;
        let mut dropped_via_reports = 0u64;
        for t in (0..=220u64).step_by(7) {
            bh.tick(Instant::from_millis(t), &mut report);
            delivered_via_reports +=
                report.deliveries.iter().map(|d| u64::from(d.bytes)).sum::<u64>();
            dropped_via_reports += report.drops.iter().map(|d| d.bytes).sum::<u64>();
            assert_conserved(&mut bh, "mid-run");
        }
        // Drain completely: nothing queued, nothing in transit, and the
        // per-report accounting agrees with the counters.
        bh.tick(Instant::from_secs(120), &mut report);
        delivered_via_reports +=
            report.deliveries.iter().map(|d| u64::from(d.bytes)).sum::<u64>();
        dropped_via_reports += report.drops.iter().map(|d| d.bytes).sum::<u64>();
        assert_conserved(&mut bh, "after drain");
        prop_assert_eq!(bh.in_transit_bytes(), 0);
        prop_assert_eq!(bh.in_transit_packets(), 0);
        prop_assert!(bh.occupancy().iter().all(|&q| q == 0));
        prop_assert_eq!(bh.delivered_bytes(), delivered_via_reports);
        prop_assert_eq!(bh.dropped_bytes(), dropped_via_reports);
        prop_assert_eq!(
            bh.submitted_bytes(),
            bh.delivered_bytes() + bh.dropped_bytes()
        );
    }

    /// Three-level chain (core → metro → per-cell): conservation holds, and
    /// each flow's surviving packets are delivered in submission order with
    /// nondecreasing arrival times (the in-order hand-off guarantee).
    #[test]
    fn chain_topology_conserves_bytes_and_keeps_flows_in_order(
        cells in 1usize..5,
        core_rate_mbps in 6.0f64..30.0,
        metro_limit_kb in 4u64..32,
        packets in proptest::collection::vec(
            (0u32..6, 300u32..1500, 0u64..4),
            1..120,
        ),
    ) {
        let mut links = vec![
            BackhaulLinkSpec::new("core", core_rate_mbps * 1e6, Duration::from_millis(3), 96_000),
            BackhaulLinkSpec::new("metro", 24e6, Duration::from_millis(2), metro_limit_kb * 1000)
                .with_mark_threshold(metro_limit_kb * 500),
        ];
        let mut routes = Vec::new();
        for c in 0..cells as u16 {
            let idx = links.len();
            links.push(BackhaulLinkSpec::new(
                format!("cell-{c}"),
                60e6,
                Duration::from_millis(1),
                64_000,
            ));
            routes.push(BackhaulRoute {
                cell: CellId(c),
                path: vec![0, 1, idx],
            });
        }
        let cfg = BackhaulConfig { links, routes, default_path: None };
        cfg.validate().expect("chain topology validates");
        let mut bh = Backhaul::new(cfg);

        // Per-flow monotone ingress times, as the simulator produces them
        // (send time + a fixed per-flow server delay).
        let mut flow_clock = [0u64; 6];
        let mut submitted_ids: Vec<Vec<u64>> = vec![Vec::new(); 6];
        for (id, &(flow_pick, bytes, gap_ms)) in packets.iter().enumerate() {
            let flow = flow_pick as usize % 6;
            flow_clock[flow] += gap_ms;
            let cell = CellId((flow % cells) as u16);
            bh.submit(flow, cell, id as u64, bytes, Instant::from_millis(flow_clock[flow]));
            submitted_ids[flow].push(id as u64);
        }

        let mut report = BackhaulTickReport::default();
        let mut delivered: Vec<Vec<(Instant, u64)>> = vec![Vec::new(); 6];
        let horizon = flow_clock.iter().max().copied().unwrap_or(0) + 30;
        for t in (0..=horizon).step_by(3) {
            bh.tick(Instant::from_millis(t), &mut report);
            for d in &report.deliveries {
                delivered[d.flow].push((d.arrive_at, d.packet_id));
            }
            assert_conserved(&mut bh, "mid-run");
        }
        bh.tick(Instant::from_secs(120), &mut report);
        for d in &report.deliveries {
            delivered[d.flow].push((d.arrive_at, d.packet_id));
        }
        assert_conserved(&mut bh, "after drain");
        prop_assert_eq!(bh.in_transit_bytes(), 0);

        for (flow, seen) in delivered.iter().enumerate() {
            // Arrivals nondecreasing, ids in submission order (drops may
            // thin the sequence but never permute it).
            prop_assert!(
                seen.windows(2).all(|w| w[0].0 <= w[1].0),
                "flow {} arrivals reordered: {:?}",
                flow,
                seen
            );
            let ids: Vec<u64> = seen.iter().map(|&(_, id)| id).collect();
            let mut expected = submitted_ids[flow].clone();
            expected.retain(|id| ids.contains(id));
            prop_assert_eq!(
                &ids, &expected,
                "flow {} delivered out of submission order", flow
            );
        }
    }
}
