//! Windowed max/min filters used by BBR-style estimators.
//!
//! BBR (and PBE-CC's cellular-tailored BBR mode) estimate the bottleneck
//! bandwidth as the maximum delivery rate observed over the last ~10 RTTs and
//! the round-trip propagation delay as the minimum RTT observed over the last
//! 10 seconds.  These filters keep the running extreme over a sliding time
//! window without storing every sample.

use pbe_stats::time::{Duration, Instant};

/// Running maximum over a sliding time window.
#[derive(Debug, Clone)]
pub struct WindowedMax {
    window: Duration,
    samples: Vec<(Instant, f64)>,
}

impl WindowedMax {
    /// Create a filter with the given window length.
    pub fn new(window: Duration) -> Self {
        WindowedMax {
            window,
            samples: Vec::new(),
        }
    }

    /// Change the window length.
    pub fn set_window(&mut self, window: Duration) {
        self.window = window;
    }

    /// Insert a sample and return the current windowed maximum.
    pub fn update(&mut self, now: Instant, value: f64) -> f64 {
        // Drop samples that have aged out or are dominated by the new value.
        self.samples
            .retain(|(t, v)| now.saturating_since(*t) <= self.window && *v > value);
        self.samples.push((now, value));
        self.get()
    }

    /// Current windowed maximum (0 if empty).
    pub fn get(&self) -> f64 {
        self.samples.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Expire old samples without adding a new one.
    pub fn expire(&mut self, now: Instant) {
        self.samples
            .retain(|(t, _)| now.saturating_since(*t) <= self.window);
    }
}

/// Running minimum over a sliding time window.
#[derive(Debug, Clone)]
pub struct WindowedMin {
    window: Duration,
    samples: Vec<(Instant, f64)>,
}

impl WindowedMin {
    /// Create a filter with the given window length.
    pub fn new(window: Duration) -> Self {
        WindowedMin {
            window,
            samples: Vec::new(),
        }
    }

    /// Change the window length.
    pub fn set_window(&mut self, window: Duration) {
        self.window = window;
    }

    /// Insert a sample and return the current windowed minimum.
    pub fn update(&mut self, now: Instant, value: f64) -> f64 {
        self.samples
            .retain(|(t, v)| now.saturating_since(*t) <= self.window && *v < value);
        self.samples.push((now, value));
        self.get()
    }

    /// Current windowed minimum (`f64::INFINITY` if empty).
    pub fn get(&self) -> f64 {
        self.samples
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Expire old samples without adding a new one.
    pub fn expire(&mut self, now: Instant) {
        self.samples
            .retain(|(t, _)| now.saturating_since(*t) <= self.window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> Instant {
        Instant::from_secs(v)
    }

    #[test]
    fn windowed_max_tracks_peak_and_expires() {
        let mut f = WindowedMax::new(Duration::from_secs(10));
        assert_eq!(f.update(s(0), 5.0), 5.0);
        assert_eq!(f.update(s(1), 3.0), 5.0);
        assert_eq!(f.update(s(2), 8.0), 8.0);
        // At t=13 the 8.0 sample (t=2) has aged out; only recent ones remain.
        assert_eq!(f.update(s(13), 4.0), 4.0);
    }

    #[test]
    fn windowed_min_tracks_floor_and_expires() {
        let mut f = WindowedMin::new(Duration::from_secs(10));
        assert_eq!(f.update(s(0), 50.0), 50.0);
        assert_eq!(f.update(s(1), 40.0), 40.0);
        assert_eq!(f.update(s(5), 60.0), 40.0);
        assert_eq!(f.update(s(12), 55.0), 55.0);
    }

    #[test]
    fn empty_filters_have_sentinel_values() {
        let max = WindowedMax::new(Duration::from_secs(1));
        let min = WindowedMin::new(Duration::from_secs(1));
        assert_eq!(max.get(), 0.0);
        assert!(min.get().is_infinite());
    }

    #[test]
    fn expire_without_update() {
        let mut f = WindowedMax::new(Duration::from_secs(2));
        f.update(s(0), 9.0);
        f.expire(s(10));
        assert_eq!(f.get(), 0.0);
        let mut m = WindowedMin::new(Duration::from_secs(2));
        m.update(s(0), 9.0);
        m.expire(s(10));
        assert!(m.get().is_infinite());
    }

    #[test]
    fn dominated_samples_are_pruned() {
        let mut f = WindowedMax::new(Duration::from_secs(100));
        for i in 0..1000u64 {
            f.update(s(i / 10), (i % 7) as f64);
        }
        // Internal storage stays small because dominated samples are dropped.
        assert!(f.samples.len() <= 8, "len = {}", f.samples.len());
    }
}
