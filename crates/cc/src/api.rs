//! The congestion-control trait every scheme implements.
//!
//! The simulator's sender node is scheme-agnostic: it paces fixed-size
//! packets at [`CongestionControl::pacing_rate_bps`] while keeping no more
//! than [`CongestionControl::cwnd_bytes`] in flight, and forwards every
//! acknowledgement (with its delay and delivery-rate samples, and the PBE
//! feedback fields when the receiver is PBE-aware) to
//! [`CongestionControl::on_ack`].

use pbe_stats::time::{Duration, Instant};
use serde::{Deserialize, Serialize};

/// Maximum segment size used throughout the reproduction (bytes of payload
/// per packet, the paper's 1500-byte packets).
pub const MSS_BYTES: u64 = 1500;

/// Identifier of a congestion-control scheme (all eight from the paper's
/// evaluation plus Reno, which is used in a couple of sanity benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeName {
    /// PBE-CC, the paper's contribution (implemented in `pbe-core`).
    PbeCc,
    /// TCP BBR v1.
    Bbr,
    /// TCP CUBIC.
    Cubic,
    /// TCP Reno (extra sanity baseline, not part of the paper's eight).
    Reno,
    /// Copa (NSDI'18).
    Copa,
    /// Verus (SIGCOMM'15).
    Verus,
    /// Sprout (NSDI'13).
    Sprout,
    /// PCC Allegro (NSDI'15).
    Pcc,
    /// PCC Vivace (NSDI'18).
    Vivace,
}

impl SchemeName {
    /// The baseline schemes the factory in this crate can build.
    pub const BASELINES: &'static [SchemeName] = &[
        SchemeName::Bbr,
        SchemeName::Cubic,
        SchemeName::Reno,
        SchemeName::Copa,
        SchemeName::Verus,
        SchemeName::Sprout,
        SchemeName::Pcc,
        SchemeName::Vivace,
    ];

    /// The schemes the paper compares (PBE-CC plus seven baselines).
    pub const PAPER_SCHEMES: &'static [SchemeName] = &[
        SchemeName::PbeCc,
        SchemeName::Bbr,
        SchemeName::Cubic,
        SchemeName::Verus,
        SchemeName::Sprout,
        SchemeName::Copa,
        SchemeName::Pcc,
        SchemeName::Vivace,
    ];

    /// Short display name.
    pub fn as_str(self) -> &'static str {
        match self {
            SchemeName::PbeCc => "PBE",
            SchemeName::Bbr => "BBR",
            SchemeName::Cubic => "CUBIC",
            SchemeName::Reno => "Reno",
            SchemeName::Copa => "Copa",
            SchemeName::Verus => "Verus",
            SchemeName::Sprout => "Sprout",
            SchemeName::Pcc => "PCC",
            SchemeName::Vivace => "Vivace",
        }
    }
}

impl std::fmt::Display for SchemeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Feedback the PBE-CC mobile client piggybacks on every acknowledgement
/// (paper §5: the capacity is described as an inter-packet interval carried
/// in a 32-bit integer, plus one bit identifying the bottleneck state).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PbeFeedback {
    /// Interval in microseconds between sending two 1500-byte packets that
    /// would exactly match the estimated bottleneck capacity.
    pub capacity_interval_us: u32,
    /// True if the mobile client believes the connection is currently
    /// bottlenecked inside the Internet rather than at the wireless link.
    pub internet_bottleneck: bool,
    /// The maximum fair-share wireless capacity `Cf` (translated to transport
    /// layer goodput), in bits per second — the cap of the paper's Eqn. 7.
    pub fair_share_rate_bps: f64,
}

impl PbeFeedback {
    /// The capacity encoded by `capacity_interval_us`, in bits per second.
    pub fn capacity_bps(&self) -> f64 {
        if self.capacity_interval_us == 0 {
            return f64::INFINITY;
        }
        (MSS_BYTES * 8) as f64 / (self.capacity_interval_us as f64 * 1e-6)
    }

    /// Encode a rate in bits per second as an inter-packet interval.
    pub fn interval_from_rate(rate_bps: f64) -> u32 {
        if rate_bps <= 0.0 {
            return u32::MAX;
        }
        let us = (MSS_BYTES * 8) as f64 / rate_bps * 1e6;
        us.clamp(1.0, u32::MAX as f64) as u32
    }
}

/// One acknowledgement as seen by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AckInfo {
    /// Arrival time of the ACK at the sender.
    pub now: Instant,
    /// Id of the newest packet acknowledged.
    pub packet_id: u64,
    /// Payload bytes newly acknowledged by this ACK.
    pub bytes_acked: u64,
    /// Round-trip time sample of the acknowledged packet.
    pub rtt: Duration,
    /// One-way delay measured by the receiver, in milliseconds (relative to
    /// an arbitrary clock offset; only differences are meaningful).
    pub one_way_delay_ms: f64,
    /// Sender-side delivery-rate estimate over the last RTT, bits per second.
    pub delivery_rate_bps: f64,
    /// Bytes still in flight after processing this ACK.
    pub inflight_bytes: u64,
    /// True if this ACK also signalled a lost packet (duplicate-ACK or
    /// SACK-style indication from the receiver).
    pub loss_detected: bool,
    /// True if the acknowledged packet carried an ECN congestion-experienced
    /// mark set by a wired queue on the path (RFC 3168 echo).  Pre-backhaul
    /// scenario JSON lacks the field and loads as `false`.
    #[serde(default)]
    pub ecn_ce: bool,
    /// PBE feedback fields, present when the receiver runs the PBE-CC client.
    pub pbe: Option<PbeFeedback>,
}

/// An explicit congestion notification delivered to the sender out of band,
/// ahead of the ACK clock — the SFC-style near-source signal (arxiv
/// 2305.00538): the first congested link on the path reports its state back
/// towards the server directly, so the sender can react after only the
/// upstream propagation delay instead of a full round trip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionSignal {
    /// When the marking decision was taken at the congested link.
    pub at: Instant,
    /// The congested link's line rate, bits per second.
    pub link_rate_bps: f64,
    /// Queue occupancy at the link when the mark was taken, bytes.
    pub queue_bytes: u64,
    /// Queueing delay implied by that occupancy at the link's line rate.
    pub queue_delay: Duration,
}

/// The sender-side congestion-control interface.
pub trait CongestionControl: Send {
    /// Human-readable scheme name (matches [`SchemeName::as_str`]).
    fn name(&self) -> &'static str;

    /// Process one acknowledgement.
    fn on_ack(&mut self, ack: &AckInfo);

    /// A packet was declared lost (retransmission timeout or queue drop made
    /// visible to the sender).
    fn on_loss(&mut self, now: Instant);

    /// A packet of `bytes` was sent, leaving `inflight_bytes` outstanding.
    fn on_packet_sent(&mut self, now: Instant, bytes: u64, inflight_bytes: u64);

    /// The rate the sender should currently pace packets at, bits per second.
    fn pacing_rate_bps(&self) -> f64;

    /// The maximum number of bytes the sender may keep in flight.
    fn cwnd_bytes(&self) -> u64;

    /// Fraction of time spent in an Internet-bottleneck state (only PBE-CC
    /// reports a meaningful value; baselines return 0).
    fn internet_bottleneck_fraction(&self) -> f64 {
        0.0
    }

    /// An out-of-band congestion signal arrived from the network (see
    /// [`CongestionSignal`]).  Most schemes never hear these; the default
    /// ignores them, and only signaling-aware schemes (SFC) override it.
    fn on_signal(&mut self, _now: Instant, _signal: &CongestionSignal) {}
}

/// Helper shared by several schemes: a conservative initial state.
pub(crate) fn initial_rate_bps() -> f64 {
    // 10 packets per 100 ms ≈ 1.2 Mbit/s.
    1.2e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names_are_unique_and_printable() {
        let mut names: Vec<&str> = SchemeName::PAPER_SCHEMES
            .iter()
            .map(|s| s.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SchemeName::PAPER_SCHEMES.len());
        assert_eq!(format!("{}", SchemeName::PbeCc), "PBE");
    }

    #[test]
    fn feedback_interval_roundtrip() {
        let rate = 24e6; // 24 Mbit/s
        let interval = PbeFeedback::interval_from_rate(rate);
        let fb = PbeFeedback {
            capacity_interval_us: interval,
            internet_bottleneck: false,
            fair_share_rate_bps: rate,
        };
        let back = fb.capacity_bps();
        assert!((back - rate).abs() / rate < 0.01, "{back} vs {rate}");
    }

    #[test]
    fn feedback_interval_edge_cases() {
        assert_eq!(PbeFeedback::interval_from_rate(0.0), u32::MAX);
        assert_eq!(PbeFeedback::interval_from_rate(-5.0), u32::MAX);
        let fb = PbeFeedback {
            capacity_interval_us: 0,
            internet_bottleneck: true,
            fair_share_rate_bps: 0.0,
        };
        assert!(fb.capacity_bps().is_infinite());
        // An extremely high rate clamps to a 1 µs interval (12 Gbit/s).
        let interval = PbeFeedback::interval_from_rate(1e12);
        assert_eq!(interval, 1);
    }

    #[test]
    fn paper_scheme_list_matches_evaluation_section() {
        assert_eq!(SchemeName::PAPER_SCHEMES.len(), 8);
        assert!(SchemeName::PAPER_SCHEMES.contains(&SchemeName::PbeCc));
        assert!(!SchemeName::PAPER_SCHEMES.contains(&SchemeName::Reno));
        assert_eq!(SchemeName::BASELINES.len(), 8);
    }
}
