//! TCP CUBIC — the loss-based baseline.
//!
//! CUBIC grows its congestion window as a cubic function of the time since
//! the last loss event, anchored at the window size where that loss occurred
//! (`W_max`), and falls back to a Reno-like "TCP-friendly" window when that
//! grows faster.  On loss it multiplies the window by β = 0.7 and applies
//! fast convergence.  On a deep cellular buffer this behaviour produces the
//! alternation the paper observes: high throughput with high delay until the
//! buffer overflows, then a deep back-off.

use crate::api::{AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};

const BETA: f64 = 0.7;
const C: f64 = 0.4;

/// TCP CUBIC.
#[derive(Debug)]
pub struct Cubic {
    /// Congestion window in segments (floating point, as in the kernel).
    cwnd: f64,
    /// Slow-start threshold in segments.
    ssthresh: f64,
    /// Window size at the last loss event.
    w_max: f64,
    /// Time of the last loss event.
    epoch_start: Option<Instant>,
    /// Origin point of the cubic curve.
    origin_point: f64,
    /// Time offset K of the cubic curve.
    k: f64,
    /// Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    /// Smoothed RTT used to convert the window into a pacing rate.
    srtt: Duration,
    last_loss: Option<Instant>,
}

impl Cubic {
    /// New CUBIC instance with the standard initial window of 10 segments.
    pub fn new(rtprop_hint: Duration) -> Self {
        Cubic {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            origin_point: 0.0,
            k: 0.0,
            w_est: 0.0,
            srtt: rtprop_hint,
            last_loss: None,
        }
    }

    /// Congestion window in segments (for tests).
    pub fn cwnd_segments(&self) -> f64 {
        self.cwnd
    }

    fn cubic_update(&mut self, now: Instant) {
        if self.epoch_start.is_none() {
            // First update of this congestion-avoidance epoch: anchor the
            // cubic curve at W_max (or at the current window if we are above
            // it, i.e. the curve's convex region).
            self.epoch_start = Some(now);
            if self.cwnd < self.w_max {
                self.k = ((self.w_max - self.cwnd) / C).cbrt();
                self.origin_point = self.w_max;
            } else {
                self.k = 0.0;
                self.origin_point = self.cwnd;
            }
            self.w_est = self.cwnd;
        }
        let epoch_start = self.epoch_start.expect("set above");
        let t = now.saturating_since(epoch_start).as_secs_f64();
        let target = self.origin_point + C * (t - self.k).powi(3);
        // TCP-friendly region: emulate Reno's per-ACK growth so CUBIC never
        // falls below what standard TCP would achieve.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) / self.cwnd.max(1.0);
        let next = if target > self.cwnd {
            self.cwnd + (target - self.cwnd) / self.cwnd.max(1.0)
        } else {
            self.cwnd + 0.01 / self.cwnd.max(1.0)
        };
        self.cwnd = next.max(self.w_est).max(2.0);
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "CUBIC"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        // Smooth the RTT (standard EWMA with alpha = 1/8).
        let sample = ack.rtt.as_secs_f64();
        let prev = self.srtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(prev * 0.875 + sample * 0.125);

        if ack.loss_detected {
            self.on_loss(ack.now);
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: one segment per ACK.
            self.cwnd += 1.0;
        } else {
            self.cubic_update(ack.now);
        }
    }

    fn on_loss(&mut self, now: Instant) {
        // Ignore multiple losses within one RTT (one congestion event).
        if let Some(last) = self.last_loss {
            if now.saturating_since(last) < self.srtt {
                return;
            }
        }
        self.last_loss = Some(now);
        // Fast convergence: release bandwidth faster when the window shrank.
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (1.0 + BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.cwnd = (self.cwnd * BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.origin_point = 0.0;
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        // Window-based schemes are paced at cwnd / RTT (with a small headroom
        // so pacing is not the limiting factor).
        let rtt = self.srtt.as_secs_f64().max(1e-3);
        self.cwnd * MSS_BYTES as f64 * 8.0 / rtt * 1.2
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * MSS_BYTES as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_millis(rtt_ms),
            one_way_delay_ms: rtt_ms as f64 / 2.0,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cubic = Cubic::new(Duration::from_millis(40));
        let w0 = cubic.cwnd_segments();
        for i in 0..10u64 {
            cubic.on_ack(&ack(i, 40));
        }
        assert!((cubic.cwnd_segments() - (w0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn loss_multiplies_window_by_beta() {
        let mut cubic = Cubic::new(Duration::from_millis(40));
        for i in 0..90u64 {
            cubic.on_ack(&ack(i, 40));
        }
        let before = cubic.cwnd_segments();
        cubic.on_loss(Instant::from_millis(100));
        let after = cubic.cwnd_segments();
        assert!(
            (after - before * BETA).abs() < 1e-6,
            "{after} vs {}",
            before * BETA
        );
    }

    #[test]
    fn repeated_losses_within_an_rtt_count_once() {
        let mut cubic = Cubic::new(Duration::from_millis(40));
        for i in 0..50u64 {
            cubic.on_ack(&ack(i, 40));
        }
        cubic.on_loss(Instant::from_millis(100));
        let after_first = cubic.cwnd_segments();
        cubic.on_loss(Instant::from_millis(105));
        assert_eq!(cubic.cwnd_segments(), after_first);
        // A loss after more than one RTT does reduce it again.
        cubic.on_loss(Instant::from_millis(200));
        assert!(cubic.cwnd_segments() < after_first);
    }

    #[test]
    fn cubic_growth_resumes_after_loss_and_approaches_w_max() {
        let mut cubic = Cubic::new(Duration::from_millis(40));
        for i in 0..100u64 {
            cubic.on_ack(&ack(i, 40));
        }
        cubic.on_loss(Instant::from_millis(200));
        let floor = cubic.cwnd_segments();
        // Congestion avoidance for a simulated 20 seconds.
        for i in 0..500u64 {
            cubic.on_ack(&ack(200 + i * 40, 40));
        }
        let later = cubic.cwnd_segments();
        assert!(later > floor, "window grows again: {later} > {floor}");
    }

    #[test]
    fn pacing_rate_scales_with_window_over_rtt() {
        let mut cubic = Cubic::new(Duration::from_millis(50));
        for i in 0..40u64 {
            cubic.on_ack(&ack(i, 50));
        }
        let segments = cubic.cwnd_segments();
        let expected = segments * 1500.0 * 8.0 / 0.050 * 1.2;
        assert!((cubic.pacing_rate_bps() - expected).abs() / expected < 0.05);
        assert_eq!(cubic.cwnd_bytes(), (segments * 1500.0) as u64);
    }

    #[test]
    fn ack_carrying_loss_flag_triggers_backoff() {
        let mut cubic = Cubic::new(Duration::from_millis(40));
        for i in 0..50u64 {
            cubic.on_ack(&ack(i, 40));
        }
        let before = cubic.cwnd_segments();
        let mut lossy = ack(60, 40);
        lossy.loss_detected = true;
        cubic.on_ack(&lossy);
        assert!(cubic.cwnd_segments() < before);
    }
}
