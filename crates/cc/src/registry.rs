//! The open, string-keyed scheme registry.
//!
//! Historically the workspace identified congestion-control schemes with the
//! closed [`SchemeName`] enum, and the simulator
//! special-cased PBE-CC on top of it.  The registry inverts that: a scheme is
//! a [`SchemeId`] (its display name) mapped to a factory closure, so every
//! algorithm — the eight baselines, PBE-CC (registered by `pbe-core`), and
//! any experimental scheme a test or example wants to try — is constructed
//! through exactly the same interface.  The enum remains as a thin
//! serde-compatibility shim that resolves to a [`SchemeId`].

use crate::api::{CongestionControl, SchemeName};
use crate::{Bbr, Copa, Cubic, CubicEcn, Pcc, Reno, Sfc, Sprout, Verus, Vivace};
use pbe_stats::time::Duration;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Registry key of a congestion-control scheme: its canonical display name.
///
/// This type is the single source of truth for scheme display names —
/// result tables, flow summaries and the enum shims all render through its
/// `Display` impl.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemeId(Cow<'static, str>);

impl SchemeId {
    /// Key from a static string (used by the built-in schemes).
    pub const fn from_static(name: &'static str) -> Self {
        SchemeId(Cow::Borrowed(name))
    }

    /// Key from an arbitrary string (used by externally registered schemes).
    pub fn new(name: impl Into<String>) -> Self {
        SchemeId(Cow::Owned(name.into()))
    }

    /// The scheme's display name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SchemeId {
    fn from(name: &str) -> Self {
        SchemeId::new(name)
    }
}

impl From<String> for SchemeId {
    fn from(name: String) -> Self {
        SchemeId::new(name)
    }
}

impl From<SchemeName> for SchemeId {
    fn from(name: SchemeName) -> Self {
        SchemeId::from_static(name.as_str())
    }
}

/// Everything a factory may consult when building a scheme instance.
#[derive(Debug, Clone, Copy)]
pub struct SchemeCtx {
    /// A-priori round-trip propagation hint for the flow's path.
    pub rtprop_hint: Duration,
    /// The experiment seed (for schemes with stochastic internals).
    pub seed: u64,
}

impl SchemeCtx {
    /// Context with the given RTprop hint and a zero seed.
    pub fn new(rtprop_hint: Duration) -> Self {
        SchemeCtx {
            rtprop_hint,
            seed: 0,
        }
    }
}

/// Factory building one congestion-control instance.
pub type SchemeFactory = Box<dyn Fn(&SchemeCtx) -> Box<dyn CongestionControl> + Send + Sync>;

/// String-keyed factory table of congestion-control schemes.
pub struct SchemeRegistry {
    entries: BTreeMap<SchemeId, SchemeFactory>,
}

impl fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field("schemes", &self.ids())
            .finish()
    }
}

macro_rules! register_baseline {
    ($reg:expr, $name:expr, $ty:ty) => {
        $reg.register($name, |ctx: &SchemeCtx| {
            Box::new(<$ty>::new(ctx.rtprop_hint)) as Box<dyn CongestionControl>
        });
    };
}

impl SchemeRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        SchemeRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry with the eight baseline schemes this crate implements,
    /// plus the two signaling-assisted variants (`CUBIC-ECN`, `SFC`) that
    /// only act on backhaul congestion marks.  PBE-CC registers itself
    /// through the same interface from `pbe-core`.
    pub fn with_baselines() -> Self {
        let mut reg = SchemeRegistry::empty();
        register_baseline!(reg, SchemeName::Bbr, Bbr);
        register_baseline!(reg, SchemeName::Cubic, Cubic);
        register_baseline!(reg, SchemeName::Reno, Reno);
        register_baseline!(reg, SchemeName::Copa, Copa);
        register_baseline!(reg, SchemeName::Verus, Verus);
        register_baseline!(reg, SchemeName::Sprout, Sprout);
        register_baseline!(reg, SchemeName::Pcc, Pcc);
        register_baseline!(reg, SchemeName::Vivace, Vivace);
        // The signaling-assisted schemes are string-keyed only: they are not
        // part of the paper's eight, so they get no `SchemeName` variant and
        // the closed-enum serde shims never resolve to them.
        register_baseline!(reg, "CUBIC-ECN", CubicEcn);
        register_baseline!(reg, "SFC", Sfc);
        reg
    }

    /// Register (or replace) a scheme under the given key.
    pub fn register<F>(&mut self, id: impl Into<SchemeId>, factory: F)
    where
        F: Fn(&SchemeCtx) -> Box<dyn CongestionControl> + Send + Sync + 'static,
    {
        self.entries.insert(id.into(), Box::new(factory));
    }

    /// True if a scheme is registered under the key.
    pub fn contains(&self, id: &SchemeId) -> bool {
        self.entries.contains_key(id)
    }

    /// The registered keys, in sorted order.
    pub fn ids(&self) -> Vec<SchemeId> {
        self.entries.keys().cloned().collect()
    }

    /// Build an instance of the scheme registered under `id`.
    pub fn build(&self, id: &SchemeId, ctx: &SchemeCtx) -> Option<Box<dyn CongestionControl>> {
        self.entries.get(id).map(|f| f(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_stats::time::Duration;

    fn ctx() -> SchemeCtx {
        SchemeCtx::new(Duration::from_millis(40))
    }

    #[test]
    fn baseline_registry_builds_every_scheme() {
        let reg = SchemeRegistry::with_baselines();
        assert_eq!(reg.ids().len(), 10);
        for name in SchemeName::BASELINES {
            let id = SchemeId::from(*name);
            assert!(reg.contains(&id), "{id} registered");
            let cc = reg.build(&id, &ctx()).expect("factory builds");
            assert_eq!(cc.name(), id.as_str());
            assert!(cc.pacing_rate_bps() > 0.0);
        }
    }

    #[test]
    fn signaling_schemes_ride_the_same_registry() {
        let reg = SchemeRegistry::with_baselines();
        for key in ["CUBIC-ECN", "SFC"] {
            let id = SchemeId::new(key);
            assert!(reg.contains(&id), "{key} registered");
            let cc = reg.build(&id, &ctx()).expect("factory builds");
            assert_eq!(cc.name(), key);
            assert!(cc.pacing_rate_bps() > 0.0);
        }
    }

    #[test]
    fn unknown_scheme_returns_none() {
        let reg = SchemeRegistry::with_baselines();
        assert!(reg.build(&SchemeId::new("NoSuchScheme"), &ctx()).is_none());
    }

    #[test]
    fn external_scheme_can_be_registered_and_replaces() {
        struct Fixed;
        impl CongestionControl for Fixed {
            fn name(&self) -> &'static str {
                "Fixed42"
            }
            fn on_ack(&mut self, _ack: &crate::api::AckInfo) {}
            fn on_loss(&mut self, _now: pbe_stats::time::Instant) {}
            fn on_packet_sent(
                &mut self,
                _now: pbe_stats::time::Instant,
                _bytes: u64,
                _inflight: u64,
            ) {
            }
            fn pacing_rate_bps(&self) -> f64 {
                42e6
            }
            fn cwnd_bytes(&self) -> u64 {
                1 << 20
            }
        }
        let mut reg = SchemeRegistry::empty();
        reg.register("Fixed42", |_ctx| Box::new(Fixed));
        let cc = reg.build(&SchemeId::new("Fixed42"), &ctx()).unwrap();
        assert_eq!(cc.pacing_rate_bps(), 42e6);
    }

    #[test]
    fn scheme_id_display_is_canonical() {
        assert_eq!(SchemeId::from(SchemeName::PbeCc).to_string(), "PBE");
        assert_eq!(SchemeId::new("TOY").to_string(), "TOY");
        assert_eq!(SchemeId::from_static("BBR"), SchemeId::new("BBR"));
    }
}
