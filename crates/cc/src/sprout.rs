//! Sprout (Winstein et al., NSDI 2013) — stochastic-forecast congestion
//! control for cellular links.
//!
//! Sprout infers the link's packet-delivery process from packet arrival
//! times, forecasts the number of packets the link will deliver over the next
//! "tick" intervals, and sends only as much as the *conservative* (5th
//! percentile in the original, a low quantile here) forecast says will drain
//! within the 100 ms delay target.  The conservatism gives Sprout low delay
//! but leaves capacity unused on links that are faster than the pessimistic
//! forecast — the behaviour the paper measures.

use crate::api::{AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};
use std::collections::VecDeque;

/// Delay target: Sprout aims for packets to spend at most this long queued.
const DELAY_TARGET_MS: f64 = 100.0;
/// Quantile of the recent delivery-rate distribution used as the forecast.
const CONSERVATIVE_QUANTILE: f64 = 0.05;

/// Sprout congestion control.
#[derive(Debug)]
pub struct Sprout {
    /// Recent per-ACK delivery-rate samples (bits per second).
    rate_samples: VecDeque<f64>,
    srtt: Duration,
    cwnd_bytes: u64,
    forecast_bps: f64,
}

impl Sprout {
    /// New Sprout instance.
    pub fn new(rtprop_hint: Duration) -> Self {
        Sprout {
            rate_samples: VecDeque::with_capacity(256),
            srtt: rtprop_hint,
            cwnd_bytes: 10 * MSS_BYTES,
            forecast_bps: 1.0e6,
        }
    }

    /// The conservative delivery forecast in bits per second.
    pub fn forecast_bps(&self) -> f64 {
        self.forecast_bps
    }

    fn update_forecast(&mut self) {
        if self.rate_samples.is_empty() {
            return;
        }
        let mut sorted: Vec<f64> = self.rate_samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((sorted.len() as f64 - 1.0) * CONSERVATIVE_QUANTILE) as usize;
        self.forecast_bps = sorted[idx].max(8.0 * MSS_BYTES as f64);
    }
}

impl CongestionControl for Sprout {
    fn name(&self) -> &'static str {
        "Sprout"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let rtt = ack.rtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(self.srtt.as_secs_f64() * 0.875 + rtt * 0.125);
        if ack.delivery_rate_bps > 0.0 {
            self.rate_samples.push_back(ack.delivery_rate_bps);
            while self.rate_samples.len() > 200 {
                self.rate_samples.pop_front();
            }
        }
        self.update_forecast();
        // Window: the bytes the conservative forecast drains within the delay
        // target, minus what is already queued (approximated by the amount in
        // flight beyond one BDP).
        let budget_bytes = self.forecast_bps / 8.0 * (DELAY_TARGET_MS / 1e3);
        let bdp_bytes = self.forecast_bps / 8.0 * self.srtt.as_secs_f64();
        let queued = ack.inflight_bytes as f64 - bdp_bytes;
        let window = (budget_bytes - queued.max(0.0)).max(MSS_BYTES as f64 * 2.0);
        self.cwnd_bytes = window as u64;
    }

    fn on_loss(&mut self, _now: Instant) {
        // Forecast-driven; loss shrinks the window only via the forecast.
        self.cwnd_bytes = (self.cwnd_bytes / 2).max(2 * MSS_BYTES);
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        self.forecast_bps
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rate_bps: f64, inflight: u64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_millis(40),
            one_way_delay_ms: 20.0,
            delivery_rate_bps: rate_bps,
            inflight_bytes: inflight,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn forecast_is_conservative_quantile_of_observed_rates() {
        let mut sprout = Sprout::new(Duration::from_millis(40));
        // Rates oscillate between 5 and 50 Mbit/s; the forecast should sit
        // near the bottom of that range.
        for i in 0..200u64 {
            let rate = if i % 2 == 0 { 5e6 } else { 50e6 };
            sprout.on_ack(&ack(i * 10, rate, 20_000));
        }
        assert!(
            sprout.forecast_bps() <= 6e6,
            "forecast = {}",
            sprout.forecast_bps()
        );
        assert!(sprout.pacing_rate_bps() <= 6e6);
    }

    #[test]
    fn window_respects_delay_target() {
        let mut sprout = Sprout::new(Duration::from_millis(40));
        for i in 0..100u64 {
            sprout.on_ack(&ack(i * 10, 24e6, 10_000));
        }
        // 24 Mbit/s × 100 ms = 300 kB budget.
        let budget = 24e6 / 8.0 * 0.1;
        assert!(sprout.cwnd_bytes() as f64 <= budget * 1.1);
        assert!(sprout.cwnd_bytes() >= 2 * MSS_BYTES);
    }

    #[test]
    fn standing_queue_shrinks_the_window() {
        let mut sprout = Sprout::new(Duration::from_millis(40));
        for i in 0..100u64 {
            sprout.on_ack(&ack(i * 10, 24e6, 10_000));
        }
        let small_queue = sprout.cwnd_bytes();
        for i in 100..200u64 {
            sprout.on_ack(&ack(i * 10, 24e6, 500_000));
        }
        assert!(sprout.cwnd_bytes() < small_queue);
    }

    #[test]
    fn loss_halves_window() {
        let mut sprout = Sprout::new(Duration::from_millis(40));
        for i in 0..50u64 {
            sprout.on_ack(&ack(i * 10, 24e6, 10_000));
        }
        let before = sprout.cwnd_bytes();
        sprout.on_loss(Instant::from_secs(1));
        assert!(sprout.cwnd_bytes() <= before / 2 + MSS_BYTES);
    }
}
