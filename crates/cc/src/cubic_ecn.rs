//! CUBIC with classic ECN (RFC 3168) semantics.
//!
//! Identical to [`Cubic`] except that an acknowledgement echoing a
//! congestion-experienced mark triggers the same multiplicative back-off as
//! a loss — without any packet actually being dropped.  On a backhaul link
//! with a marking threshold this turns the CUBIC sawtooth from a
//! drop-and-retransmit cycle into a lossless one: the queue oscillates
//! around the marking threshold instead of the buffer limit.

use crate::api::{AckInfo, CongestionControl, CongestionSignal};
use crate::cubic::Cubic;
use pbe_stats::time::{Duration, Instant};

/// CUBIC reacting to ECN congestion-experienced echoes as to losses.
#[derive(Debug)]
pub struct CubicEcn {
    inner: Cubic,
}

impl CubicEcn {
    /// New instance with CUBIC's standard initial window.
    pub fn new(rtprop_hint: Duration) -> Self {
        CubicEcn {
            inner: Cubic::new(rtprop_hint),
        }
    }

    /// Congestion window in segments (for tests).
    pub fn cwnd_segments(&self) -> f64 {
        self.inner.cwnd_segments()
    }
}

impl CongestionControl for CubicEcn {
    fn name(&self) -> &'static str {
        "CUBIC-ECN"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        // RFC 3168: a CE echo is a congestion event exactly like a loss.
        // CUBIC's own once-per-RTT guard keeps a whole marked flight from
        // collapsing the window repeatedly.
        if ack.ecn_ce {
            self.inner.on_loss(ack.now);
        }
        self.inner.on_ack(ack);
    }

    fn on_loss(&mut self, now: Instant) {
        self.inner.on_loss(now);
    }

    fn on_packet_sent(&mut self, now: Instant, bytes: u64, inflight: u64) {
        self.inner.on_packet_sent(now, bytes, inflight);
    }

    fn pacing_rate_bps(&self) -> f64 {
        self.inner.pacing_rate_bps()
    }

    fn cwnd_bytes(&self) -> u64 {
        self.inner.cwnd_bytes()
    }

    fn on_signal(&mut self, _now: Instant, _signal: &CongestionSignal) {
        // ECN reacts through the ACK echo path only; out-of-band signals are
        // the SFC scheme's territory.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MSS_BYTES;

    fn ack(now_ms: u64, ecn_ce: bool) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_millis(40),
            one_way_delay_ms: 20.0,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: false,
            ecn_ce,
            pbe: None,
        }
    }

    #[test]
    fn ce_echo_backs_the_window_off_like_a_loss() {
        let mut cc = CubicEcn::new(Duration::from_millis(40));
        for i in 0..60u64 {
            cc.on_ack(&ack(i, false));
        }
        let before = cc.cwnd_segments();
        cc.on_ack(&ack(100, true));
        assert!(
            cc.cwnd_segments() < before,
            "CE echo must shrink the window ({before} -> {})",
            cc.cwnd_segments()
        );
    }

    #[test]
    fn unmarked_acks_grow_the_window_exactly_like_cubic() {
        let mut ecn = CubicEcn::new(Duration::from_millis(40));
        let mut plain = Cubic::new(Duration::from_millis(40));
        for i in 0..200u64 {
            ecn.on_ack(&ack(i, false));
            plain.on_ack(&ack(i, false));
        }
        assert_eq!(ecn.cwnd_segments(), plain.cwnd_segments());
        assert_eq!(ecn.cwnd_bytes(), plain.cwnd_bytes());
    }

    #[test]
    fn marks_within_one_rtt_count_as_one_congestion_event() {
        let mut cc = CubicEcn::new(Duration::from_millis(40));
        for i in 0..60u64 {
            cc.on_ack(&ack(i, false));
        }
        cc.on_ack(&ack(100, true));
        let after_first = cc.cwnd_segments();
        cc.on_ack(&ack(110, true));
        // Second mark lands inside the same RTT: no further reduction (the
        // window may have grown slightly from the ack itself).
        assert!(cc.cwnd_segments() >= after_first);
    }
}
