//! Verus (Zaki et al., SIGCOMM 2015) — delay-profile congestion control for
//! cellular networks.
//!
//! Verus learns a *delay profile*: a mapping from congestion-window size to
//! the end-to-end delay that window produces.  Each epoch it picks the next
//! window by consulting the profile: if the observed delay is below the
//! target it asks the profile for a window associated with slightly more
//! delay (increasing its rate); if the delay exceeds the target it asks for a
//! window associated with less delay (backing off multiplicatively on large
//! excursions).  The profile is re-fitted continuously from (window, delay)
//! observations.  On a deep cellular buffer Verus achieves high throughput
//! but tolerates large standing delays, which is what the paper measures.

use crate::api::{AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};

/// Multiplicative decrease factor on delay overshoot.
const BACKOFF: f64 = 0.85;
/// Epoch length as a multiple of the minimum RTT.
const EPOCH_RTT_FRACTION: f64 = 0.2;

/// Verus congestion control.
#[derive(Debug)]
pub struct Verus {
    cwnd: f64,
    /// Learned delay profile: EWMA of delay observed per window bucket
    /// (bucket = 4 segments).
    profile: Vec<f64>,
    min_delay_ms: f64,
    max_delay_seen_ms: f64,
    srtt: Duration,
    epoch_start: Instant,
    epoch_delays: Vec<f64>,
    /// Delay-target multiplier over the minimum delay (Verus's R parameter).
    delay_target_ratio: f64,
}

impl Verus {
    /// New Verus instance.
    pub fn new(rtprop_hint: Duration) -> Self {
        Verus {
            cwnd: 10.0,
            profile: vec![0.0; 2048],
            min_delay_ms: f64::INFINITY,
            max_delay_seen_ms: 0.0,
            srtt: rtprop_hint,
            epoch_start: Instant::ZERO,
            epoch_delays: Vec::new(),
            delay_target_ratio: 4.0,
        }
    }

    /// Congestion window in segments.
    pub fn cwnd_segments(&self) -> f64 {
        self.cwnd
    }

    fn bucket(cwnd: f64) -> usize {
        ((cwnd / 4.0) as usize).min(2047)
    }

    fn update_profile(&mut self, cwnd: f64, delay_ms: f64) {
        let b = Self::bucket(cwnd);
        let cur = self.profile[b];
        self.profile[b] = if cur == 0.0 {
            delay_ms
        } else {
            cur * 0.8 + delay_ms * 0.2
        };
    }

    /// Find the largest window whose profiled delay is below `target_ms`.
    fn window_for_delay(&self, target_ms: f64) -> Option<f64> {
        let mut best = None;
        for (b, d) in self.profile.iter().enumerate() {
            if *d > 0.0 && *d <= target_ms {
                best = Some((b as f64 + 1.0) * 4.0);
            }
        }
        best
    }

    fn end_epoch(&mut self, _now: Instant) {
        if self.epoch_delays.is_empty() {
            return;
        }
        let avg_delay = self.epoch_delays.iter().sum::<f64>() / self.epoch_delays.len() as f64;
        self.epoch_delays.clear();
        self.update_profile(self.cwnd, avg_delay);
        let target = self.min_delay_ms * self.delay_target_ratio;
        if avg_delay > self.max_delay_seen_ms.max(target) {
            // Severe overshoot: multiplicative decrease.
            self.cwnd = (self.cwnd * BACKOFF).max(2.0);
        } else if avg_delay > target {
            // Mild overshoot: consult the profile for a smaller-delay window.
            if let Some(w) = self.window_for_delay(target * 0.9) {
                self.cwnd = (self.cwnd * 0.5 + w * 0.5).max(2.0);
            } else {
                self.cwnd = (self.cwnd - 1.0).max(2.0);
            }
        } else {
            // Below target: ask for a window associated with a bit more delay
            // than we currently see, i.e. keep pushing rate up.
            if let Some(w) = self.window_for_delay(avg_delay * 1.2) {
                self.cwnd = self.cwnd.max(w) + 2.0;
            } else {
                self.cwnd += 2.0;
            }
        }
        self.max_delay_seen_ms = self.max_delay_seen_ms.max(avg_delay);
    }
}

impl CongestionControl for Verus {
    fn name(&self) -> &'static str {
        "Verus"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let rtt = ack.rtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(self.srtt.as_secs_f64() * 0.875 + rtt * 0.125);
        self.min_delay_ms = self.min_delay_ms.min(ack.one_way_delay_ms.max(0.1));
        self.epoch_delays.push(ack.one_way_delay_ms);
        let epoch_len =
            Duration::from_secs_f64((self.srtt.as_secs_f64() * EPOCH_RTT_FRACTION).max(0.005));
        if ack.now.saturating_since(self.epoch_start) >= epoch_len {
            self.end_epoch(ack.now);
            self.epoch_start = ack.now;
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        self.cwnd = (self.cwnd * 0.5).max(2.0);
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        let rtt = self.srtt.as_secs_f64().max(1e-3);
        self.cwnd * MSS_BYTES as f64 * 8.0 / rtt * 1.2
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * MSS_BYTES as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, delay_ms: f64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_secs_f64(delay_ms * 2.0 / 1e3),
            one_way_delay_ms: delay_ms,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn low_delay_grows_the_window() {
        let mut verus = Verus::new(Duration::from_millis(40));
        let start = verus.cwnd_segments();
        for i in 0..300u64 {
            verus.on_ack(&ack(i * 5, 25.0));
        }
        assert!(verus.cwnd_segments() > start);
    }

    #[test]
    fn sustained_delay_overshoot_backs_off() {
        let mut verus = Verus::new(Duration::from_millis(40));
        // Establish a low minimum delay, then grow.
        for i in 0..200u64 {
            verus.on_ack(&ack(i * 5, 25.0));
        }
        let grown = verus.cwnd_segments();
        // Delay explodes to 10x the minimum.
        for i in 200..600u64 {
            verus.on_ack(&ack(i * 5, 280.0));
        }
        assert!(
            verus.cwnd_segments() < grown,
            "window backs off under 280 ms delays ({} -> {})",
            grown,
            verus.cwnd_segments()
        );
    }

    #[test]
    fn verus_tolerates_moderate_delay_above_minimum() {
        // Delay at 3x the minimum is inside Verus's tolerance, so the window
        // should not collapse — the root cause of its high standing delay.
        let mut verus = Verus::new(Duration::from_millis(40));
        for i in 0..100u64 {
            verus.on_ack(&ack(i * 5, 30.0));
        }
        for i in 100..400u64 {
            verus.on_ack(&ack(i * 5, 90.0));
        }
        assert!(
            verus.cwnd_segments() >= 10.0,
            "cwnd = {}",
            verus.cwnd_segments()
        );
    }

    #[test]
    fn loss_halves_the_window() {
        let mut verus = Verus::new(Duration::from_millis(40));
        for i in 0..200u64 {
            verus.on_ack(&ack(i * 5, 25.0));
        }
        let before = verus.cwnd_segments();
        verus.on_loss(Instant::from_secs(2));
        assert!((verus.cwnd_segments() - before * 0.5).abs() < 1e-9);
    }

    #[test]
    fn profile_is_learned() {
        let mut verus = Verus::new(Duration::from_millis(40));
        for i in 0..500u64 {
            verus.on_ack(&ack(i * 5, 30.0 + (i % 10) as f64));
        }
        let populated = verus.profile.iter().filter(|d| **d > 0.0).count();
        assert!(populated >= 1, "profile buckets populated: {populated}");
        assert!(verus.window_for_delay(1000.0).is_some());
        assert!(verus.window_for_delay(0.0001).is_none());
    }
}
