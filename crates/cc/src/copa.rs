//! Copa (Arun & Balakrishnan, NSDI 2018) — delay-based target-rate control.
//!
//! Copa steers its sending rate towards the target `1 / (δ · d_q)` packets
//! per second, where `d_q` is the measured queueing delay (standing RTT minus
//! the minimum RTT) and δ defaults to 0.5.  The window moves towards the
//! target by `v / (δ · cwnd)` per ACK, with the velocity `v` doubling while
//! the direction is consistent.  The result is low queueing delay but — on a
//! fast-varying cellular link — a conservative rate, which is exactly the
//! behaviour the paper reports (an order of magnitude lower throughput than
//! PBE-CC, with slightly lower delay).

use crate::api::{AckInfo, CongestionControl, MSS_BYTES};
use crate::windowed::WindowedMin;
use pbe_stats::time::{Duration, Instant};

/// Copa's δ parameter (packets of queueing the algorithm tolerates).
const DELTA: f64 = 0.5;

/// Copa congestion control.
#[derive(Debug)]
pub struct Copa {
    cwnd: f64,
    velocity: f64,
    direction_up: bool,
    direction_streak: u32,
    rtt_min: WindowedMin,
    rtt_standing: WindowedMin,
    srtt: Duration,
    last_update: Instant,
}

impl Copa {
    /// New Copa instance.
    pub fn new(rtprop_hint: Duration) -> Self {
        Copa {
            cwnd: 10.0,
            velocity: 1.0,
            direction_up: true,
            direction_streak: 0,
            rtt_min: WindowedMin::new(Duration::from_secs(10)),
            rtt_standing: WindowedMin::new(Duration::from_millis(100)),
            srtt: rtprop_hint,
            last_update: Instant::ZERO,
        }
    }

    /// Congestion window in segments.
    pub fn cwnd_segments(&self) -> f64 {
        self.cwnd
    }

    /// Current queueing-delay estimate in seconds.
    pub fn queueing_delay(&self) -> f64 {
        let standing = self.rtt_standing.get();
        let min = self.rtt_min.get();
        if standing.is_finite() && min.is_finite() {
            (standing - min).max(0.0)
        } else {
            0.0
        }
    }
}

impl CongestionControl for Copa {
    fn name(&self) -> &'static str {
        "Copa"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let now = ack.now;
        let rtt = ack.rtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(self.srtt.as_secs_f64() * 0.875 + rtt * 0.125);
        self.rtt_min.update(now, rtt);
        // The "standing" RTT is the minimum over the last srtt/2, per the
        // Copa paper — a longer window would catch too many lucky
        // empty-queue samples and underestimate the queueing delay.
        self.rtt_standing
            .set_window(Duration::from_secs_f64(self.srtt.as_secs_f64() / 2.0));
        self.rtt_standing.update(now, rtt);

        let d_q = self.queueing_delay();
        let target_rate_pps = if d_q > 1e-6 {
            1.0 / (DELTA * d_q)
        } else {
            f64::INFINITY
        };
        let current_rate_pps = self.cwnd / self.srtt.as_secs_f64().max(1e-3);

        let go_up = current_rate_pps <= target_rate_pps;
        if go_up == self.direction_up {
            self.direction_streak += 1;
            if self.direction_streak >= 3 {
                self.velocity = (self.velocity * 2.0).min(64.0);
            }
        } else {
            self.direction_up = go_up;
            self.direction_streak = 0;
            self.velocity = 1.0;
        }

        let step = self.velocity / (DELTA * self.cwnd.max(1.0));
        if go_up {
            self.cwnd += step;
        } else {
            self.cwnd -= step;
        }
        self.cwnd = self.cwnd.clamp(2.0, 10_000.0);
        self.last_update = now;
    }

    fn on_loss(&mut self, _now: Instant) {
        // Copa's default mode reacts to delay, not to individual losses; a
        // loss simply resets the velocity.
        self.velocity = 1.0;
        self.cwnd = (self.cwnd * 0.7).max(2.0);
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        let rtt = self.srtt.as_secs_f64().max(1e-3);
        // Copa paces at 2 × cwnd / RTT spread evenly (factor 1.0 here keeps
        // it the limiting factor together with the window).
        self.cwnd * MSS_BYTES as f64 * 8.0 / rtt
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * MSS_BYTES as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: f64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_secs_f64(rtt_ms / 1e3),
            one_way_delay_ms: rtt_ms / 2.0,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn grows_when_queueing_delay_is_small() {
        let mut copa = Copa::new(Duration::from_millis(40));
        let start = copa.cwnd_segments();
        for i in 0..200u64 {
            copa.on_ack(&ack(i * 10, 40.0));
        }
        assert!(copa.cwnd_segments() > start, "no queue -> window grows");
    }

    #[test]
    fn shrinks_when_queueing_delay_is_large() {
        let mut copa = Copa::new(Duration::from_millis(40));
        // Establish a min RTT of 40 ms, then inflate the RTT to 200 ms.
        for i in 0..50u64 {
            copa.on_ack(&ack(i * 10, 40.0));
        }
        let inflated_start = copa.cwnd_segments();
        for i in 50..300u64 {
            copa.on_ack(&ack(i * 10, 200.0));
        }
        assert!(
            copa.cwnd_segments() < inflated_start,
            "persistent queueing delay shrinks the window ({} -> {})",
            inflated_start,
            copa.cwnd_segments()
        );
        assert!(copa.queueing_delay() > 0.1);
    }

    #[test]
    fn velocity_doubles_with_consistent_direction() {
        let mut copa = Copa::new(Duration::from_millis(40));
        for i in 0..30u64 {
            copa.on_ack(&ack(i * 10, 40.0));
        }
        assert!(
            copa.velocity > 1.0,
            "velocity accelerates: {}",
            copa.velocity
        );
    }

    #[test]
    fn loss_resets_velocity_and_backs_off() {
        let mut copa = Copa::new(Duration::from_millis(40));
        for i in 0..30u64 {
            copa.on_ack(&ack(i * 10, 40.0));
        }
        let before = copa.cwnd_segments();
        copa.on_loss(Instant::from_millis(400));
        assert!(copa.cwnd_segments() < before);
        assert_eq!(copa.velocity, 1.0);
    }

    #[test]
    fn window_stays_within_bounds() {
        let mut copa = Copa::new(Duration::from_millis(40));
        for i in 0..500u64 {
            copa.on_ack(&ack(i * 5, 35.0));
        }
        assert!(copa.cwnd_segments() <= 10_000.0);
        assert!(copa.cwnd_segments() >= 2.0);
        assert!(copa.pacing_rate_bps() > 0.0);
    }
}
