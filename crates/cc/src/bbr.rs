//! TCP BBR (v1), the strongest baseline in the paper's evaluation.
//!
//! BBR models the path with two quantities — the bottleneck bandwidth
//! `BtlBw` (windowed maximum of the delivery rate over ~10 RTTs) and the
//! round-trip propagation delay `RTprop` (windowed minimum RTT over 10 s) —
//! and paces at `pacing_gain × BtlBw` while capping the data in flight at
//! `cwnd_gain × BDP`.  The ProbeBW state cycles through the eight-phase gain
//! pattern `[1.25, 0.75, 1, 1, 1, 1, 1, 1]` (paper Fig. 9); Startup doubles
//! the rate every RTT until the bandwidth estimate stops growing; Drain
//! empties the queue Startup built; ProbeRTT periodically shrinks the window
//! to re-measure the propagation delay.

use crate::api::{initial_rate_bps, AckInfo, CongestionControl, MSS_BYTES};
use crate::windowed::{WindowedMax, WindowedMin};
use pbe_stats::time::{Duration, Instant};

/// The eight pacing gains of the ProbeBW cycle (paper Fig. 9).
pub const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup / Drain pacing gains (2/ln2 and its inverse).
const STARTUP_GAIN: f64 = 2.885;
const DRAIN_GAIN: f64 = 1.0 / 2.885;
/// cwnd gain applied to the BDP.
const CWND_GAIN: f64 = 2.0;
/// ProbeRTT parameters.
const PROBE_RTT_INTERVAL: Duration = Duration(10_000_000);
const PROBE_RTT_DURATION: Duration = Duration(200_000);

/// BBR's operating states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrState {
    /// Exponential bandwidth search at connection start.
    Startup,
    /// Drain the queue Startup built.
    Drain,
    /// Steady-state bandwidth probing (eight-phase gain cycle).
    ProbeBw,
    /// Periodic propagation-delay re-measurement.
    ProbeRtt,
}

/// TCP BBR v1.
#[derive(Debug)]
pub struct Bbr {
    state: BbrState,
    btl_bw: WindowedMax,
    rtprop: WindowedMin,
    pacing_gain: f64,
    probe_bw_phase: usize,
    phase_start: Instant,
    /// Full-pipe detection for leaving Startup.
    full_bw: f64,
    full_bw_count: u32,
    /// ProbeRTT bookkeeping.
    last_probe_rtt: Instant,
    probe_rtt_until: Option<Instant>,
    /// Latest estimates.
    last_rtt: Duration,
    rtprop_hint: Duration,
}

impl Bbr {
    /// New BBR instance.  `rtprop_hint` seeds the propagation-delay estimate
    /// before the first ACK arrives.
    pub fn new(rtprop_hint: Duration) -> Self {
        Bbr {
            state: BbrState::Startup,
            btl_bw: WindowedMax::new(Duration::from_millis(400)),
            rtprop: WindowedMin::new(Duration::from_secs(10)),
            pacing_gain: STARTUP_GAIN,
            probe_bw_phase: 0,
            phase_start: Instant::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            last_probe_rtt: Instant::ZERO,
            probe_rtt_until: None,
            last_rtt: rtprop_hint,
            rtprop_hint,
        }
    }

    /// Current state (exposed for tests and the PBE-CC sender which reuses
    /// this implementation in its Internet-bottleneck mode).
    pub fn state(&self) -> BbrState {
        self.state
    }

    /// Current bottleneck-bandwidth estimate in bits per second.
    pub fn btl_bw_bps(&self) -> f64 {
        let bw = self.btl_bw.get();
        if bw <= 0.0 {
            initial_rate_bps()
        } else {
            bw
        }
    }

    /// Current propagation-delay estimate.
    pub fn rtprop(&self) -> Duration {
        let v = self.rtprop.get();
        if v.is_finite() && v > 0.0 {
            Duration::from_secs_f64(v)
        } else {
            self.rtprop_hint
        }
    }

    fn bdp_bytes(&self) -> f64 {
        self.btl_bw_bps() / 8.0 * self.rtprop().as_secs_f64()
    }

    fn advance_probe_bw(&mut self, now: Instant) {
        let phase_len = self.rtprop();
        if now.saturating_since(self.phase_start) >= phase_len {
            self.probe_bw_phase = (self.probe_bw_phase + 1) % PROBE_BW_GAINS.len();
            self.phase_start = now;
        }
        self.pacing_gain = PROBE_BW_GAINS[self.probe_bw_phase];
    }

    fn check_full_pipe(&mut self) {
        let bw = self.btl_bw.get();
        if bw > self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
        }
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "BBR"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let now = ack.now;
        self.last_rtt = ack.rtt;
        if ack.rtt.as_micros() > 0 {
            self.rtprop.update(now, ack.rtt.as_secs_f64());
        }
        if ack.delivery_rate_bps > 0.0 {
            // The BtlBw window is ~10 RTTs long.
            self.btl_bw.set_window(
                Duration::from_secs_f64(self.rtprop().as_secs_f64() * 10.0)
                    .max(Duration::from_millis(100)),
            );
            self.btl_bw.update(now, ack.delivery_rate_bps);
        }

        match self.state {
            BbrState::Startup => {
                self.check_full_pipe();
                self.pacing_gain = STARTUP_GAIN;
                if self.full_bw_count >= 3 {
                    self.state = BbrState::Drain;
                    self.pacing_gain = DRAIN_GAIN;
                }
            }
            BbrState::Drain => {
                self.pacing_gain = DRAIN_GAIN;
                if (ack.inflight_bytes as f64) <= self.bdp_bytes() {
                    self.state = BbrState::ProbeBw;
                    self.probe_bw_phase = 2; // start in a cruise phase
                    self.phase_start = now;
                    self.pacing_gain = 1.0;
                }
            }
            BbrState::ProbeBw => {
                self.advance_probe_bw(now);
                // Enter ProbeRTT if the propagation-delay estimate is stale.
                if now.saturating_since(self.last_probe_rtt) >= PROBE_RTT_INTERVAL {
                    self.state = BbrState::ProbeRtt;
                    self.probe_rtt_until = Some(now + PROBE_RTT_DURATION);
                    self.pacing_gain = 1.0;
                }
            }
            BbrState::ProbeRtt => {
                self.pacing_gain = 1.0;
                if let Some(until) = self.probe_rtt_until {
                    if now >= until {
                        self.last_probe_rtt = now;
                        self.probe_rtt_until = None;
                        self.state = BbrState::ProbeBw;
                        self.probe_bw_phase = 2;
                        self.phase_start = now;
                    }
                }
            }
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        // BBR v1 does not react to individual losses beyond its inflight cap.
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        (self.pacing_gain * self.btl_bw_bps()).max(8.0 * MSS_BYTES as f64)
    }

    fn cwnd_bytes(&self) -> u64 {
        if self.state == BbrState::ProbeRtt {
            return 4 * MSS_BYTES;
        }
        (CWND_GAIN * self.bdp_bytes()).max(4.0 * MSS_BYTES as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, rate_bps: f64, inflight: u64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_millis(rtt_ms),
            one_way_delay_ms: rtt_ms as f64 / 2.0,
            delivery_rate_bps: rate_bps,
            inflight_bytes: inflight,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn startup_uses_high_gain_and_exits_when_bandwidth_plateaus() {
        let mut bbr = Bbr::new(Duration::from_millis(40));
        assert_eq!(bbr.state(), BbrState::Startup);
        assert!((bbr.pacing_rate_bps() / bbr.btl_bw_bps() - STARTUP_GAIN).abs() < 1e-9);
        // Delivery rate stops growing at 48 Mbit/s: after 3 non-growing ACKs
        // BBR leaves Startup.
        for i in 0..20u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 100_000));
            if bbr.state() != BbrState::Startup {
                break;
            }
        }
        assert_ne!(bbr.state(), BbrState::Startup);
    }

    #[test]
    fn drain_transitions_to_probe_bw_when_inflight_fits_bdp() {
        let mut bbr = Bbr::new(Duration::from_millis(40));
        for i in 0..10u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 1_000_000));
        }
        assert_eq!(bbr.state(), BbrState::Drain);
        // BDP at 48 Mbit/s × 40 ms = 240 kB; report a small inflight.
        bbr.on_ack(&ack(500, 40, 48e6, 100_000));
        assert_eq!(bbr.state(), BbrState::ProbeBw);
    }

    #[test]
    fn probe_bw_cycles_through_gains() {
        let mut bbr = Bbr::new(Duration::from_millis(40));
        for i in 0..10u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 100_000));
        }
        assert_eq!(bbr.state(), BbrState::ProbeBw);
        let mut seen_gains = std::collections::HashSet::new();
        for i in 10..200u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 200_000));
            seen_gains.insert((bbr.pacing_gain * 100.0) as i64);
        }
        assert!(
            seen_gains.contains(&125),
            "probing gain seen: {seen_gains:?}"
        );
        assert!(seen_gains.contains(&75), "draining gain seen");
        assert!(seen_gains.contains(&100), "cruise gain seen");
    }

    #[test]
    fn btl_bw_tracks_delivery_rate_and_rtprop_tracks_min_rtt() {
        let mut bbr = Bbr::new(Duration::from_millis(100));
        for i in 0..50u64 {
            let rtt = if i == 25 { 30 } else { 50 };
            bbr.on_ack(&ack(i * 50, rtt, 20e6 + i as f64 * 1e5, 50_000));
        }
        assert!(bbr.btl_bw_bps() > 20e6);
        assert_eq!(bbr.rtprop(), Duration::from_millis(30));
    }

    #[test]
    fn cwnd_is_twice_bdp() {
        let mut bbr = Bbr::new(Duration::from_millis(40));
        for i in 0..10u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 100_000));
        }
        let bdp = 48e6 / 8.0 * 0.040;
        let cwnd = bbr.cwnd_bytes() as f64;
        assert!(
            (cwnd - 2.0 * bdp).abs() / (2.0 * bdp) < 0.1,
            "cwnd {cwnd} bdp {bdp}"
        );
    }

    #[test]
    fn probe_rtt_entered_after_ten_seconds_and_shrinks_cwnd() {
        let mut bbr = Bbr::new(Duration::from_millis(40));
        let mut entered_probe_rtt_at = None;
        let mut cwnd_during_probe_rtt = None;
        for i in 0..400u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 100_000));
            if bbr.state() == BbrState::ProbeRtt && entered_probe_rtt_at.is_none() {
                entered_probe_rtt_at = Some(i * 40);
                cwnd_during_probe_rtt = Some(bbr.cwnd_bytes());
            }
        }
        let entered = entered_probe_rtt_at.expect("ProbeRTT entered");
        assert!(
            entered >= 10_000,
            "not before the 10 s interval, got {entered} ms"
        );
        assert!(
            entered <= 11_000,
            "soon after the 10 s interval, got {entered} ms"
        );
        assert_eq!(cwnd_during_probe_rtt, Some(4 * MSS_BYTES));
        // By the end of the run (16 s) BBR is back in ProbeBW cruising.
        assert_eq!(bbr.state(), BbrState::ProbeBw);
    }

    #[test]
    fn loss_does_not_change_rate() {
        let mut bbr = Bbr::new(Duration::from_millis(40));
        for i in 0..10u64 {
            bbr.on_ack(&ack(i * 40, 40, 48e6, 100_000));
        }
        let before = bbr.pacing_rate_bps();
        bbr.on_loss(Instant::from_secs(1));
        assert_eq!(bbr.pacing_rate_bps(), before);
    }
}
