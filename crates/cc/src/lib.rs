//! End-to-end congestion-control algorithms behind a common trait.
//!
//! The paper evaluates PBE-CC against seven end-to-end algorithms: BBR and
//! CUBIC (deployed in the Linux kernel), Sprout and Verus (designed for
//! cellular links), and Copa, PCC and PCC-Vivace (recent research proposals).
//! This crate re-implements each of them, from the published algorithm
//! descriptions, behind the [`api::CongestionControl`] trait so that the
//! end-to-end simulator (and PBE-CC itself, which implements the same trait
//! in `pbe-core`) can drive any of them interchangeably.
//!
//! The implementations capture the control laws that determine each
//! algorithm's characteristic behaviour on a cellular bottleneck — BBR's
//! bandwidth/RTT probing state machine, CUBIC's cubic window growth and
//! multiplicative back-off, Copa's delay-target rate, Verus's delay-profile
//! window updates, Sprout's conservative rate forecasts, PCC's and Vivace's
//! online utility-gradient search — at the level of detail the paper's
//! evaluation exercises.

#![warn(missing_docs)]

pub mod api;
pub mod bbr;
pub mod chaos;
pub mod copa;
pub mod cubic;
pub mod cubic_ecn;
pub mod pcc;
pub mod registry;
pub mod reno;
pub mod sfc;
pub mod sprout;
pub mod verus;
pub mod vivace;
pub mod windowed;

pub use api::{AckInfo, CongestionControl, CongestionSignal, PbeFeedback, SchemeName, MSS_BYTES};
pub use bbr::Bbr;
pub use chaos::{ChaosHang, ChaosPanic};
pub use copa::Copa;
pub use cubic::Cubic;
pub use cubic_ecn::CubicEcn;
pub use pcc::Pcc;
pub use registry::{SchemeCtx, SchemeFactory, SchemeId, SchemeRegistry};
pub use reno::Reno;
pub use sfc::Sfc;
pub use sprout::Sprout;
pub use verus::Verus;
pub use vivace::Vivace;

use pbe_stats::time::Duration;

/// Construct a baseline algorithm by name — a thin shim over the
/// [`registry::SchemeRegistry`] kept for callers that sweep the closed
/// [`SchemeName`] list.  PBE-CC itself registers through the same registry
/// from `pbe-core` because it needs receiver-side feedback the baselines do
/// not use.
pub fn baseline_by_name(name: SchemeName, rtprop_hint: Duration) -> Box<dyn CongestionControl> {
    SchemeRegistry::with_baselines()
        .build(&SchemeId::from(name), &SchemeCtx::new(rtprop_hint))
        .unwrap_or_else(|| panic!("{name} is not a baseline; PBE-CC is registered from pbe-core"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_baseline() {
        for name in SchemeName::BASELINES {
            let cc = baseline_by_name(*name, Duration::from_millis(40));
            assert_eq!(cc.name(), name.as_str());
            assert!(cc.pacing_rate_bps() > 0.0);
            assert!(cc.cwnd_bytes() >= MSS_BYTES);
        }
    }

    #[test]
    #[should_panic(expected = "pbe-core")]
    fn factory_rejects_pbe() {
        baseline_by_name(SchemeName::PbeCc, Duration::from_millis(40));
    }
}
