//! PCC Allegro (Dong et al., NSDI 2015) — performance-oriented congestion
//! control by online rate experiments.
//!
//! PCC does not model the network.  It runs short monitor intervals at
//! candidate rates, computes a utility from the observed throughput and loss,
//! and moves its rate in the direction that empirically increased utility:
//! doubling while every experiment helps (starting phase), then A/B-testing
//! `rate × (1 ± ε)` and stepping towards the winner (decision phase).
//! On a time-varying cellular link the utility experiments frequently
//! disagree, which keeps PCC's rate conservative — matching the low
//! throughput the paper observes.

use crate::api::{initial_rate_bps, AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};

/// Allegro's probing step ε.
const EPSILON: f64 = 0.05;
/// Loss penalty coefficient of the Allegro utility.
const LOSS_COEFF: f64 = 11.35;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Double the rate each interval while utility keeps improving.
    Starting,
    /// Test rate*(1+ε) then rate*(1−ε), move towards the better one.
    Decision,
}

#[derive(Debug, Clone, Copy)]
struct IntervalResult {
    rate: f64,
    utility: f64,
}

/// PCC Allegro.
#[derive(Debug)]
pub struct Pcc {
    rate_bps: f64,
    phase: Phase,
    srtt: Duration,
    interval_start: Instant,
    interval_bytes: u64,
    interval_losses: u64,
    interval_acks: u64,
    /// The rate being tested this interval and the direction of the test.
    testing_high: bool,
    pending: Option<IntervalResult>,
    last_utility: f64,
}

impl Pcc {
    /// New PCC Allegro instance.
    pub fn new(rtprop_hint: Duration) -> Self {
        Pcc {
            rate_bps: initial_rate_bps(),
            phase: Phase::Starting,
            srtt: rtprop_hint,
            interval_start: Instant::ZERO,
            interval_bytes: 0,
            interval_losses: 0,
            interval_acks: 0,
            testing_high: true,
            pending: None,
            last_utility: 0.0,
        }
    }

    /// Base sending rate (between experiments).
    pub fn base_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn utility(rate_bps: f64, loss_rate: f64) -> f64 {
        // Allegro's sigmoid-free approximation: throughput minus a steep loss
        // penalty (both in Mbit/s terms).
        let tput = rate_bps * (1.0 - loss_rate) / 1e6;
        tput - LOSS_COEFF * (rate_bps / 1e6) * loss_rate
    }

    fn finish_interval(&mut self, now: Instant) {
        let elapsed = now.saturating_since(self.interval_start).as_secs_f64();
        if elapsed <= 0.0 || self.interval_acks == 0 {
            self.interval_start = now;
            return;
        }
        let achieved = self.interval_bytes as f64 * 8.0 / elapsed;
        let loss_rate =
            self.interval_losses as f64 / (self.interval_acks + self.interval_losses) as f64;
        let utility = Self::utility(achieved, loss_rate);
        match self.phase {
            Phase::Starting => {
                if utility > self.last_utility {
                    self.last_utility = utility;
                    self.rate_bps *= 2.0;
                } else {
                    self.rate_bps /= 2.0;
                    self.phase = Phase::Decision;
                    self.last_utility = utility;
                }
            }
            Phase::Decision => {
                let result = IntervalResult {
                    rate: self.current_test_rate(),
                    utility,
                };
                if let Some(prev) = self.pending.take() {
                    // Two experiments done: move towards the better one.
                    let winner = if prev.utility >= result.utility {
                        prev
                    } else {
                        result
                    };
                    let step = self.rate_bps * EPSILON;
                    if winner.rate > self.rate_bps {
                        self.rate_bps += step;
                    } else if winner.rate < self.rate_bps {
                        self.rate_bps = (self.rate_bps - step).max(8.0 * MSS_BYTES as f64);
                    }
                    self.testing_high = true;
                } else {
                    self.pending = Some(result);
                    self.testing_high = false;
                }
                self.last_utility = utility;
            }
        }
        self.rate_bps = self.rate_bps.clamp(8.0 * MSS_BYTES as f64, 10e9);
        self.interval_start = now;
        self.interval_bytes = 0;
        self.interval_losses = 0;
        self.interval_acks = 0;
    }

    fn current_test_rate(&self) -> f64 {
        match self.phase {
            Phase::Starting => self.rate_bps,
            Phase::Decision => {
                if self.testing_high {
                    self.rate_bps * (1.0 + EPSILON)
                } else {
                    self.rate_bps * (1.0 - EPSILON)
                }
            }
        }
    }
}

impl CongestionControl for Pcc {
    fn name(&self) -> &'static str {
        "PCC"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let rtt = ack.rtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(self.srtt.as_secs_f64() * 0.875 + rtt * 0.125);
        self.interval_bytes += ack.bytes_acked;
        self.interval_acks += 1;
        if ack.loss_detected {
            self.interval_losses += 1;
        }
        // A monitor interval is ~1 RTT.
        let interval = Duration::from_secs_f64(self.srtt.as_secs_f64().max(0.01));
        if ack.now.saturating_since(self.interval_start) >= interval {
            self.finish_interval(ack.now);
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        self.interval_losses += 1;
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        self.current_test_rate()
    }

    fn cwnd_bytes(&self) -> u64 {
        // Rate-based: allow up to two BDP-equivalents in flight.
        (self.current_test_rate() / 8.0 * self.srtt.as_secs_f64() * 2.0).max(2.0 * MSS_BYTES as f64)
            as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, bytes: u64, lost: bool) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: bytes,
            rtt: Duration::from_millis(40),
            one_way_delay_ms: 20.0,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: lost,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn starting_phase_doubles_while_utility_grows() {
        let mut pcc = Pcc::new(Duration::from_millis(40));
        let r0 = pcc.base_rate_bps();
        // Deliver generously so each interval's achieved rate keeps growing.
        for i in 1..=400u64 {
            pcc.on_ack(&ack(i * 5, 6_000 * i / 40, false));
        }
        assert!(
            pcc.base_rate_bps() > r0,
            "rate grew from {r0} to {}",
            pcc.base_rate_bps()
        );
    }

    #[test]
    fn losses_reduce_utility_and_cap_the_rate() {
        let mut clean = Pcc::new(Duration::from_millis(40));
        let mut lossy = Pcc::new(Duration::from_millis(40));
        for i in 1..=800u64 {
            clean.on_ack(&ack(i * 5, 3_000, false));
            lossy.on_ack(&ack(i * 5, 3_000, i % 3 == 0));
        }
        assert!(lossy.base_rate_bps() <= clean.base_rate_bps());
    }

    #[test]
    fn utility_function_penalises_loss() {
        let no_loss = Pcc::utility(10e6, 0.0);
        let with_loss = Pcc::utility(10e6, 0.1);
        assert!(no_loss > with_loss);
        assert!(with_loss < 0.0, "10 % loss makes the utility negative");
    }

    #[test]
    fn decision_phase_alternates_test_rates() {
        let mut pcc = Pcc::new(Duration::from_millis(40));
        pcc.phase = Phase::Decision;
        let base = pcc.base_rate_bps();
        pcc.testing_high = true;
        assert!(pcc.pacing_rate_bps() > base);
        pcc.testing_high = false;
        assert!(pcc.pacing_rate_bps() < base);
    }

    #[test]
    fn rate_never_collapses_to_zero() {
        let mut pcc = Pcc::new(Duration::from_millis(40));
        for i in 1..=2000u64 {
            pcc.on_ack(&ack(i * 5, 100, i % 2 == 0));
        }
        assert!(pcc.base_rate_bps() >= 8.0 * MSS_BYTES as f64);
        assert!(pcc.cwnd_bytes() >= 2 * MSS_BYTES);
    }
}
