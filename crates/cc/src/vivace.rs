//! PCC Vivace (Dong et al., NSDI 2018) — online-learning congestion control
//! with a latency-aware utility and gradient-based rate updates.
//!
//! Vivace replaces Allegro's throughput/loss utility with
//! `u(x) = x^t − b·x·(d(RTT)/dt) − c·x·loss` and performs gradient ascent on
//! the measured utility, with a confidence-amplified step size.  The latency
//! -gradient term makes Vivace throttle quickly when delay rises — on a
//! cellular link whose delay jitters with HARQ retransmissions this produces
//! the conservative rates the paper observes.

use crate::api::{initial_rate_bps, AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};

/// Exponent of the throughput term.
const THROUGHPUT_EXPONENT: f64 = 0.9;
/// Latency-gradient penalty coefficient.
const LATENCY_COEFF: f64 = 900.0;
/// Loss penalty coefficient.
const LOSS_COEFF: f64 = 11.35;
/// Base gradient step (Mbit/s per unit utility gradient).
const STEP_MBPS: f64 = 0.05;

/// PCC Vivace.
#[derive(Debug)]
pub struct Vivace {
    rate_bps: f64,
    srtt: Duration,
    interval_start: Instant,
    interval_bytes: u64,
    interval_losses: u64,
    interval_acks: u64,
    delay_first_ms: Option<f64>,
    delay_last_ms: f64,
    prev: Option<(f64, f64)>, // (rate, utility)
    /// Consecutive moves in the same direction (confidence amplification).
    streak: u32,
}

impl Vivace {
    /// New Vivace instance.
    pub fn new(rtprop_hint: Duration) -> Self {
        Vivace {
            rate_bps: initial_rate_bps(),
            srtt: rtprop_hint,
            interval_start: Instant::ZERO,
            interval_bytes: 0,
            interval_losses: 0,
            interval_acks: 0,
            delay_first_ms: None,
            delay_last_ms: 0.0,
            prev: None,
            streak: 0,
        }
    }

    /// Current base rate.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn utility(rate_bps: f64, latency_gradient: f64, loss_rate: f64) -> f64 {
        let x = rate_bps / 1e6;
        x.powf(THROUGHPUT_EXPONENT)
            - LATENCY_COEFF * x * latency_gradient.max(0.0)
            - LOSS_COEFF * x * loss_rate
    }

    fn finish_interval(&mut self, now: Instant) {
        let elapsed = now.saturating_since(self.interval_start).as_secs_f64();
        if elapsed <= 0.0 || self.interval_acks == 0 {
            self.interval_start = now;
            return;
        }
        let achieved = self.interval_bytes as f64 * 8.0 / elapsed;
        let loss_rate =
            self.interval_losses as f64 / (self.interval_acks + self.interval_losses) as f64;
        let latency_gradient = match self.delay_first_ms {
            Some(first) => (self.delay_last_ms - first) / 1e3 / elapsed, // s/s
            None => 0.0,
        };
        let utility = Self::utility(achieved, latency_gradient, loss_rate);
        if let Some((prev_rate, prev_utility)) = self.prev {
            let d_rate = (self.rate_bps - prev_rate) / 1e6;
            if d_rate.abs() > 1e-9 {
                let gradient = (utility - prev_utility) / d_rate;
                let amplified = STEP_MBPS * (1.0 + self.streak as f64 * 0.5).min(10.0);
                let delta = (gradient * amplified).clamp(-5.0, 5.0) * 1e6;
                if delta.signum() == d_rate.signum() * (utility - prev_utility).signum() {
                    self.streak += 1;
                } else {
                    self.streak = 0;
                }
                self.rate_bps += delta;
            } else {
                // Probe upwards slightly to generate a gradient sample.
                self.rate_bps *= 1.02;
            }
        } else {
            self.rate_bps *= 1.1;
        }
        self.rate_bps = self.rate_bps.clamp(8.0 * MSS_BYTES as f64, 10e9);
        self.prev = Some((self.rate_bps, utility));
        self.interval_start = now;
        self.interval_bytes = 0;
        self.interval_losses = 0;
        self.interval_acks = 0;
        self.delay_first_ms = None;
    }
}

impl CongestionControl for Vivace {
    fn name(&self) -> &'static str {
        "Vivace"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let rtt = ack.rtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(self.srtt.as_secs_f64() * 0.875 + rtt * 0.125);
        self.interval_bytes += ack.bytes_acked;
        self.interval_acks += 1;
        if ack.loss_detected {
            self.interval_losses += 1;
        }
        if self.delay_first_ms.is_none() {
            self.delay_first_ms = Some(ack.one_way_delay_ms);
        }
        self.delay_last_ms = ack.one_way_delay_ms;
        let interval = Duration::from_secs_f64(self.srtt.as_secs_f64().max(0.01));
        if ack.now.saturating_since(self.interval_start) >= interval {
            self.finish_interval(ack.now);
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        self.interval_losses += 1;
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.rate_bps / 8.0 * self.srtt.as_secs_f64() * 2.0).max(2.0 * MSS_BYTES as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, bytes: u64, delay_ms: f64, lost: bool) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: bytes,
            rtt: Duration::from_millis(40),
            one_way_delay_ms: delay_ms,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: lost,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn rate_grows_when_delay_is_flat_and_no_loss() {
        let mut vivace = Vivace::new(Duration::from_millis(40));
        let r0 = vivace.rate_bps();
        for i in 1..=600u64 {
            vivace.on_ack(&ack(i * 5, 4_000, 25.0, false));
        }
        assert!(vivace.rate_bps() > r0, "{} > {r0}", vivace.rate_bps());
    }

    #[test]
    fn rising_delay_caps_growth() {
        let mut flat = Vivace::new(Duration::from_millis(40));
        let mut rising = Vivace::new(Duration::from_millis(40));
        for i in 1..=600u64 {
            flat.on_ack(&ack(i * 5, 4_000, 25.0, false));
            // Delay keeps climbing within every interval for the other flow.
            rising.on_ack(&ack(i * 5, 4_000, 25.0 + (i % 8) as f64 * 20.0, false));
        }
        assert!(rising.rate_bps() <= flat.rate_bps() * 1.05);
    }

    #[test]
    fn utility_penalises_latency_gradient_and_loss() {
        let base = Vivace::utility(20e6, 0.0, 0.0);
        assert!(Vivace::utility(20e6, 0.5, 0.0) < base);
        assert!(Vivace::utility(20e6, 0.0, 0.2) < base);
    }

    #[test]
    fn rate_stays_bounded() {
        let mut vivace = Vivace::new(Duration::from_millis(40));
        for i in 1..=3000u64 {
            vivace.on_ack(&ack(i * 2, 50_000, 25.0, false));
        }
        assert!(vivace.rate_bps() <= 10e9);
        assert!(vivace.rate_bps() >= 8.0 * MSS_BYTES as f64);
        assert!(vivace.cwnd_bytes() >= 2 * MSS_BYTES);
    }
}
