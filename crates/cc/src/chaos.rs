//! Deliberately misbehaving schemes for failure-injection tests.
//!
//! The failure-contained execution harness (worker-pool panic containment,
//! per-scenario deadlines, quarantine) needs scenarios that *reliably* fail
//! in each contained way.  These two schemes provide that, through the same
//! registry every real scheme uses, so a chaos scenario is an ordinary
//! [`ScenarioSpec`](../../pbe_bench/sweep) with `scheme = "CHAOS_PANIC"` —
//! no test-only hooks in the simulator.
//!
//! Neither scheme is part of the paper's evaluation; they are registered in
//! the default registry (not the baseline set) so sweeps only run them when
//! a grid asks by name.

use crate::api::{AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::Instant;

/// Fixed window for both chaos schemes: 20 packets, enough to keep ACKs
/// flowing at the conservative initial rate.
const CHAOS_CWND_BYTES: u64 = 20 * MSS_BYTES;

/// A scheme that panics after a fixed number of acknowledgements.
///
/// The flow starts normally (packets go out at a conservative rate, ACKs
/// come back), then the `trigger`-th ACK panics — mid-simulation, on
/// whatever thread is executing the scenario, exactly like a genuine
/// scheme bug would.
#[derive(Debug)]
pub struct ChaosPanic {
    acks: u64,
    trigger: u64,
}

impl ChaosPanic {
    /// Panic on the `trigger`-th acknowledgement (1 panics on the first).
    pub fn after_acks(trigger: u64) -> Self {
        ChaosPanic { acks: 0, trigger }
    }
}

impl Default for ChaosPanic {
    /// Panic on the 5th acknowledgement — late enough that the flow is
    /// demonstrably running, early enough to keep chaos tests fast.
    fn default() -> Self {
        ChaosPanic::after_acks(5)
    }
}

impl CongestionControl for ChaosPanic {
    fn name(&self) -> &'static str {
        "CHAOS_PANIC"
    }

    fn on_ack(&mut self, _ack: &AckInfo) {
        self.acks += 1;
        if self.acks >= self.trigger {
            panic!("chaos: injected scheme panic on ack {}", self.acks);
        }
    }

    fn on_loss(&mut self, _now: Instant) {}

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight_bytes: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        crate::api::initial_rate_bps()
    }

    fn cwnd_bytes(&self) -> u64 {
        CHAOS_CWND_BYTES
    }
}

/// A scheme that burns wall-clock time: every acknowledgement sleeps.
///
/// Used to trip the executor's per-scenario deadline.  The sleep happens in
/// small increments with a total budget, so an abandoned watchdog thread
/// finishes on its own instead of hanging for the life of the process.
#[derive(Debug)]
pub struct ChaosHang {
    per_ack_ms: u64,
    budget_ms: u64,
    slept_ms: u64,
}

impl ChaosHang {
    /// Sleep `per_ack_ms` per acknowledgement, up to `budget_ms` total.
    pub fn new(per_ack_ms: u64, budget_ms: u64) -> Self {
        ChaosHang {
            per_ack_ms,
            budget_ms,
            slept_ms: 0,
        }
    }
}

impl Default for ChaosHang {
    /// 20 ms per ACK, 2 s total — far past any test deadline, bounded
    /// cleanup for the abandoned thread.
    fn default() -> Self {
        ChaosHang::new(20, 2_000)
    }
}

impl CongestionControl for ChaosHang {
    fn name(&self) -> &'static str {
        "CHAOS_HANG"
    }

    fn on_ack(&mut self, _ack: &AckInfo) {
        if self.slept_ms < self.budget_ms {
            std::thread::sleep(std::time::Duration::from_millis(self.per_ack_ms));
            self.slept_ms += self.per_ack_ms;
        }
    }

    fn on_loss(&mut self, _now: Instant) {}

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight_bytes: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        crate::api::initial_rate_bps()
    }

    fn cwnd_bytes(&self) -> u64 {
        CHAOS_CWND_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_stats::time::Duration;

    fn ack(n: u64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(n),
            packet_id: n,
            bytes_acked: 1500,
            rtt: Duration::from_millis(20),
            one_way_delay_ms: 10.0,
            delivery_rate_bps: 1e6,
            inflight_bytes: 15_000,
            ecn_ce: false,
            loss_detected: false,
            pbe: None,
        }
    }

    #[test]
    fn chaos_panic_survives_until_its_trigger() {
        let mut cc = ChaosPanic::after_acks(3);
        cc.on_ack(&ack(1));
        cc.on_ack(&ack(2));
        assert!(cc.pacing_rate_bps() > 0.0);
        assert!(cc.cwnd_bytes() > 0);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cc.on_ack(&ack(3))));
        let payload = boom.expect_err("the third ack panics");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("chaos: injected scheme panic"));
    }

    #[test]
    fn chaos_hang_sleeps_only_up_to_its_budget() {
        let mut cc = ChaosHang::new(1, 2);
        let started = std::time::Instant::now();
        for n in 0..50 {
            cc.on_ack(&ack(n));
        }
        // 2 ms budget: 50 ACKs must not sleep 50 ms.
        assert!(started.elapsed() < std::time::Duration::from_millis(40));
        assert!(cc.pacing_rate_bps() > 0.0);
    }
}
