//! TCP Reno / NewReno-style AIMD, used as an extra sanity baseline.

use crate::api::{AckInfo, CongestionControl, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};

/// Classic additive-increase / multiplicative-decrease congestion control.
#[derive(Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    srtt: Duration,
    last_loss: Option<Instant>,
}

impl Reno {
    /// New Reno instance with a 10-segment initial window.
    pub fn new(rtprop_hint: Duration) -> Self {
        Reno {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            srtt: rtprop_hint,
            last_loss: None,
        }
    }

    /// Congestion window in segments.
    pub fn cwnd_segments(&self) -> f64 {
        self.cwnd
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "Reno"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let sample = ack.rtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(self.srtt.as_secs_f64() * 0.875 + sample * 0.125);
        if ack.loss_detected {
            self.on_loss(ack.now);
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd.max(1.0);
        }
    }

    fn on_loss(&mut self, now: Instant) {
        if let Some(last) = self.last_loss {
            if now.saturating_since(last) < self.srtt {
                return;
            }
        }
        self.last_loss = Some(now);
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        let rtt = self.srtt.as_secs_f64().max(1e-3);
        self.cwnd * MSS_BYTES as f64 * 8.0 / rtt * 1.2
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * MSS_BYTES as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_millis(40),
            one_way_delay_ms: 20.0,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    #[test]
    fn slow_start_then_congestion_avoidance() {
        let mut reno = Reno::new(Duration::from_millis(40));
        for i in 0..20u64 {
            reno.on_ack(&ack(i));
        }
        assert!((reno.cwnd_segments() - 30.0).abs() < 1e-9);
        reno.on_loss(Instant::from_millis(30));
        assert!((reno.cwnd_segments() - 15.0).abs() < 1e-9);
        let before = reno.cwnd_segments();
        // 15 ACKs in congestion avoidance grow the window by ~1 segment.
        for i in 100..115u64 {
            reno.on_ack(&ack(i));
        }
        assert!((reno.cwnd_segments() - before - 1.0).abs() < 0.1);
    }

    #[test]
    fn window_never_collapses_below_two_segments() {
        let mut reno = Reno::new(Duration::from_millis(40));
        for i in 0..20u64 {
            reno.on_loss(Instant::from_millis(i * 1000));
        }
        assert!(reno.cwnd_segments() >= 2.0);
        assert!(reno.pacing_rate_bps() > 0.0);
    }
}
