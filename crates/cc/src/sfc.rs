//! SFC-style near-source congestion signaling (after arxiv 2305.00538).
//!
//! The scheme pairs a plain rate-based sender with the backhaul's
//! out-of-band congestion signals: when the first congested link on the path
//! marks a packet, the network reports the link's state straight back
//! towards the server, and the signal reaches the sender after only the
//! *upstream* propagation delay — typically a small fraction of the RTT.
//! The sender reacts immediately: it caps its rate at the signaled link's
//! line rate and backs off multiplicatively.  Because the signal loop is
//! faster than the ACK loop, its back-offs re-arm every quarter RTT instead
//! of once per RTT — the tighter inner loop is exactly what the near-source
//! latency buys, and it is what lets many flows sharing one marked link
//! shed load faster than their summed additive probing rebuilds it.
//! Between signals the sender probes additively (one segment per RTT,
//! Reno-style in rate space).
//!
//! The result is the backhaul experiment's control knob: because the
//! reaction latency is the upstream delay rather than the round trip, the
//! queue at the congested link hovers near its marking threshold instead of
//! filling a full bandwidth-delay product the way an ACK-clocked scheme
//! does.

use crate::api::{initial_rate_bps, AckInfo, CongestionControl, CongestionSignal, MSS_BYTES};
use pbe_stats::time::{Duration, Instant};

/// Multiplicative back-off applied on each signal (once per RTT).
const SIGNAL_BETA: f64 = 0.85;
/// Multiplicative back-off applied on loss.
const LOSS_BETA: f64 = 0.7;
/// Floor on the sending rate, bits per second.
const MIN_RATE_BPS: f64 = 100e3;

/// The SFC-style near-source signaling scheme.
#[derive(Debug)]
pub struct Sfc {
    rate_bps: f64,
    srtt: Duration,
    /// Last multiplicative reduction (signal or loss), for the per-RTT guard.
    last_backoff: Option<Instant>,
    signals_seen: u64,
}

impl Sfc {
    /// New instance starting at the conservative shared initial rate.
    pub fn new(rtprop_hint: Duration) -> Self {
        Sfc {
            rate_bps: initial_rate_bps(),
            srtt: rtprop_hint,
            last_backoff: None,
            signals_seen: 0,
        }
    }

    /// Signals the sender has reacted to (for tests).
    pub fn signals_seen(&self) -> u64 {
        self.signals_seen
    }

    fn backoff_allowed(&self, now: Instant) -> bool {
        match self.last_backoff {
            Some(last) => now.saturating_since(last) >= self.srtt,
            None => true,
        }
    }

    /// The out-of-band signal loop re-arms every quarter RTT (floored at
    /// 2 ms): reacting at the cadence of the fast path is what makes the
    /// shared queue drain under fan-in, where per-RTT back-offs lose to the
    /// summed additive probing of many flows.
    fn signal_backoff_allowed(&self, now: Instant) -> bool {
        let guard = Duration::from_secs_f64((self.srtt.as_secs_f64() / 4.0).max(0.002));
        match self.last_backoff {
            Some(last) => now.saturating_since(last) >= guard,
            None => true,
        }
    }
}

impl CongestionControl for Sfc {
    fn name(&self) -> &'static str {
        "SFC"
    }

    fn on_ack(&mut self, ack: &AckInfo) {
        let sample = ack.rtt.as_secs_f64();
        let prev = self.srtt.as_secs_f64();
        self.srtt = Duration::from_secs_f64(prev * 0.875 + sample * 0.125);
        if ack.loss_detected {
            self.on_loss(ack.now);
            return;
        }
        // The ACK echo is the fallback for marks whose out-of-band signal
        // the sender somehow never saw; the per-RTT guard makes the two
        // delivery paths idempotent within a flight.
        if ack.ecn_ce && self.backoff_allowed(ack.now) {
            self.last_backoff = Some(ack.now);
            self.rate_bps = (self.rate_bps * SIGNAL_BETA).max(MIN_RATE_BPS);
            return;
        }
        // Additive probing: one segment per RTT in rate space, spread over
        // the ~rate·RTT/MSS acks of a flight.  Held back for one RTT after
        // any back-off so a congestion episode is not refilled while the
        // marked queue is still draining.
        if !self.backoff_allowed(ack.now) {
            return;
        }
        let srtt_s = self.srtt.as_secs_f64().max(1e-3);
        let seg_bits = (MSS_BYTES * 8) as f64;
        self.rate_bps += seg_bits * seg_bits / (self.rate_bps.max(MIN_RATE_BPS) * srtt_s * srtt_s);
    }

    fn on_loss(&mut self, now: Instant) {
        if !self.backoff_allowed(now) {
            return;
        }
        self.last_backoff = Some(now);
        self.rate_bps = (self.rate_bps * LOSS_BETA).max(MIN_RATE_BPS);
    }

    fn on_packet_sent(&mut self, _now: Instant, _bytes: u64, _inflight: u64) {}

    fn pacing_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn cwnd_bytes(&self) -> u64 {
        // Two bandwidth-delay products of headroom so pacing, not the
        // window, is the binding control.
        let bdp = self.rate_bps / 8.0 * self.srtt.as_secs_f64();
        (2.0 * bdp).max(4.0 * MSS_BYTES as f64) as u64
    }

    fn on_signal(&mut self, now: Instant, signal: &CongestionSignal) {
        self.signals_seen += 1;
        // Backpressure from the first marked link: never send faster than
        // the congested link's line rate, and shed a further fraction so its
        // queue drains below the marking threshold.
        self.rate_bps = self.rate_bps.min(signal.link_rate_bps);
        if self.signal_backoff_allowed(now) {
            self.last_backoff = Some(now);
            self.rate_bps = (self.rate_bps * SIGNAL_BETA).max(MIN_RATE_BPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64) -> AckInfo {
        AckInfo {
            now: Instant::from_millis(now_ms),
            packet_id: now_ms,
            bytes_acked: MSS_BYTES,
            rtt: Duration::from_millis(40),
            one_way_delay_ms: 20.0,
            delivery_rate_bps: 10e6,
            inflight_bytes: 30_000,
            loss_detected: false,
            ecn_ce: false,
            pbe: None,
        }
    }

    fn signal(now_ms: u64, link_rate_bps: f64, queue_bytes: u64) -> CongestionSignal {
        CongestionSignal {
            at: Instant::from_millis(now_ms),
            link_rate_bps,
            queue_bytes,
            queue_delay: Duration::from_secs_f64(queue_bytes as f64 * 8.0 / link_rate_bps),
        }
    }

    #[test]
    fn acks_probe_additively() {
        let mut cc = Sfc::new(Duration::from_millis(40));
        let before = cc.pacing_rate_bps();
        for i in 0..500u64 {
            cc.on_ack(&ack(i));
        }
        assert!(
            cc.pacing_rate_bps() > before,
            "rate must grow between signals"
        );
    }

    #[test]
    fn signal_caps_rate_at_the_marked_links_line_rate() {
        let mut cc = Sfc::new(Duration::from_millis(40));
        for i in 0..5_000u64 {
            cc.on_ack(&ack(i));
        }
        assert!(cc.pacing_rate_bps() > 10e6, "probing grew past 10 Mbit/s");
        cc.on_signal(Instant::from_millis(6_000), &signal(6_000, 8e6, 40_000));
        assert!(
            cc.pacing_rate_bps() <= 8e6,
            "rate {} must not exceed the signaled link rate",
            cc.pacing_rate_bps()
        );
        assert_eq!(cc.signals_seen(), 1);
    }

    #[test]
    fn signal_backoffs_rearm_every_quarter_rtt() {
        // srtt converges to 40 ms, so the signal guard is 10 ms.
        let mut cc = Sfc::new(Duration::from_millis(40));
        for i in 0..1_000u64 {
            cc.on_ack(&ack(i));
        }
        cc.on_signal(Instant::from_millis(2_000), &signal(2_000, 50e6, 10_000));
        let after_first = cc.pacing_rate_bps();
        cc.on_signal(Instant::from_millis(2_005), &signal(2_005, 50e6, 10_000));
        assert_eq!(
            cc.pacing_rate_bps(),
            after_first,
            "a second signal inside the quarter-RTT guard must not stack"
        );
        // After a quarter RTT the signal loop re-arms (well before the
        // full-RTT loss guard would).
        cc.on_signal(Instant::from_millis(2_012), &signal(2_012, 50e6, 10_000));
        assert!(cc.pacing_rate_bps() < after_first);
    }

    #[test]
    fn loss_backs_off_harder_than_a_signal() {
        let mut a = Sfc::new(Duration::from_millis(40));
        let mut b = Sfc::new(Duration::from_millis(40));
        for i in 0..1_000u64 {
            a.on_ack(&ack(i));
            b.on_ack(&ack(i));
        }
        a.on_signal(Instant::from_millis(2_000), &signal(2_000, 1e9, 1_000));
        b.on_loss(Instant::from_millis(2_000));
        assert!(b.pacing_rate_bps() < a.pacing_rate_bps());
    }

    #[test]
    fn rate_never_falls_below_the_floor() {
        let mut cc = Sfc::new(Duration::from_millis(40));
        for i in 0..200u64 {
            cc.on_loss(Instant::from_millis(i * 100));
        }
        assert!(cc.pacing_rate_bps() >= MIN_RATE_BPS);
        assert!(cc.cwnd_bytes() >= 4 * MSS_BYTES);
    }
}
