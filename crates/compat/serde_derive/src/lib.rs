//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the sandbox has no
//! `syn`/`quote`), supporting the shapes this workspace uses:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default`-filled on deserialize),
//! * tuple structs (newtypes serialize as their inner value, wider tuples as
//!   arrays, matching serde),
//! * enums with unit and one-field tuple variants, externally tagged exactly
//!   like serde's default representation (`"Variant"` / `{"Variant": value}`).
//!
//! Generics are not supported; the derive panics with a clear message if it
//! meets a shape it cannot handle, so failures are loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    has_payload: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skip leading attributes; report whether any was `#[serde(skip)]` or
/// `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(pos + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let text = args.stream().to_string();
                        if text.split(',').any(|a| a.trim() == "skip") {
                            skip = true;
                        }
                        if text.split(',').any(|a| a.trim() == "default") {
                            default = true;
                        }
                    }
                }
            }
        }
        pos += 2;
    }
    (pos, skip, default)
}

/// Skip a `pub` / `pub(...)` visibility qualifier.
fn skip_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }
    pos
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut pos, _, _) = skip_attrs(&tokens, 0);
    pos = skip_vis(&tokens, pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in does not support generic type `{name}`");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => panic!("serde derive stand-in does not support unit struct `{name}`"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            _ => panic!("serde derive: malformed enum `{name}`"),
        },
        other => panic!("serde derive: cannot derive for `{other}`"),
    };
    Input { name, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, skip, default) = skip_attrs(&tokens, pos);
        pos = skip_vis(&tokens, next);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        pos += 1;
        assert!(
            matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde derive: expected `:` after field `{name}`"
        );
        pos += 1;
        // Consume the type: everything up to the next comma that is not
        // nested inside generic angle brackets (parens/brackets arrive as
        // single groups, so only `<`/`>` depth needs tracking).
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (i, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if i + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _, _) = skip_attrs(&tokens, pos);
        pos = next;
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name in `{enum_name}`, found {other}"),
        };
        pos += 1;
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = tokens.get(pos) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    assert!(
                        n == 1,
                        "serde derive stand-in supports only one-field tuple variants \
                         (`{enum_name}::{name}` has {n})"
                    );
                    has_payload = true;
                    pos += 1;
                }
                Delimiter::Brace => {
                    panic!("serde derive stand-in does not support struct variant `{enum_name}::{name}`")
                }
                _ => {}
            }
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, has_payload });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__obj.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__obj)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.has_payload {
                    arms.push_str(&format!(
                        "{name}::{0}(__x) => ::serde::Value::Object(vec![(\"{0}\".to_string(), \
                         ::serde::Serialize::serialize(__x))]),\n",
                        v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{0} => ::serde::Value::Str(\"{0}\".to_string()),\n",
                        v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{0}: ::serde::field_or_default(__obj, \"{0}\")?,\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!("{0}: ::serde::field(__obj, \"{0}\")?,\n", f.name));
                }
            }
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
            )
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 ::serde::Error::new(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::new(\
                 \"wrong tuple length for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                if v.has_payload {
                    payload_arms.push_str(&format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}(\
                         ::serde::Deserialize::deserialize(__v)?)),\n",
                        v.name
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::new(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__k, __v) = &__o[0];\n\
                 match __k.as_str() {{\n{payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::new(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::new(format!(\
                 \"invalid value for {name}: {{__other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
