//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of serde the workspace actually uses: `Serialize` / `Deserialize`
//! traits (modelled as conversions to and from a JSON-like [`Value`] tree
//! rather than serde's visitor machinery) plus `#[derive(Serialize,
//! Deserialize)]` macros that mirror serde's data formats — structs as
//! objects, newtype structs as their inner value, unit enum variants as
//! strings and newtype variants as single-key objects (externally tagged).
//!
//! The companion `serde_json` stub renders [`Value`] to JSON text and back,
//! so JSON written by real serde for these shapes deserializes here
//! unchanged, and vice versa.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};

/// A JSON-like value tree: the data model both traits convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    U128(u128),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (field order follows struct declaration).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Deserialization out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialize a required struct field (used by the derive macro).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::new(format!("missing field `{name}`"))),
    }
}

/// Fetch and deserialize a `#[serde(default)]` struct field: absent fields
/// take their `Default` value, so new configuration fields stay readable
/// from JSON written before they existed (used by the derive macro).
pub fn field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::U128(n) if n <= u64::MAX as u128 => n as u64,
                    ref other => return Err(Error::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    ref other => return Err(Error::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        Value::U128(*self)
    }
}

impl Deserialize for u128 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::U128(n) => Ok(n),
            Value::U64(n) => Ok(u128::from(n)),
            Value::I64(n) if n >= 0 => Ok(n as u128),
            ref other => Err(Error::new(format!("expected u128, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        // Mirror serde_json: non-finite floats become null.
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::U128(n) => Ok(n as f64),
            ref other => Err(Error::new(format!("expected float, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (f64::from(*self)).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = String::deserialize(value)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new(format!("expected array, found {value:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize(value).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(value)?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(Error::new("expected two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::deserialize(a)?, B::deserialize(b)?, C::deserialize(c)?)),
            _ => Err(Error::new("expected three-element array")),
        }
    }
}

/// Map keys must render to JSON object keys (strings); integer-like keys are
/// stringified exactly as serde_json does.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::U128(n) => Ok(n.to_string()),
        other => Err(Error::new(format!("unsupported map key {other:?}"))),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    // Try the key as a string first, then as an integer (serde_json's
    // integer-keyed maps round-trip through stringified keys).
    if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(Error::new(format!("cannot deserialize map key `{key}`")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(&k.serialize()).expect("map key"),
                    v.serialize(),
                )
            })
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::new("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.serialize()).expect("map key"),
                        v.serialize(),
                    )
                })
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::new("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
