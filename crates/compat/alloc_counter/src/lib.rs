//! A counting global allocator for zero-allocation regression tests.
//!
//! Install it as the test binary's `#[global_allocator]` and bracket the code
//! under test with [`allocation_count`] snapshots:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//!
//! let before = alloc_counter::allocation_count();
//! hot_path();
//! assert_eq!(alloc_counter::allocation_count(), before, "hot path allocated");
//! ```
//!
//! Counting is a single relaxed atomic increment per `alloc`/`realloc`, so
//! wrapping the system allocator does not disturb the timing of what it
//! measures.  Frees are counted separately ([`deallocation_count`]); a
//! steady-state hot path should show zero of both.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// Wraps the system allocator, counting every allocation.
pub struct CountingAllocator;

/// Number of `alloc`/`realloc` calls since process start.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Number of `dealloc` calls since process start.
pub fn deallocation_count() -> u64 {
    DEALLOCS.load(Ordering::Relaxed)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (other tests in the same
    // binary allocate freely); exercise the trait methods directly.
    #[test]
    fn counts_allocations_and_frees() {
        let a = allocation_count();
        let d = deallocation_count();
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let p = CountingAllocator.alloc(layout);
            assert!(!p.is_null());
            let p = CountingAllocator.realloc(p, layout, 128);
            assert!(!p.is_null());
            CountingAllocator.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(allocation_count() - a, 2);
        assert_eq!(deallocation_count() - d, 1);
    }
}
