//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The sandbox has no crates.io access, so this crate provides the subset of
//! criterion's API the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros and `black_box`).  Each
//! bench closure is timed over a small fixed number of batches and the
//! per-iteration median is printed — enough to compare hot paths locally,
//! with no statistics machinery.  Passing `--test` (as `cargo test` does for
//! `harness = false` bench targets) runs every closure once, keeping the
//! test suite fast.

use std::time::Instant;

/// Re-export of the standard black box (criterion's is equivalent).
pub use std::hint::black_box;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Provides the per-iteration timing loop.
pub struct Bencher {
    test_mode: bool,
}

impl Bencher {
    /// Time a closure; in `--test` mode run it exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate the iteration count to roughly 50 ms of work.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.05 / once) as u64).clamp(1, 100_000);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        println!(
            "    median {:>12}  ({iters} iters/sample)",
            format_time(median)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the stand-in uses a fixed sample plan.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        println!("{}/{}", self.name, id.as_ref());
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        self
    }

    /// End the group (no-op; printed output is already flushed).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: test_mode(),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        println!("{}", id.as_ref());
        let mut b = Bencher {
            test_mode: self.test_mode,
        };
        f(&mut b);
        self
    }
}

/// Declare a group of benchmark functions (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point (criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
