//! Offline stand-in for `serde_json`.
//!
//! Renders the serde stand-in's [`Value`] tree to JSON text and parses JSON
//! text back, exposing the `to_string` / `from_str` / `to_value` /
//! `from_value` entry points the workspace uses.  The text format matches
//! real serde_json for the shapes the workspace serializes, so fixtures
//! captured from real serde deserialize here unchanged.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value)
}

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Convert a [`Value`] tree into a concrete type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f == f.trunc() && f.abs() < 1e16 {
        // Match serde_json: whole floats print with a trailing `.0`.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&12.0f64).unwrap(), "12.0");
        assert_eq!(to_string(&"hi\n".to_string()).unwrap(), "\"hi\\n\"");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), v);

        let mut m = std::collections::HashMap::new();
        m.insert(3u32, 0.5f64);
        m.insert(1u32, 2.0f64);
        let text = to_string(&m).unwrap();
        assert_eq!(text, "{\"1\":2.0,\"3\":0.5}");
        assert_eq!(
            from_str::<std::collections::HashMap<u32, f64>>(&text).unwrap(),
            m
        );
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("A")
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
