//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro over functions whose arguments are drawn from range strategies
//! (`0u16..100`, `1u8..=15`, `0.0f64..1e6`), tuple strategies,
//! `proptest::collection::vec`, and `any::<bool>()`, plus `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!`.  Each property runs a fixed number
//! of deterministically seeded cases (seeded from the test name, so failures
//! reproduce); there is no shrinking — the failing inputs are printed
//! as-is via the assertion message.

use std::ops::{Range, RangeInclusive};

/// Number of cases sampled per property.
pub const CASES: u32 = 128;

/// Deterministic per-test RNG (splitmix64 over a name-derived seed).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A way of generating one input value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.uniform()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.uniform()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = Strategy::sample(&self.len, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skip the current case when an assumption does not hold (expands to
/// `continue` inside the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Declare property tests: each function runs [`CASES`] deterministically
/// seeded cases, drawing every argument from its strategy.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let mut __rng = $crate::TestRng::new(stringify!($name));
            for __case in 0..$crate::CASES {
                let _ = __case;
                $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u16..9, b in 1u8..=4, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in crate::collection::vec((1u32..5, 0.0f64..1.0), 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|(n, f)| (1..5).contains(n) && (0.0..1.0).contains(f)));
            let _ = flag;
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
