//! Integer microsecond time base.
//!
//! The whole reproduction runs on a single discrete clock measured in
//! microseconds since the start of a simulation.  The LTE MAC operates on
//! 1 ms subframes (1000 µs) and 0.5 ms slots; the wired path schedules packet
//! events at arbitrary microsecond resolution.  Using plain integers keeps
//! event ordering exact and the simulation deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Microseconds in one millisecond.
pub const MICROS_PER_MS: u64 = 1_000;
/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in simulated time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Instant(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Instant {
    /// The zero instant (simulation start).
    pub const ZERO: Instant = Instant(0);

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Instant(ms * MICROS_PER_MS)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Instant(s * MICROS_PER_SEC)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Instant(us)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MS
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The LTE subframe index this instant falls into (1 subframe = 1 ms).
    pub fn subframe_index(self) -> u64 {
        self.0 / MICROS_PER_MS
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference, `None` if `earlier` is later than `self`.
    pub fn checked_since(self, earlier: Instant) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);
    /// One millisecond (one LTE subframe).
    pub const MILLISECOND: Duration = Duration(MICROS_PER_MS);
    /// One second.
    pub const SECOND: Duration = Duration(MICROS_PER_SEC);

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * MICROS_PER_MS)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * MICROS_PER_SEC)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from fractional seconds (rounded to the nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s * MICROS_PER_SEC as f64).round().max(0.0) as u64)
    }

    /// Microseconds in this duration.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MS
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MS as f64
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Scale this duration by a float factor (rounded, clamped at zero).
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// True if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

/// Convert a rate in bits-per-second and a payload size in bytes into the
/// serialisation time of that payload.
pub fn transmission_time(bytes: usize, bits_per_sec: f64) -> Duration {
    if bits_per_sec <= 0.0 {
        return Duration(u64::MAX / 4);
    }
    let secs = (bytes as f64 * 8.0) / bits_per_sec;
    Duration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_roundtrips() {
        let t = Instant::from_millis(40);
        assert_eq!(t.as_micros(), 40_000);
        assert_eq!(t.as_millis(), 40);
        assert_eq!(t.subframe_index(), 40);
        let later = t + Duration::from_millis(8);
        assert_eq!((later - t).as_millis(), 8);
        assert_eq!(later.saturating_since(t), Duration::from_millis(8));
        assert_eq!(t.checked_since(later), None);
    }

    #[test]
    fn duration_scaling_and_display() {
        let d = Duration::from_millis(100);
        assert_eq!(d.mul_f64(1.25).as_millis(), 125);
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
        assert_eq!(format!("{}", Duration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn subtraction_saturates() {
        let a = Duration::from_millis(5);
        let b = Duration::from_millis(9);
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(
            Instant::from_millis(1) - Duration::from_millis(2),
            Instant::ZERO
        );
    }

    #[test]
    fn transmission_time_matches_rate() {
        // 1500 bytes at 12 Mbit/s = 1 ms.
        let d = transmission_time(1500, 12_000_000.0);
        assert_eq!(d.as_micros(), 1000);
        // Zero rate yields a huge sentinel rather than dividing by zero.
        assert!(transmission_time(1500, 0.0).as_micros() > MICROS_PER_SEC * 1000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(0.0000014).as_micros(), 1);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }
}
