//! Jain's fairness index.
//!
//! Section 6.4 of the paper quantifies multi-user fairness, RTT fairness and
//! TCP friendliness with Jain's index over the PRBs the primary cell
//! allocates to each competing flow (e.g. 99.97 % with two concurrent PBE-CC
//! flows, 98.73 % with three).

/// Jain's fairness index over a set of non-negative allocations.
///
/// Returns a value in `(0, 1]` where 1 means perfectly equal allocations.
/// Returns 1.0 for an empty slice or an all-zero slice (no contention means
/// nothing to be unfair about), matching the convention used in the
/// experiment harness.
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let n = allocations.len() as f64;
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

/// Jain's index computed over per-flow time averages of a sequence of
/// per-interval allocations (rows = intervals, columns = flows).
///
/// Intervals where every flow received zero are ignored.
pub fn jain_index_over_time(per_interval: &[Vec<f64>]) -> f64 {
    let mut totals: Vec<f64> = Vec::new();
    for row in per_interval {
        if row.iter().all(|x| *x <= 0.0) {
            continue;
        }
        if totals.len() < row.len() {
            totals.resize(row.len(), 0.0);
        }
        for (t, x) in totals.iter_mut().zip(row) {
            *t += x;
        }
    }
    jain_index(&totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_allocations_are_perfectly_fair() {
        assert!((jain_index(&[10.0, 10.0, 10.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[3.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn totally_unfair_allocation() {
        // One user gets everything among n users: index = 1/n.
        let idx = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn known_textbook_value() {
        // Jain's example: allocations 1,2,3 -> (6^2)/(3*14) = 36/42.
        let idx = jain_index(&[1.0, 2.0, 3.0]);
        assert!((idx - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn over_time_ignores_idle_intervals() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![50.0, 50.0],
            vec![30.0, 70.0],
            vec![70.0, 30.0],
        ];
        let idx = jain_index_over_time(&rows);
        // Totals are equal (150, 150) so the index is 1.
        assert!((idx - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn index_is_in_unit_interval(v in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            let idx = jain_index(&v);
            prop_assert!(idx > 0.0 && idx <= 1.0 + 1e-12);
        }

        #[test]
        fn index_lower_bound_is_one_over_n(v in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            let idx = jain_index(&v);
            let n = v.len() as f64;
            prop_assert!(idx >= 1.0 / n - 1e-12);
        }

        #[test]
        fn scale_invariant(v in proptest::collection::vec(0.1f64..1e4, 1..30), k in 0.1f64..100.0) {
            let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
            prop_assert!((jain_index(&v) - jain_index(&scaled)).abs() < 1e-9);
        }
    }
}
