//! Per-flow experiment summaries.
//!
//! Collects everything the paper reports about one flow of one run — average
//! throughput, the delay order statistics, and the per-window series — into a
//! single value that the experiment harness can format as a table row or feed
//! into cross-location CDFs (Fig. 12) and speedup ratios (Table 1).

use crate::percentile::{percentile, OnlineStats};
use crate::time::{Duration, Instant};
use crate::window::WindowAggregator;
use serde::{Deserialize, Serialize};

/// Summary statistics of one flow in one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSummary {
    /// Human-readable label (scheme name, flow id, …).
    pub label: String,
    /// Average throughput over the flow lifetime, Mbit/s.
    pub avg_throughput_mbps: f64,
    /// Per-100 ms window throughput percentiles, Mbit/s: (p10, p25, p50, p75, p90).
    pub throughput_percentiles_mbps: [f64; 5],
    /// One-way delay percentiles, ms: (p10, p25, p50, p75, p90).
    pub delay_percentiles_ms: [f64; 5],
    /// Average one-way delay, ms.
    pub avg_delay_ms: f64,
    /// 95th-percentile one-way delay, ms.
    pub p95_delay_ms: f64,
    /// Maximum one-way delay, ms.
    pub max_delay_ms: f64,
    /// Total bytes delivered to the application.
    pub total_bytes: u64,
    /// Number of delay samples (delivered packets).
    pub packets: u64,
    /// Fraction of time the sender spent in the Internet-bottleneck state
    /// (only meaningful for PBE-CC; 0 for other schemes).
    pub internet_bottleneck_fraction: f64,
    /// Whether the run triggered carrier aggregation (a secondary cell was
    /// activated at any point).
    pub carrier_aggregation_triggered: bool,
}

/// Builder that accumulates raw samples during a run and produces a
/// [`FlowSummary`] at the end.
#[derive(Debug, Clone)]
pub struct FlowSummaryBuilder {
    label: String,
    windows: WindowAggregator,
    delays_ms: Vec<f64>,
    delay_stats: OnlineStats,
    total_bytes: u64,
    internet_bottleneck_fraction: f64,
    carrier_aggregation_triggered: bool,
}

impl FlowSummaryBuilder {
    /// New builder with the paper's 100 ms aggregation window.
    pub fn new(label: impl Into<String>) -> Self {
        FlowSummaryBuilder {
            label: label.into(),
            windows: WindowAggregator::paper_default(),
            delays_ms: Vec::new(),
            delay_stats: OnlineStats::new(),
            total_bytes: 0,
            internet_bottleneck_fraction: 0.0,
            carrier_aggregation_triggered: false,
        }
    }

    /// New builder with a custom aggregation window.
    pub fn with_window(label: impl Into<String>, window: Duration) -> Self {
        FlowSummaryBuilder {
            windows: WindowAggregator::new(window),
            ..FlowSummaryBuilder::new(label)
        }
    }

    /// Record a packet delivered to the application at `t` with the given
    /// payload size and one-way delay.
    pub fn record_packet(&mut self, t: Instant, bytes: u64, one_way_delay: Duration) {
        self.total_bytes += bytes;
        let delay_ms = one_way_delay.as_millis_f64();
        self.windows.record_delivery(t, bytes);
        self.windows.record_delay(t, delay_ms);
        self.delays_ms.push(delay_ms);
        self.delay_stats.push(delay_ms);
    }

    /// Set the fraction of time spent in the Internet-bottleneck state.
    pub fn set_internet_bottleneck_fraction(&mut self, fraction: f64) {
        self.internet_bottleneck_fraction = fraction.clamp(0.0, 1.0);
    }

    /// Mark that carrier aggregation was triggered during the run.
    pub fn set_carrier_aggregation_triggered(&mut self, triggered: bool) {
        self.carrier_aggregation_triggered = triggered;
    }

    /// Access the per-window aggregator (e.g. for timeline plots).
    pub fn windows(&self) -> &WindowAggregator {
        &self.windows
    }

    /// Raw one-way delay samples in ms.
    pub fn delays_ms(&self) -> &[f64] {
        &self.delays_ms
    }

    /// Finalise into a [`FlowSummary`].
    pub fn build(&self) -> FlowSummary {
        let tp = self.windows.throughput_series_mbps();
        // Drop the (possibly partial) tail/lead-in windows only if there are
        // plenty of windows; this mirrors how per-interval statistics are
        // usually reported without the ramp artifacts of empty edge windows.
        let pcts = |v: &[f64]| -> [f64; 5] {
            let ps = [10.0, 25.0, 50.0, 75.0, 90.0];
            let mut out = [0.0; 5];
            for (i, p) in ps.iter().enumerate() {
                out[i] = percentile(v, *p).unwrap_or(0.0);
            }
            out
        };
        FlowSummary {
            label: self.label.clone(),
            avg_throughput_mbps: self.windows.average_throughput_mbps(),
            throughput_percentiles_mbps: pcts(&tp),
            delay_percentiles_ms: pcts(&self.delays_ms),
            avg_delay_ms: self.delay_stats.mean(),
            p95_delay_ms: percentile(&self.delays_ms, 95.0).unwrap_or(0.0),
            max_delay_ms: self.delay_stats.max().unwrap_or(0.0),
            total_bytes: self.total_bytes,
            packets: self.delay_stats.count(),
            internet_bottleneck_fraction: self.internet_bottleneck_fraction,
            carrier_aggregation_triggered: self.carrier_aggregation_triggered,
        }
    }
}

impl FlowSummary {
    /// Format a compact single-line report.
    pub fn one_line(&self) -> String {
        format!(
            "{:<10} tput {:6.2} Mbit/s  delay avg {:6.1} ms  p95 {:6.1} ms  pkts {:7}",
            self.label,
            self.avg_throughput_mbps,
            self.avg_delay_ms,
            self.p95_delay_ms,
            self.packets
        )
    }

    /// Throughput speedup of `self` relative to `other` (paper Table 1
    /// convention: PBE-CC throughput / other throughput).
    pub fn throughput_speedup_vs(&self, other: &FlowSummary) -> f64 {
        if other.avg_throughput_mbps <= 0.0 {
            return f64::INFINITY;
        }
        self.avg_throughput_mbps / other.avg_throughput_mbps
    }

    /// Delay reduction factor of `self` relative to `other` on the 95th
    /// percentile (other's delay / self's delay, so > 1 means self is better).
    pub fn p95_delay_reduction_vs(&self, other: &FlowSummary) -> f64 {
        if self.p95_delay_ms <= 0.0 {
            return f64::INFINITY;
        }
        other.p95_delay_ms / self.p95_delay_ms
    }

    /// Delay reduction factor on average delay.
    pub fn avg_delay_reduction_vs(&self, other: &FlowSummary) -> f64 {
        if self.avg_delay_ms <= 0.0 {
            return f64::INFINITY;
        }
        other.avg_delay_ms / self.avg_delay_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_flow(
        label: &str,
        rate_pkts_per_ms: u64,
        delay_ms: f64,
        duration_ms: u64,
    ) -> FlowSummary {
        let mut b = FlowSummaryBuilder::new(label);
        for ms in 1..=duration_ms {
            for _ in 0..rate_pkts_per_ms {
                b.record_packet(
                    Instant::from_millis(ms),
                    1500,
                    Duration::from_micros((delay_ms * 1000.0) as u64),
                );
            }
        }
        b.build()
    }

    #[test]
    fn summary_reports_throughput_and_delay() {
        // 1 packet of 1500 B per ms = 12 Mbit/s.
        let s = build_flow("test", 1, 50.0, 2000);
        assert!(
            (s.avg_throughput_mbps - 12.0).abs() < 0.5,
            "{}",
            s.avg_throughput_mbps
        );
        assert!((s.avg_delay_ms - 50.0).abs() < 1e-9);
        assert!((s.p95_delay_ms - 50.0).abs() < 1e-9);
        assert_eq!(s.packets, 2000);
        assert_eq!(s.total_bytes, 2000 * 1500);
    }

    #[test]
    fn speedup_and_delay_reduction_ratios() {
        let fast = build_flow("fast", 2, 40.0, 1000);
        let slow = build_flow("slow", 1, 80.0, 1000);
        assert!((fast.throughput_speedup_vs(&slow) - 2.0).abs() < 0.05);
        assert!((fast.p95_delay_reduction_vs(&slow) - 2.0).abs() < 1e-9);
        assert!((fast.avg_delay_reduction_vs(&slow) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_handle_degenerate_cases() {
        let empty = FlowSummaryBuilder::new("empty").build();
        let real = build_flow("real", 1, 10.0, 100);
        assert!(real.throughput_speedup_vs(&empty).is_infinite());
        assert!(empty.p95_delay_reduction_vs(&real).is_infinite());
        assert_eq!(empty.packets, 0);
    }

    #[test]
    fn bottleneck_fraction_is_clamped() {
        let mut b = FlowSummaryBuilder::new("x");
        b.set_internet_bottleneck_fraction(1.7);
        b.set_carrier_aggregation_triggered(true);
        let s = b.build();
        assert_eq!(s.internet_bottleneck_fraction, 1.0);
        assert!(s.carrier_aggregation_triggered);
    }

    #[test]
    fn one_line_contains_label() {
        let s = build_flow("pbe", 1, 10.0, 100);
        assert!(s.one_line().contains("pbe"));
    }
}
