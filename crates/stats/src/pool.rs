//! In-tree worker pool shared by the sweep harness and the sharded tick
//! engine.
//!
//! Two layers of the workspace need "run N independent jobs on all cores":
//! the sweep harness fans scenarios out across processes-worth of work per
//! job, and the sharded cellular engine ticks a handful of shards every
//! simulated millisecond.  The first shape is served by [`run_indexed`]
//! (spawn, run, join — jobs are seconds long, thread startup is noise); the
//! second by a persistent [`WorkerPool`] whose threads park on a condvar
//! between subframes, because spawning threads every millisecond would cost
//! more than the tick itself.
//!
//! In the same spirit as the offline stand-ins under `crates/compat/`, both
//! are implemented directly on `std::thread` instead of pulling in an
//! external executor.  Workers claim contiguous chunks of the index range
//! from a shared atomic cursor (cheap, and neighbouring jobs tend to have
//! similar cost, which keeps the tail balanced); every result is written to
//! its own index's slot, so output order equals input order no matter which
//! worker ran what — the property every determinism test in the workspace
//! leans on.

//! Job panics are *contained*: every index runs under `catch_unwind`, so one
//! panicking job can neither take down sibling jobs in its chunk nor unwind
//! through the pool's gate while other workers still hold the (lifetime-
//! laundered) job reference.  The `*_partial` entry points surface panics as
//! structured [`JobPanic`] records next to the results that did complete;
//! the classic entry points keep their fail-fast contract but only re-raise
//! *after* every in-flight job has drained.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job index whose closure panicked, with the rendered panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The index passed to the job closure.
    pub index: usize,
    /// The panic payload, rendered to text (`&str` and `String` payloads are
    /// carried verbatim; anything else becomes a placeholder).
    pub message: String,
}

/// Render a panic payload (as returned by `catch_unwind`) to text.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A raw pointer that may cross thread boundaries.
///
/// Soundness is the caller's obligation: every use in this module hands each
/// claimed index to exactly one worker, so the pointed-to slots are accessed
/// by at most one thread at a time.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i` of the array this points at.  Going through a
    /// method (rather than the field) makes closures capture the whole
    /// `SendPtr`, which carries the `Sync` promise.
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass indices inside the allocation.
        unsafe { self.0.add(i) }
    }
}

/// The job reference workers execute.  The `'static` lifetime is a lie told
/// under controlled conditions: [`WorkerPool::run`] transmutes the caller's
/// stack closure to this type and does not return until every worker has
/// finished the epoch, so the reference never outlives the closure.
type Job = &'static (dyn Fn(usize) + Sync);

struct Gate {
    /// Monotonic batch counter; workers run one batch per increment.
    epoch: u64,
    /// The active batch: job, index count, chunk size.
    batch: Option<(Job, usize, usize)>,
    /// Spawned workers still running the active batch.
    remaining: usize,
    /// Set when a worker's job panicked; re-raised on the calling thread.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    /// Signals workers that a new batch (or shutdown) is available.
    work: Condvar,
    /// Signals the caller that `remaining` reached zero.
    done: Condvar,
    /// Next unclaimed index of the active batch.
    cursor: AtomicUsize,
    /// Indices whose job panicked during the active batch.
    panics: Mutex<Vec<JobPanic>>,
}

/// A persistent pool of worker threads executing indexed batches.
///
/// `WorkerPool::new(workers)` spawns `workers - 1` OS threads; the thread
/// calling [`WorkerPool::run`] participates as the final worker, so
/// `new(1)` spawns nothing and runs every batch inline — the serial
/// baseline the byte-identity tests compare against.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Create a pool that executes batches on `workers` threads total
    /// (including the caller of [`WorkerPool::run`]).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate {
                epoch: 0,
                batch: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
        });
        let threads = (1..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Total worker count, including the calling thread.
    pub fn workers(&self) -> usize {
        self.threads.len() + 1
    }

    /// Run `job(i)` for every `i in 0..count` across the pool and block until
    /// all indices have run.
    ///
    /// `job` must depend only on `i` (and captured shared state) — each index
    /// runs exactly once, on an unspecified thread.  With a single-worker
    /// pool the indices run inline in ascending order.
    ///
    /// A panicking job is re-raised on the calling thread — but only after
    /// every other in-flight index has drained, so siblings complete and the
    /// pool stays usable.  Use [`WorkerPool::run_partial`] to receive panics
    /// as data instead.
    pub fn run<F>(&self, count: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        let panics = self.run_partial(count, job);
        if let Some(p) = panics.first() {
            panic!(
                "worker pool job panicked at index {}: {}",
                p.index, p.message
            );
        }
    }

    /// Run `job(i)` for every `i in 0..count`, containing panics: every index
    /// runs (panicking ones under `catch_unwind`), and the panicked indices
    /// come back as [`JobPanic`] records in index order.
    pub fn run_partial<F>(&self, count: usize, job: F) -> Vec<JobPanic>
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        if self.threads.is_empty() {
            let mut panics = Vec::new();
            for i in 0..count {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
                    panics.push(JobPanic {
                        index: i,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
            return panics;
        }
        let chunk = (count / (self.workers() * 4)).max(1);
        let job_ref: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY: the reference is only reachable by workers between the
        // batch publication below and the `remaining == 0` wait at the end of
        // this function, during which `job` is alive on this stack frame.
        // Jobs run under per-index `catch_unwind`, so a panicking job cannot
        // unwind this frame while workers still hold the reference.
        let job_static: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job_ref)
        };
        {
            let mut gate = self.shared.gate.lock().expect("pool gate poisoned");
            self.shared.cursor.store(0, Ordering::Relaxed);
            self.shared
                .panics
                .lock()
                .expect("pool panic log poisoned")
                .clear();
            gate.batch = Some((job_static, count, chunk));
            gate.epoch += 1;
            gate.remaining = self.threads.len();
            self.shared.work.notify_all();
        }
        // Participate as the final worker.
        run_chunks(&self.shared.cursor, count, chunk, &job, &self.shared.panics);
        let mut gate = self.shared.gate.lock().expect("pool gate poisoned");
        while gate.remaining > 0 {
            gate = self.shared.done.wait(gate).expect("pool gate poisoned");
        }
        gate.batch = None;
        if std::mem::take(&mut gate.panicked) {
            drop(gate);
            panic!("worker pool harness panicked outside a job");
        }
        drop(gate);
        let mut panics =
            std::mem::take(&mut *self.shared.panics.lock().expect("pool panic log poisoned"));
        // Claim order is nondeterministic across threads; report in index
        // order so callers see a stable failure list.
        panics.sort_by_key(|p| p.index);
        panics
    }

    /// Run `job(i)` for every index and collect the results in index order.
    ///
    /// Panics (after draining, like [`WorkerPool::run`]) if any job panicked;
    /// use [`WorkerPool::run_collect_partial`] to keep the completed results.
    pub fn run_collect<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let (slots, panics) = self.run_collect_partial(count, job);
        if let Some(p) = panics.first() {
            panic!(
                "worker pool job panicked at index {}: {}",
                p.index, p.message
            );
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index ran exactly once"))
            .collect()
    }

    /// Run `job(i)` for every index, containing panics.  Returns one slot per
    /// index — `Some(result)` where the job completed, `None` where it
    /// panicked — plus the panic records in index order.
    pub fn run_collect_partial<T, F>(&self, count: usize, job: F) -> (Vec<Option<T>>, Vec<JobPanic>)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let base = SendPtr(slots.as_mut_ptr());
        let panics = self.run_partial(count, |i| {
            // SAFETY: each index is claimed exactly once, so this is the only
            // thread writing slot `i`, and `slots` outlives `run_partial`.
            // A panicking `job(i)` leaves slot `i` untouched (`None`).
            unsafe { *base.at(i) = Some(job(i)) };
        });
        (slots, panics)
    }

    /// Apply `f(i, &mut items[i])` to every element in parallel.
    ///
    /// Each element is visited by exactly one worker, so the mutable borrows
    /// handed out are disjoint.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        self.run(items.len(), |i| {
            // SAFETY: index `i` is claimed by exactly one worker, so this is
            // the only live reference to `items[i]`.
            let item = unsafe { &mut *base.at(i) };
            f(i, item);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().expect("pool gate poisoned");
            gate.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, count, chunk) = {
            let mut gate = shared.gate.lock().expect("pool gate poisoned");
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch > seen_epoch {
                    seen_epoch = gate.epoch;
                    break gate.batch.expect("batch published with epoch");
                }
                gate = shared.work.wait(gate).expect("pool gate poisoned");
            }
        };
        // Job panics are caught per index inside `run_chunks`; this outer
        // catch only trips on harness bugs (e.g. a poisoned panic log), and
        // exists so `remaining` is decremented no matter what.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(&shared.cursor, count, chunk, job, &shared.panics);
        }));
        let mut gate = shared.gate.lock().expect("pool gate poisoned");
        if outcome.is_err() {
            gate.panicked = true;
        }
        gate.remaining -= 1;
        if gate.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

fn run_chunks<F>(
    cursor: &AtomicUsize,
    count: usize,
    chunk: usize,
    job: &F,
    panics: &Mutex<Vec<JobPanic>>,
) where
    F: Fn(usize) + Sync + ?Sized,
{
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= count {
            break;
        }
        for i in start..(start + chunk).min(count) {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
                panics
                    .lock()
                    .expect("pool panic log poisoned")
                    .push(JobPanic {
                        index: i,
                        message: panic_message(payload.as_ref()),
                    });
            }
        }
    }
}

/// Run `count` independent jobs across `workers` OS threads and collect the
/// results in index order.
///
/// The one-shot entry point the sweep harness uses: builds a [`WorkerPool`],
/// runs the batch, and tears the pool down.  `job(i)` must depend only on
/// `i` (and captured shared state) — each index runs exactly once, on an
/// unspecified thread.  With `workers <= 1` the jobs run inline on the
/// calling thread, which is the serial baseline the determinism tests
/// compare against.
pub fn run_indexed<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 {
        return (0..count).map(job).collect();
    }
    WorkerPool::new(workers).run_collect(count, job)
}

/// Like [`run_indexed`], but panics are contained: the result carries one
/// slot per index (`None` where the job panicked) plus the [`JobPanic`]
/// records in index order.  Every non-panicking index completes — a failure
/// loses exactly its own slot, never the batch.
pub fn run_indexed_partial<T, F>(
    count: usize,
    workers: usize,
    job: F,
) -> (Vec<Option<T>>, Vec<JobPanic>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
        let mut panics = Vec::new();
        for i in 0..count {
            match catch_unwind(AssertUnwindSafe(|| job(i))) {
                Ok(v) => slots.push(Some(v)),
                Err(payload) => {
                    slots.push(None);
                    panics.push(JobPanic {
                        index: i,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
        return (slots, panics);
    }
    WorkerPool::new(workers).run_collect_partial(count, job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 4, 7] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        run_indexed(101, 4, |i| seen.lock().unwrap().push(i));
        let ran = seen.into_inner().unwrap();
        assert_eq!(ran.len(), 101);
        assert_eq!(ran.iter().collect::<HashSet<_>>().len(), 101);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u8> = run_indexed(0, 4, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..20u64 {
            let out = pool.run_collect(17, |i| round * 100 + i as u64);
            assert_eq!(out, (0..17).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_mut_visits_every_element_once() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u32> = vec![0; 57];
        pool.for_each_mut(&mut items, |i, item| *item = i as u32 + 1);
        assert_eq!(items, (0..57).map(|i| i + 1).collect::<Vec<u32>>());
        // Re-use with a different element count.
        let mut small: Vec<u32> = vec![0; 3];
        pool.for_each_mut(&mut small, |i, item| *item = 10 - i as u32);
        assert_eq!(small, vec![10, 9, 8]);
    }

    #[test]
    fn single_worker_pool_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let seen = Mutex::new(Vec::new());
        pool.run(9, |i| seen.lock().unwrap().push(i));
        assert_eq!(seen.into_inner().unwrap(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_loses_only_its_own_slot() {
        for workers in [1, 4] {
            let (slots, panics) = run_indexed_partial(13, workers, |i| {
                if i == 5 || i == 9 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            assert_eq!(slots.len(), 13);
            for (i, slot) in slots.iter().enumerate() {
                if i == 5 || i == 9 {
                    assert_eq!(*slot, None, "panicked index {i} has no result");
                } else {
                    assert_eq!(*slot, Some(i * 2), "index {i} completed");
                }
            }
            assert_eq!(
                panics,
                vec![
                    JobPanic {
                        index: 5,
                        message: "boom at 5".to_string()
                    },
                    JobPanic {
                        index: 9,
                        message: "boom at 9".to_string()
                    },
                ],
                "panics are structured and in index order ({workers} workers)"
            );
        }
    }

    #[test]
    fn pool_survives_a_job_panic_and_stays_usable() {
        let pool = WorkerPool::new(3);
        let (slots, panics) = pool.run_collect_partial(9, |i| {
            if i == 2 {
                panic!("transient");
            }
            i + 100
        });
        assert_eq!(panics.len(), 1);
        assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 8);
        // The same pool runs a clean batch afterwards — no wedged workers, no
        // leaked panic records.
        let out = pool.run_collect(7, |i| i * 3);
        assert_eq!(out, (0..7).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_reraises_only_after_draining_every_other_job() {
        let pool = WorkerPool::new(4);
        let ran = Mutex::new(HashSet::new());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(21, |i| {
                ran.lock().unwrap().insert(i);
                if i == 3 {
                    panic!("index 3 is poison");
                }
            });
        }));
        let message = panic_message(outcome.expect_err("run re-raises the job panic").as_ref());
        assert!(
            message.contains("index 3") && message.contains("poison"),
            "re-raise names the failing index and payload: {message}"
        );
        assert_eq!(
            ran.into_inner().unwrap().len(),
            21,
            "every index ran before the re-raise — partial work is not lost"
        );
    }

    #[test]
    fn panic_payloads_render_for_str_and_string() {
        let (_, panics) = run_indexed_partial(2, 1, |i| {
            if i == 0 {
                panic!("plain str");
            }
            let detail = 42;
            panic!("formatted {detail}");
        });
        assert_eq!(panics[0].message, "plain str");
        assert_eq!(panics[1].message, "formatted 42");
    }

    #[test]
    fn output_order_is_independent_of_completion_order() {
        // Make low indices finish last: the slot-per-index write discipline
        // must still return results in index order.
        let pool = WorkerPool::new(4);
        let out = pool.run_collect(16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i * 7
        });
        assert_eq!(out, (0..16).map(|i| i * 7).collect::<Vec<_>>());
    }
}
