//! In-tree worker pool shared by the sweep harness and the sharded tick
//! engine.
//!
//! Two layers of the workspace need "run N independent jobs on all cores":
//! the sweep harness fans scenarios out across processes-worth of work per
//! job, and the sharded cellular engine ticks a handful of shards every
//! simulated millisecond.  The first shape is served by [`run_indexed`]
//! (spawn, run, join — jobs are seconds long, thread startup is noise); the
//! second by a persistent [`WorkerPool`] whose threads park on a condvar
//! between subframes, because spawning threads every millisecond would cost
//! more than the tick itself.
//!
//! In the same spirit as the offline stand-ins under `crates/compat/`, both
//! are implemented directly on `std::thread` instead of pulling in an
//! external executor.  Workers claim contiguous chunks of the index range
//! from a shared atomic cursor (cheap, and neighbouring jobs tend to have
//! similar cost, which keeps the tail balanced); every result is written to
//! its own index's slot, so output order equals input order no matter which
//! worker ran what — the property every determinism test in the workspace
//! leans on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A raw pointer that may cross thread boundaries.
///
/// Soundness is the caller's obligation: every use in this module hands each
/// claimed index to exactly one worker, so the pointed-to slots are accessed
/// by at most one thread at a time.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i` of the array this points at.  Going through a
    /// method (rather than the field) makes closures capture the whole
    /// `SendPtr`, which carries the `Sync` promise.
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass indices inside the allocation.
        unsafe { self.0.add(i) }
    }
}

/// The job reference workers execute.  The `'static` lifetime is a lie told
/// under controlled conditions: [`WorkerPool::run`] transmutes the caller's
/// stack closure to this type and does not return until every worker has
/// finished the epoch, so the reference never outlives the closure.
type Job = &'static (dyn Fn(usize) + Sync);

struct Gate {
    /// Monotonic batch counter; workers run one batch per increment.
    epoch: u64,
    /// The active batch: job, index count, chunk size.
    batch: Option<(Job, usize, usize)>,
    /// Spawned workers still running the active batch.
    remaining: usize,
    /// Set when a worker's job panicked; re-raised on the calling thread.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    /// Signals workers that a new batch (or shutdown) is available.
    work: Condvar,
    /// Signals the caller that `remaining` reached zero.
    done: Condvar,
    /// Next unclaimed index of the active batch.
    cursor: AtomicUsize,
}

/// A persistent pool of worker threads executing indexed batches.
///
/// `WorkerPool::new(workers)` spawns `workers - 1` OS threads; the thread
/// calling [`WorkerPool::run`] participates as the final worker, so
/// `new(1)` spawns nothing and runs every batch inline — the serial
/// baseline the byte-identity tests compare against.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Create a pool that executes batches on `workers` threads total
    /// (including the caller of [`WorkerPool::run`]).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate {
                epoch: 0,
                batch: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let threads = (1..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Total worker count, including the calling thread.
    pub fn workers(&self) -> usize {
        self.threads.len() + 1
    }

    /// Run `job(i)` for every `i in 0..count` across the pool and block until
    /// all indices have run.
    ///
    /// `job` must depend only on `i` (and captured shared state) — each index
    /// runs exactly once, on an unspecified thread.  With a single-worker
    /// pool the indices run inline in ascending order.
    pub fn run<F>(&self, count: usize, job: F)
    where
        F: Fn(usize) + Sync,
    {
        if count == 0 {
            return;
        }
        if self.threads.is_empty() {
            for i in 0..count {
                job(i);
            }
            return;
        }
        let chunk = (count / (self.workers() * 4)).max(1);
        let job_ref: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY: the reference is only reachable by workers between the
        // batch publication below and the `remaining == 0` wait at the end of
        // this function, during which `job` is alive on this stack frame.
        let job_static: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job_ref)
        };
        {
            let mut gate = self.shared.gate.lock().expect("pool gate poisoned");
            self.shared.cursor.store(0, Ordering::Relaxed);
            gate.batch = Some((job_static, count, chunk));
            gate.epoch += 1;
            gate.remaining = self.threads.len();
            self.shared.work.notify_all();
        }
        // Participate as the final worker.
        run_chunks(&self.shared.cursor, count, chunk, &job);
        let mut gate = self.shared.gate.lock().expect("pool gate poisoned");
        while gate.remaining > 0 {
            gate = self.shared.done.wait(gate).expect("pool gate poisoned");
        }
        gate.batch = None;
        if std::mem::take(&mut gate.panicked) {
            drop(gate);
            panic!("worker pool job panicked");
        }
    }

    /// Run `job(i)` for every index and collect the results in index order.
    pub fn run_collect<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let base = SendPtr(slots.as_mut_ptr());
        self.run(count, |i| {
            // SAFETY: each index is claimed exactly once, so this is the only
            // thread writing slot `i`, and `slots` outlives `run`.
            unsafe { *base.at(i) = Some(job(i)) };
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index ran exactly once"))
            .collect()
    }

    /// Apply `f(i, &mut items[i])` to every element in parallel.
    ///
    /// Each element is visited by exactly one worker, so the mutable borrows
    /// handed out are disjoint.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        self.run(items.len(), |i| {
            // SAFETY: index `i` is claimed by exactly one worker, so this is
            // the only live reference to `items[i]`.
            let item = unsafe { &mut *base.at(i) };
            f(i, item);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = self.shared.gate.lock().expect("pool gate poisoned");
            gate.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, count, chunk) = {
            let mut gate = shared.gate.lock().expect("pool gate poisoned");
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch > seen_epoch {
                    seen_epoch = gate.epoch;
                    break gate.batch.expect("batch published with epoch");
                }
                gate = shared.work.wait(gate).expect("pool gate poisoned");
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_chunks(&shared.cursor, count, chunk, job);
        }));
        let mut gate = shared.gate.lock().expect("pool gate poisoned");
        if outcome.is_err() {
            gate.panicked = true;
        }
        gate.remaining -= 1;
        if gate.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

fn run_chunks<F>(cursor: &AtomicUsize, count: usize, chunk: usize, job: &F)
where
    F: Fn(usize) + Sync + ?Sized,
{
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= count {
            break;
        }
        for i in start..(start + chunk).min(count) {
            job(i);
        }
    }
}

/// Run `count` independent jobs across `workers` OS threads and collect the
/// results in index order.
///
/// The one-shot entry point the sweep harness uses: builds a [`WorkerPool`],
/// runs the batch, and tears the pool down.  `job(i)` must depend only on
/// `i` (and captured shared state) — each index runs exactly once, on an
/// unspecified thread.  With `workers <= 1` the jobs run inline on the
/// calling thread, which is the serial baseline the determinism tests
/// compare against.
pub fn run_indexed<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 {
        return (0..count).map(job).collect();
    }
    WorkerPool::new(workers).run_collect(count, job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 4, 7] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        run_indexed(101, 4, |i| seen.lock().unwrap().push(i));
        let ran = seen.into_inner().unwrap();
        assert_eq!(ran.len(), 101);
        assert_eq!(ran.iter().collect::<HashSet<_>>().len(), 101);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u8> = run_indexed(0, 4, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..20u64 {
            let out = pool.run_collect(17, |i| round * 100 + i as u64);
            assert_eq!(out, (0..17).map(|i| round * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_mut_visits_every_element_once() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u32> = vec![0; 57];
        pool.for_each_mut(&mut items, |i, item| *item = i as u32 + 1);
        assert_eq!(items, (0..57).map(|i| i + 1).collect::<Vec<u32>>());
        // Re-use with a different element count.
        let mut small: Vec<u32> = vec![0; 3];
        pool.for_each_mut(&mut small, |i, item| *item = 10 - i as u32);
        assert_eq!(small, vec![10, 9, 8]);
    }

    #[test]
    fn single_worker_pool_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let seen = Mutex::new(Vec::new());
        pool.run(9, |i| seen.lock().unwrap().push(i));
        assert_eq!(seen.into_inner().unwrap(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn output_order_is_independent_of_completion_order() {
        // Make low indices finish last: the slot-per-index write discipline
        // must still return results in index order.
        let pool = WorkerPool::new(4);
        let out = pool.run_collect(16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i * 7
        });
        assert_eq!(out, (0..16).map(|i| i * 7).collect::<Vec<_>>());
    }
}
