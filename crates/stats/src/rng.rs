//! Deterministic, splittable random-number generation.
//!
//! Every stochastic component of the reproduction (channel fading, background
//! user arrivals, decode errors, …) draws from a [`DetRng`] derived from a
//! single experiment seed.  Splitting by a stream label gives each component
//! an independent stream whose output does not change when unrelated
//! components are added or reordered — the property the experiment harness
//! relies on for run-to-run comparability across congestion-control schemes.

/// Mix a replica index into a base experiment seed.
///
/// Sweeps that repeat a scenario across a seed axis derive each replica's
/// experiment seed from the scenario's base seed and the replica index, so a
/// scenario's identity — not which worker thread ran it — determines its
/// randomness.  Index 0 leaves the base seed unchanged (a one-replica sweep
/// reproduces the standalone run bit-for-bit), and distinct indices yield
/// distinct seeds because the multiplier is odd (hence injective on `u64`).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A deterministic random number generator with named sub-streams.
///
/// The core generator is xoshiro256++ seeded through SplitMix64 — the same
/// construction `rand`'s small RNGs use — implemented locally so the
/// workspace has no external RNG dependency.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from an experiment seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            seed,
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The seed this generator (stream) was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream identified by a label.
    ///
    /// The derivation hashes the label into the seed (FNV-1a) so the stream
    /// depends only on `(seed, label)`, not on how many values the parent has
    /// produced.
    pub fn split(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        DetRng::new(h)
    }

    /// Derive an independent sub-stream identified by a label and an index
    /// (e.g. one stream per background user).
    pub fn split_indexed(&self, label: &str, index: u64) -> DetRng {
        let child = self.split(label);
        let mut h = child.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 31;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        DetRng::new(h)
    }

    /// Uniform float in `[0, 1)` (53 random mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)` (empty range returns `lo`).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64;
        // Multiply-shift range reduction (Lemire); the bias for the spans the
        // simulator uses (≪ 2^32) is far below statistical relevance.
        let r = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + r as usize
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.uniform() < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid log(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given mean (mean = 1/λ).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Poisson sample with the given mean (Knuth's method; mean expected to be
    /// modest, which holds for per-subframe arrival counts).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            k += 1;
            p *= self.uniform();
            if p <= l {
                return k - 1;
            }
            // Guard against pathological means.
            if k > 10_000 {
                return k;
            }
        }
    }

    /// Pareto sample with scale `xm` and shape `alpha` (heavy-tailed flow sizes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        let u = 1.0 - self.uniform();
        xm / u.powf(1.0 / alpha)
    }

    /// Choose an index according to a slice of non-negative weights.
    /// Returns 0 for an all-zero or empty slice.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 || weights.is_empty() {
            return 0;
        }
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if target < *w {
                return i;
            }
            target -= *w;
        }
        weights.len() - 1
    }

    /// Raw 64-bit value (for hashing / shuffling needs of callers).
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_keeps_base_at_index_zero_and_separates_replicas() {
        assert_eq!(derive_seed(0xC0FFEE, 0), 0xC0FFEE);
        let mut derived: Vec<u64> = (0..64).map(|i| derive_seed(0xC0FFEE, i)).collect();
        derived.sort_unstable();
        derived.dedup();
        assert_eq!(derived.len(), 64);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_is_independent_of_parent_consumption() {
        let parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        // Consume some values from parent2 before splitting.
        for _ in 0..10 {
            parent2.next_u64();
        }
        let mut c1 = parent1.split("channel");
        let mut c2 = parent2.split("channel");
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn split_labels_produce_distinct_streams() {
        let root = DetRng::new(99);
        let mut a = root.split("alpha");
        let mut b = root.split("beta");
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 4);
    }

    #[test]
    fn split_indexed_distinct() {
        let root = DetRng::new(3);
        let mut u0 = root.split_indexed("user", 0);
        let mut u1 = root.split_indexed("user", 1);
        assert_ne!(u0.next_u64(), u1.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        let hits = (0..2000).filter(|_| r.bernoulli(0.25)).count();
        let frac = hits as f64 / 2000.0;
        assert!((0.18..0.32).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean = {mean}");
    }

    #[test]
    fn poisson_mean_is_plausible() {
        let mut r = DetRng::new(17);
        let n = 20_000;
        let mean = (0..n).map(|_| r.poisson(4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean = {mean}");
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn pareto_is_at_least_scale() {
        let mut r = DetRng::new(19);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = DetRng::new(23);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[r.weighted_choice(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1]);
        // Degenerate inputs fall back to index 0.
        assert_eq!(r.weighted_choice(&[]), 0);
        assert_eq!(r.weighted_choice(&[0.0, 0.0]), 0);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = DetRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
