//! Deterministic content hashing (FNV-1a) for configs and result-store keys.
//!
//! Two consumers, two widths.  The perf gate fingerprints each benchmark's
//! `SimConfig` with the 64-bit variant — a mismatch only means "re-bless the
//! baseline", so 64 bits is plenty.  The artifact result store addresses
//! every executed grid point by content, where a silent collision would
//! serve one scenario's results as another's; it uses the 128-bit variant.
//! Both are plain FNV-1a with the standard parameters, so hashes are stable
//! across platforms, processes and releases.

/// 64-bit FNV-1a offset basis.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = FNV64_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// 128-bit FNV-1a over a byte string.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV128_OFFSET;
    for byte in bytes {
        hash ^= u128::from(*byte);
        hash = hash.wrapping_mul(FNV128_PRIME);
    }
    hash
}

/// 64-bit FNV-1a rendered as 16 lowercase hex digits.
pub fn fnv1a_64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

/// 128-bit FNV-1a rendered as 32 lowercase hex digits.
pub fn fnv1a_128_hex(bytes: &[u8]) -> String {
    format!("{:032x}", fnv1a_128(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_test_vectors() {
        // Empty input hashes to the offset basis.
        assert_eq!(fnv1a_64(b""), FNV64_OFFSET);
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET);
        // Classic vectors from the FNV reference code.
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_rendering_is_fixed_width() {
        assert_eq!(fnv1a_64_hex(b"").len(), 16);
        assert_eq!(fnv1a_128_hex(b"").len(), 32);
        assert_eq!(fnv1a_64_hex(b"a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn widths_disagree_so_collisions_are_independent() {
        let a = fnv1a_64(b"scenario");
        let b = fnv1a_128(b"scenario");
        assert_ne!(u128::from(a), b);
    }
}
