//! Order statistics and running moments.
//!
//! The paper reports 10th/25th/50th/75th/90th/95th percentiles of one-way
//! delay and of throughput averaged over 100 ms windows (Figures 12–14, 16,
//! 18, 20, Table 1).  [`percentile`] implements the linear-interpolation
//! estimator (type 7, the same convention MATLAB/NumPy use by default, which
//! is what the authors' plotting scripts would have produced), and
//! [`OnlineStats`] keeps Welford running moments for cheap averages.

use serde::{Deserialize, Serialize};

/// Linear-interpolation percentile of a sample set.
///
/// `p` is in `[0, 100]`.  Returns `None` for an empty slice.  The input does
/// not need to be sorted.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already-sorted, finite sample set (ascending order).
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience: several percentiles at once over one sort.
pub fn percentiles(samples: &[f64], ps: &[f64]) -> Vec<Option<f64>> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return ps.iter().map(|_| None).collect();
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    ps.iter()
        .map(|p| Some(percentile_of_sorted(&sorted, *p)))
        .collect()
}

/// Median of a sample set.
pub fn median(samples: &[f64]) -> Option<f64> {
    percentile(samples, 50.0)
}

/// Running mean / variance / min / max via Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// New empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_of_small_sets() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let v: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        // rank = 0.95 * 4 = 3.8 -> 4 + 0.8*(5-4) = 4.8
        let p95 = percentile(&v, 95.0).unwrap();
        assert!((p95 - 4.8).abs() < 1e-12);
    }

    #[test]
    fn percentile_ignores_non_finite() {
        let v = [1.0, f64::NAN, 3.0, f64::INFINITY];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
    }

    #[test]
    fn multi_percentiles_match_single() {
        let v: Vec<f64> = (0..100).map(|x| (x * 37 % 100) as f64).collect();
        let ps = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0];
        let multi = percentiles(&v, &ps);
        for (p, got) in ps.iter().zip(multi) {
            assert_eq!(got, percentile(&v, *p));
        }
    }

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_ignores_nan() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let data: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let (left, right) = data.split_at(73);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in left {
            a.push(x);
        }
        for &x in right {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn percentile_is_within_range(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
            let got = percentile(&v, p).unwrap();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(got >= v[0] - 1e-9);
            prop_assert!(got <= v[v.len() - 1] + 1e-9);
        }

        #[test]
        fn percentile_monotone_in_p(v in proptest::collection::vec(-1e6f64..1e6, 1..100), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&v, lo).unwrap();
            let b = percentile(&v, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn online_mean_matches_naive(v in proptest::collection::vec(-1e3f64..1e3, 1..300)) {
            let mut s = OnlineStats::new();
            for &x in &v {
                s.push(x);
            }
            let naive = v.iter().sum::<f64>() / v.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6);
        }
    }
}
