//! Empirical cumulative distribution functions.
//!
//! Figures 7, 11 and 12 of the paper are CDF plots (active users per window,
//! per-user physical data rate, average throughput and 95th-percentile delay
//! across locations).  [`Cdf`] builds the empirical CDF from raw samples and
//! can evaluate it, invert it, and emit the `(x, F(x))` point series the
//! benchmark harness prints.

use crate::percentile::percentile_of_sorted;
use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from raw samples (non-finite values are dropped).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Cdf { sorted }
    }

    /// Number of samples in the CDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF contains no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|s| *s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the value at quantile `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(percentile_of_sorted(&self.sorted, q * 100.0))
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// The full `(value, cumulative fraction)` staircase, one point per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// A down-sampled point series with at most `max_points` points, suitable
    /// for printing a plot-ready table.
    pub fn sampled_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let pts = self.points();
        if pts.len() <= max_points || max_points == 0 {
            return pts;
        }
        let step = pts.len() as f64 / max_points as f64;
        let mut out = Vec::with_capacity(max_points);
        for i in 0..max_points {
            let idx = ((i as f64 + 1.0) * step).ceil() as usize - 1;
            out.push(pts[idx.min(pts.len() - 1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_on_known_samples() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.5), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let cdf = Cdf::from_samples(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.mean(), 0.0);
    }

    #[test]
    fn quantile_inverts_eval_for_medians() {
        let cdf = Cdf::from_samples((1..=100).map(|x| x as f64));
        let q50 = cdf.quantile(0.5).unwrap();
        assert!((q50 - 50.5).abs() < 1e-9);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(100.0));
    }

    #[test]
    fn points_staircase_is_monotone() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn sampled_points_respects_limit_and_endpoint() {
        let cdf = Cdf::from_samples((0..1000).map(|x| x as f64));
        let pts = cdf.sampled_points(50);
        assert_eq!(pts.len(), 50);
        assert_eq!(pts.last().unwrap().1, 1.0);
        let all = cdf.sampled_points(0);
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 2.0, f64::NEG_INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    proptest! {
        #[test]
        fn eval_is_monotone(v in proptest::collection::vec(-1e6f64..1e6, 1..200), a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let cdf = Cdf::from_samples(v);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
        }

        #[test]
        fn eval_bounds(v in proptest::collection::vec(-1e6f64..1e6, 1..200), x in -2e6f64..2e6) {
            let cdf = Cdf::from_samples(v);
            let f = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
