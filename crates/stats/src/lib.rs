//! Measurement, statistics and deterministic-randomness utilities shared by
//! every crate in the PBE-CC reproduction.
//!
//! The crate deliberately has no knowledge of cellular or transport concepts;
//! it provides the numeric plumbing the rest of the workspace builds on:
//!
//! * [`time`] — the integer microsecond time base used by the simulator and
//!   the cellular MAC (1 ms subframes are expressed in this base).
//! * [`rng`] — a splittable, deterministic random-number generator so that a
//!   single `u64` seed reproduces an entire experiment bit-for-bit.
//! * [`hash`] — stable FNV-1a content hashing (64- and 128-bit) for perf-gate
//!   config fingerprints and the artifact result store's point keys.
//! * [`pool`] — the in-tree worker pool: one-shot [`run_indexed`] for the
//!   sweep harness and the persistent [`WorkerPool`] the sharded tick engine
//!   dispatches shard batches on every subframe.
//! * [`percentile`](mod@percentile), [`cdf`], [`window`], [`jain`],
//!   [`summary`] — the
//!   order-statistics, empirical-CDF, time-window aggregation, fairness-index
//!   and per-flow summary machinery the paper's evaluation plots are built
//!   from (throughput averaged over 100 ms windows, 95th-percentile one-way
//!   delay, Jain's fairness index over allocated PRBs, …).

pub mod cdf;
pub mod fxhash;
pub mod hash;
pub mod jain;
pub mod percentile;
pub mod pool;
pub mod rng;
pub mod summary;
pub mod time;
pub mod window;

pub use cdf::Cdf;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hash::{fnv1a_128, fnv1a_128_hex, fnv1a_64, fnv1a_64_hex};
pub use jain::jain_index;
pub use percentile::{percentile, OnlineStats};
pub use pool::{run_indexed, WorkerPool};
pub use rng::{derive_seed, DetRng};
pub use summary::FlowSummary;
pub use time::{Duration, Instant, MICROS_PER_MS, MICROS_PER_SEC};
pub use window::WindowAggregator;
