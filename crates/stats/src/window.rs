//! Time-window aggregation of throughput and delay samples.
//!
//! The paper reports "all throughput and delay order statistics, measured
//! across 100-millisecond time windows" (§1, §6).  [`WindowAggregator`]
//! buckets byte deliveries and delay samples into fixed windows and produces
//! per-window throughput (Mbit/s) and delay series that feed the percentile
//! and CDF machinery.

use crate::time::{Duration, Instant, MICROS_PER_SEC};
use serde::{Deserialize, Serialize};

/// One aggregated window of flow activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Start of the window.
    pub start: Instant,
    /// Bytes delivered during the window.
    pub bytes: u64,
    /// Throughput over the window in Mbit/s.
    pub throughput_mbps: f64,
    /// Mean one-way delay of packets delivered in the window, in milliseconds
    /// (`None` if no delay samples fell in the window).
    pub mean_delay_ms: Option<f64>,
    /// Number of delay samples in the window.
    pub delay_samples: usize,
}

/// Buckets `(time, bytes)` deliveries and `(time, delay)` samples into fixed
/// windows (100 ms by default, as in the paper).
#[derive(Debug, Clone)]
pub struct WindowAggregator {
    window: Duration,
    bytes: Vec<u64>,
    delay_sum_ms: Vec<f64>,
    delay_count: Vec<usize>,
    last_time: Instant,
}

impl WindowAggregator {
    /// Create an aggregator with the given window length.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        WindowAggregator {
            window,
            bytes: Vec::new(),
            delay_sum_ms: Vec::new(),
            delay_count: Vec::new(),
            last_time: Instant::ZERO,
        }
    }

    /// The paper's default 100 ms window.
    pub fn paper_default() -> Self {
        WindowAggregator::new(Duration::from_millis(100))
    }

    fn index(&self, t: Instant) -> usize {
        (t.as_micros() / self.window.as_micros()) as usize
    }

    fn ensure(&mut self, idx: usize) {
        if self.bytes.len() <= idx {
            self.bytes.resize(idx + 1, 0);
            self.delay_sum_ms.resize(idx + 1, 0.0);
            self.delay_count.resize(idx + 1, 0);
        }
    }

    /// Record `bytes` delivered at time `t`.
    pub fn record_delivery(&mut self, t: Instant, bytes: u64) {
        let idx = self.index(t);
        self.ensure(idx);
        self.bytes[idx] += bytes;
        self.last_time = self.last_time.max(t);
    }

    /// Record a one-way delay sample (in milliseconds) observed at time `t`.
    pub fn record_delay(&mut self, t: Instant, delay_ms: f64) {
        if !delay_ms.is_finite() {
            return;
        }
        let idx = self.index(t);
        self.ensure(idx);
        self.delay_sum_ms[idx] += delay_ms;
        self.delay_count[idx] += 1;
        self.last_time = self.last_time.max(t);
    }

    /// Number of windows touched so far.
    pub fn window_count(&self) -> usize {
        self.bytes.len()
    }

    /// The aggregated window series.
    pub fn windows(&self) -> Vec<Window> {
        let window_secs = self.window.as_secs_f64();
        (0..self.bytes.len())
            .map(|i| {
                let start = Instant::from_micros(i as u64 * self.window.as_micros());
                let bytes = self.bytes[i];
                let throughput_mbps = bytes as f64 * 8.0 / window_secs / 1e6;
                let mean_delay_ms = if self.delay_count[i] > 0 {
                    Some(self.delay_sum_ms[i] / self.delay_count[i] as f64)
                } else {
                    None
                };
                Window {
                    start,
                    bytes,
                    throughput_mbps,
                    mean_delay_ms,
                    delay_samples: self.delay_count[i],
                }
            })
            .collect()
    }

    /// Per-window throughput in Mbit/s (includes empty windows as zero).
    pub fn throughput_series_mbps(&self) -> Vec<f64> {
        self.windows().iter().map(|w| w.throughput_mbps).collect()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Average throughput in Mbit/s over the span from time zero to the last
    /// recorded event (0 if nothing was recorded).
    pub fn average_throughput_mbps(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 || self.last_time.as_micros() == 0 {
            return 0.0;
        }
        total as f64 * 8.0 / (self.last_time.as_micros() as f64 / MICROS_PER_SEC as f64) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        WindowAggregator::new(Duration::ZERO);
    }

    #[test]
    fn deliveries_fall_into_correct_windows() {
        let mut agg = WindowAggregator::paper_default();
        agg.record_delivery(Instant::from_millis(10), 1000);
        agg.record_delivery(Instant::from_millis(99), 500);
        agg.record_delivery(Instant::from_millis(100), 2000);
        agg.record_delivery(Instant::from_millis(250), 3000);
        let windows = agg.windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].bytes, 1500);
        assert_eq!(windows[1].bytes, 2000);
        assert_eq!(windows[2].bytes, 3000);
        // 1500 bytes in 0.1 s = 0.12 Mbit/s
        assert!((windows[0].throughput_mbps - 0.12).abs() < 1e-9);
    }

    #[test]
    fn delay_means_per_window() {
        let mut agg = WindowAggregator::paper_default();
        agg.record_delay(Instant::from_millis(5), 40.0);
        agg.record_delay(Instant::from_millis(50), 60.0);
        agg.record_delay(Instant::from_millis(150), 30.0);
        agg.record_delay(Instant::from_millis(150), f64::NAN);
        let windows = agg.windows();
        assert_eq!(windows[0].mean_delay_ms, Some(50.0));
        assert_eq!(windows[0].delay_samples, 2);
        assert_eq!(windows[1].mean_delay_ms, Some(30.0));
    }

    #[test]
    fn empty_windows_are_zero() {
        let mut agg = WindowAggregator::paper_default();
        agg.record_delivery(Instant::from_millis(350), 1000);
        let series = agg.throughput_series_mbps();
        assert_eq!(series.len(), 4);
        assert_eq!(series[0], 0.0);
        assert!(series[3] > 0.0);
    }

    #[test]
    fn average_throughput_uses_last_event_time() {
        let mut agg = WindowAggregator::paper_default();
        // 1_250_000 bytes over 1 second = 10 Mbit/s.
        agg.record_delivery(Instant::from_millis(500), 625_000);
        agg.record_delivery(Instant::from_secs(1), 625_000);
        assert!((agg.average_throughput_mbps() - 10.0).abs() < 1e-9);
        let empty = WindowAggregator::paper_default();
        assert_eq!(empty.average_throughput_mbps(), 0.0);
    }
}
