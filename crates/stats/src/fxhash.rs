//! A fast, non-cryptographic hasher for integer-keyed hot-path maps.
//!
//! The simulator's per-subframe loops key maps by packet ids (`u64`) and
//! small typed ids (`UeId`, `CellId`).  The standard library's SipHash is
//! DoS-resistant but costs tens of nanoseconds per lookup — measurable when
//! the tick path performs hundreds of lookups per simulated millisecond.
//! [`FxHasher`] is the multiply-rotate hash used by rustc (FxHash),
//! implemented locally so the workspace stays dependency-free.
//!
//! Determinism note: the simulator never depends on map *iteration* order
//! (per-subframe loops run over sorted id slabs, and serialisation sorts map
//! keys), so swapping the hasher cannot change any observable output — it
//! only changes bucket placement.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-FxHash multiplier (64-bit golden-ratio-derived constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; fast on short integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for integer-keyed hot-path maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_and_finds_keys() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7)), Some(&(i as u32)));
            assert_eq!(m.get(&(i * 7 + 1)), None);
        }
        for i in 0..500u64 {
            assert_eq!(m.remove(&(i * 7)), Some(i as u32));
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn hashes_differ_across_values() {
        use std::hash::Hash;
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            v.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(1), h(2));
        assert_ne!(h(0), h(u64::MAX));
    }
}
