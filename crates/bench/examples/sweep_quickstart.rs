//! Minimal sweep-harness walkthrough: three stationary locations × two
//! schemes × two seed replicas, executed on all cores, printed with the
//! shared table writer.
//!
//! ```text
//! cargo run --release -p pbe-bench --example sweep_quickstart
//! ```

use pbe_bench::scenarios::ScenarioLibrary;
use pbe_bench::sweep::{ScenarioSpec, SweepGrid, SweepRunner};
use pbe_bench::TextTable;
use pbe_netsim::SchemeChoice;
use pbe_stats::time::Duration;

fn main() {
    let duration = Duration::from_secs(2);
    let scenarios = ScenarioLibrary::subset(3)
        .iter()
        .map(|loc| ScenarioSpec::from_location(format!("location {}", loc.index), loc, duration))
        .collect();
    let grid = SweepGrid::over(scenarios)
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("CUBIC")])
        .seed_replicas(2);

    let report = SweepRunner::new().run(grid.expand());

    let mut table = TextTable::new(&["scenario", "scheme", "seed", "tput (Mbit/s)", "p95 delay"]);
    for o in &report.outcomes {
        table.row(&[
            o.spec.label.clone(),
            o.spec.scheme.to_string(),
            format!("{:#x}", o.spec.seed),
            format!("{:.1}", o.result.flows[0].summary.avg_throughput_mbps),
            format!("{:.0}", o.result.flows[0].summary.p95_delay_ms),
        ]);
    }
    println!("{}", table.render());
    println!("{}", report.stats_line());
}
