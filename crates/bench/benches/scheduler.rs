//! Criterion bench: the eNodeB equal-share scheduler and one full cell
//! subframe tick under background load.

use criterion::{criterion_group, criterion_main, Criterion};
use pbe_cellular::cell::{Cell, QueuedPacket};
use pbe_cellular::channel::ChannelModel;
use pbe_cellular::config::{CellConfig, CellId, Rnti, UeId};
use pbe_cellular::scheduler::{Demand, DemandClass, EqualShareScheduler};
use pbe_cellular::traffic::{BackgroundTraffic, CellLoadProfile};
use pbe_stats::time::Instant;
use pbe_stats::DetRng;
use std::collections::HashMap;
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("equal_share_scheduler");
    for users in [2usize, 8, 28] {
        let demands: Vec<Demand> = (0..users as u32)
            .map(|u| Demand {
                ue: UeId(u),
                rnti: Rnti(0x100 + u as u16),
                prbs: 40,
                class: DemandClass::Data,
            })
            .collect();
        group.bench_function(format!("{users}_users"), |b| {
            let mut sched = EqualShareScheduler::new();
            b.iter(|| black_box(sched.schedule(100, black_box(&demands))))
        });
    }
    group.finish();
}

fn bench_cell_tick(c: &mut Criterion) {
    c.bench_function("cell_tick_busy_backlogged", |b| {
        let mut cell = Cell::new(
            CellConfig::primary_20mhz(CellId(0)),
            BackgroundTraffic::new(CellLoadProfile::busy(), DetRng::new(1)),
            DetRng::new(2),
        );
        let ue = UeId(1);
        cell.attach(ue, Rnti(0x100));
        for i in 0..200_000u64 {
            cell.enqueue(
                ue,
                QueuedPacket {
                    id: i,
                    bytes: 1500,
                    enqueued_at: Instant::ZERO,
                },
            );
        }
        let state = ChannelModel::stationary(-85.0, 2, DetRng::new(3))
            .deterministic()
            .sample(Instant::ZERO);
        let mut channels = HashMap::new();
        channels.insert(ue, state);
        let mut sf = 0u64;
        b.iter(|| {
            sf += 1;
            black_box(cell.tick(sf, black_box(&channels)))
        })
    });
}

criterion_group!(benches, bench_scheduler, bench_cell_tick);
criterion_main!(benches);
