//! Criterion bench: the per-subframe cost of the PBE-CC measurement path —
//! monitor ingest, capacity estimation (Eqns. 1–4) and the Eqn. 5 rate
//! translation.  The paper argues these fit comfortably in a 1 ms budget.

use criterion::{criterion_group, criterion_main, Criterion};
use pbe_cellular::config::{CellId, Rnti};
use pbe_cellular::dci::{DciFormat, DciMessage};
use pbe_cellular::mcs::McsIndex;
use pbe_core::capacity::CapacityEstimator;
use pbe_core::translate::RateTranslator;
use pbe_pdcch::fusion::FusedSubframe;
use pbe_pdcch::monitor::{CellStatusMonitor, MonitorConfig};
use std::collections::HashMap;
use std::hint::black_box;

fn dci(rnti: u16, prbs: u16, subframe: u64) -> DciMessage {
    DciMessage {
        cell: CellId(0),
        subframe,
        rnti: Rnti(rnti),
        format: DciFormat::Format1,
        first_prb: 0,
        num_prbs: prbs,
        mcs: McsIndex(18),
        spatial_streams: 2,
        new_data_indicator: true,
        harq_process: 0,
        tbs_bits: u32::from(prbs) * 1100,
    }
}

fn fused(subframe: u64, n_users: u16) -> FusedSubframe {
    let msgs: Vec<DciMessage> = (0..n_users)
        .map(|u| dci(0x100 + u, 100 / n_users.max(1), subframe))
        .collect();
    let mut per_cell = HashMap::new();
    per_cell.insert(CellId(0), msgs);
    FusedSubframe { subframe, per_cell }
}

fn bench_monitor_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_ingest");
    for users in [1u16, 8, 28] {
        group.bench_function(format!("{users}_users"), |b| {
            let mut monitor =
                CellStatusMonitor::new(MonitorConfig::new(Rnti(0x100), vec![(CellId(0), 100)]));
            let mut sf = 0u64;
            b.iter(|| {
                monitor.ingest(black_box(&fused(sf, users)));
                sf += 1;
                black_box(monitor.snapshot(CellId(0)))
            });
        });
    }
    group.finish();
}

fn bench_capacity_equations(c: &mut Criterion) {
    let mut monitor =
        CellStatusMonitor::new(MonitorConfig::new(Rnti(0x100), vec![(CellId(0), 100)]));
    for sf in 0..40u64 {
        monitor.ingest(&fused(sf, 8));
    }
    let snapshots = monitor.snapshots();
    let estimator = CapacityEstimator::new();
    c.bench_function("capacity_estimate_eqn_1_to_4", |b| {
        b.iter(|| black_box(estimator.estimate(black_box(&snapshots))))
    });
}

fn bench_rate_translation(c: &mut Criterion) {
    let mut table = RateTranslator::default();
    let exact = RateTranslator::default();
    c.bench_function("eqn5_translation_lookup_table", |b| {
        let mut cp = 10_000.0;
        b.iter(|| {
            cp = if cp > 150_000.0 { 10_000.0 } else { cp + 500.0 };
            black_box(table.translate(black_box(cp), 2e-6))
        })
    });
    c.bench_function("eqn5_translation_exact_bisection", |b| {
        b.iter(|| black_box(exact.translate_exact(black_box(90_000.0), 2e-6)))
    });
}

criterion_group!(
    benches,
    bench_monitor_ingest,
    bench_capacity_equations,
    bench_rate_translation
);
criterion_main!(benches);
