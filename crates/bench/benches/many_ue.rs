//! Criterion bench: simulator hot-loop cost with many UEs on one network.
//!
//! The city-scale scenario family schedules dozens of devices per subframe,
//! so the per-subframe setup cost (channel sampling, report assembly, the
//! per-UE bookkeeping in `CellularNetwork::tick` and `Simulation::run`)
//! dominates.  This bench pins that cost: a fixed grid of bulk flows over
//! one simulated second, at three fleet sizes.  `PR 4` used it to measure
//! the preallocation / clone-removal pass (numbers in
//! `docs/ARCHITECTURE.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimConfig, Simulation};
use pbe_stats::time::Duration;
use std::hint::black_box;

fn many_ue_config(ues: u32, duration: Duration) -> SimConfig {
    let cells = vec![CellId(0), CellId(1), CellId(2)];
    SimConfig {
        cellular: CellularConfig::default(),
        load: CellLoadProfile::none(),
        seed: 42,
        duration,
        ues: (1..=ues)
            .map(|i| {
                (
                    UeConfig::new(UeId(i), cells.clone(), 1, -85.0 - f64::from(i % 7)),
                    MobilityTrace::stationary(-85.0 - f64::from(i % 7)),
                )
            })
            .collect(),
        flows: (1..=ues)
            .map(|i| FlowConfig::bulk(i, UeId(i), SchemeChoice::named("CUBIC"), duration))
            .collect(),
        trajectories: Vec::new(),
        shards: None,
        backhaul: None,
        faults: None,
    }
}

fn bench_many_ue_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("many_ue_simulated_second");
    group.sample_size(10);
    for ues in [4u32, 16, 48] {
        group.bench_function(format!("{ues}_ues"), |b| {
            b.iter(|| {
                let cfg = many_ue_config(ues, Duration::from_secs(1));
                black_box(Simulation::new(cfg).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_many_ue_second);
criterion_main!(benches);
