//! Criterion bench: wall-clock cost of a short end-to-end simulation (one
//! simulated second), for PBE-CC and BBR.  This is the unit every figure
//! binary repeats many times.

use criterion::{criterion_group, criterion_main, Criterion};
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{SchemeChoice, SimConfig, Simulation};
use pbe_stats::time::Duration;
use std::hint::black_box;

fn bench_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_second");
    group.sample_size(10);
    for (scheme, label) in [
        (SchemeChoice::Pbe, "pbe_idle_cell"),
        (SchemeChoice::Baseline(SchemeName::Bbr), "bbr_idle_cell"),
        (SchemeChoice::Pbe, "pbe_busy_cell"),
    ] {
        let load = if label.ends_with("busy_cell") {
            CellLoadProfile::busy()
        } else {
            CellLoadProfile::none()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::single_flow(scheme.clone(), Duration::from_secs(1), load, 99);
                black_box(Simulation::new(cfg).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_second);
criterion_main!(benches);
