//! Criterion bench: per-ACK processing cost of every congestion-control
//! scheme, including the PBE-CC sender.

use criterion::{criterion_group, criterion_main, Criterion};
use pbe_cc_algorithms::api::{AckInfo, CongestionControl, PbeFeedback, SchemeName, MSS_BYTES};
use pbe_cc_algorithms::baseline_by_name;
use pbe_core::sender::PbeSender;
use pbe_stats::time::{Duration, Instant};
use std::hint::black_box;

fn ack(i: u64, with_pbe: bool) -> AckInfo {
    AckInfo {
        now: Instant::from_millis(i),
        packet_id: i,
        bytes_acked: MSS_BYTES,
        rtt: Duration::from_millis(40 + (i % 7)),
        one_way_delay_ms: 20.0 + (i % 5) as f64,
        delivery_rate_bps: 30e6 + (i % 11) as f64 * 1e5,
        inflight_bytes: 150_000,
        loss_detected: false,
        ecn_ce: false,
        pbe: with_pbe.then(|| PbeFeedback {
            capacity_interval_us: PbeFeedback::interval_from_rate(45e6),
            internet_bottleneck: false,
            fair_share_rate_bps: 45e6,
        }),
    }
}

fn bench_on_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_ack");
    for name in SchemeName::BASELINES {
        group.bench_function(name.as_str(), |b| {
            let mut cc = baseline_by_name(*name, Duration::from_millis(40));
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                cc.on_ack(black_box(&ack(i, false)));
                black_box(cc.pacing_rate_bps())
            })
        });
    }
    group.bench_function("PBE", |b| {
        let mut cc = PbeSender::with_defaults(Duration::from_millis(40));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cc.on_ack(black_box(&ack(i, true)));
            black_box(cc.pacing_rate_bps())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_on_ack);
criterion_main!(benches);
