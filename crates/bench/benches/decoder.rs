//! Criterion bench: blind decoding of one subframe's control channel
//! (the per-subframe work the paper's USRP + PC platform performs).

use criterion::{criterion_group, criterion_main, Criterion};
use pbe_cellular::config::{CellId, Rnti};
use pbe_cellular::dci::{DciFormat, DciMessage};
use pbe_cellular::mcs::McsIndex;
use pbe_pdcch::decoder::{ControlChannelDecoder, DecoderConfig};
use pbe_stats::DetRng;
use std::hint::black_box;

fn messages(n: u16, subframe: u64) -> Vec<DciMessage> {
    (0..n)
        .map(|u| DciMessage {
            cell: CellId(0),
            subframe,
            rnti: Rnti(0x100 + u),
            format: if u % 2 == 0 {
                DciFormat::Format1
            } else {
                DciFormat::Format2
            },
            first_prb: u * 4,
            num_prbs: 4,
            mcs: McsIndex(12),
            spatial_streams: 1 + (u % 2) as u8,
            new_data_indicator: true,
            harq_process: (u % 8) as u8,
            tbs_bits: 4_000,
        })
        .collect()
}

fn bench_blind_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("blind_decode_subframe");
    for n in [1u16, 4, 16] {
        group.bench_function(format!("{n}_messages"), |b| {
            let mut dec =
                ControlChannelDecoder::new(CellId(0), DecoderConfig::default(), DetRng::new(5));
            let mut sf = 0u64;
            b.iter(|| {
                sf += 1;
                black_box(dec.decode_subframe(sf, black_box(&messages(n, sf))))
            })
        });
    }
    group.finish();
}

fn bench_dci_roundtrip(c: &mut Criterion) {
    let msg = messages(1, 7)[0];
    c.bench_function("dci_encode_blind_decode", |b| {
        b.iter(|| {
            let enc = black_box(&msg).encode(4, 0);
            black_box(enc.blind_decode())
        })
    });
}

criterion_group!(benches, bench_blind_decoding, bench_dci_roundtrip);
criterion_main!(benches);
