//! The artifact pipeline: one command that reproduces every figure, with a
//! content-addressed result store so re-runs only execute what changed.
//!
//! ```text
//! pbe-bench artifact --all --store results/ --out figures/
//! pbe-bench artifact --figure fig16_17_mobility --seconds 4 --store results/
//! pbe-bench artifact --list
//! ```
//!
//! The pipeline is three orthogonal pieces:
//!
//! * [`mod@registry`] — every sweep-backed figure as a [`FigureSpec`]: a grid
//!   builder (`fn(seconds) -> SweepGrid`) plus a renderer
//!   (`fn(&SweepReport, seconds, &ReportWriter)`).  The `fig*` binaries call
//!   the same two functions, so binary and pipeline output are identical.
//! * [`store`] — the on-disk [`ResultStore`]: one JSON blob per executed
//!   grid point, addressed by the spec's
//!   [content key](crate::sweep::ScenarioSpec::content_key), joined by an
//!   append-only `manifest.jsonl`.
//! * [`exec`] — [`run_cached`]: expand the grid, serve every point whose key
//!   is present, execute and persist the rest.
//!
//! Because the key is a canonical content hash of the expanded spec, the
//! cache is invalidated by *meaning*, not by text: editing a figure's grid
//! (different seed, duration, load profile…) changes the keys and exactly
//! those points re-run, while reordering fields or spelling out serde
//! defaults changes nothing.  Simulation counts go to stderr; stdout stays
//! byte-identical run to run, which is what the cache-equivalence tests and
//! the CI smoke job `cmp` against.

pub mod exec;
pub mod figures;
pub mod registry;
pub mod store;

pub use exec::{run_cached, run_cached_with, CachedRun, ExecPolicy};
pub use registry::{find, registry, FigureSpec};
pub use store::{FailureKind, ManifestEntry, PointFailure, ResultStore, StoreIssue, StoredPoint};

use crate::sweep::{OutputFormat, ReportWriter};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Usage string of the `artifact` subcommand.
pub const USAGE: &str = "usage: pbe-bench artifact (--all | --figure NAME)... [--list] \
[--store DIR] [--out DIR] [--seconds N] [--workers N] [--serial] [--format text|csv|json] \
[--deadline SECS] [--retries N]\n\
       pbe-bench artifact verify --store DIR [--repair] [--seconds N] [--workers N]";

/// Parsed command line of `pbe-bench artifact`.
#[derive(Debug, Clone)]
pub struct ArtifactArgs {
    /// Run every registered figure.
    pub all: bool,
    /// Explicit figure names (used when `all` is false).
    pub figures: Vec<String>,
    /// Print the registry and exit.
    pub list: bool,
    /// Result-store directory (no caching when absent).
    pub store: Option<PathBuf>,
    /// Report output directory (stdout when absent).
    pub out: Option<PathBuf>,
    /// Override every figure's per-scenario duration.
    pub seconds: Option<u64>,
    /// Worker threads; 0 means all available cores.
    pub workers: usize,
    /// Table output format (CSV by default — artifact output is plot input).
    pub format: OutputFormat,
    /// Wall-clock deadline per scenario attempt, in seconds (unbounded when
    /// absent).
    pub deadline: Option<f64>,
    /// Extra execution attempts after a scenario fails.
    pub retries: u32,
    /// `verify` subcommand: check every stored blob against its manifest
    /// checksum instead of running figures.
    pub verify: bool,
    /// With `verify`: drop corrupted points and re-execute exactly them.
    pub repair: bool,
}

impl ArtifactArgs {
    /// Parse the arguments following `pbe-bench artifact`.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut parsed = ArtifactArgs {
            all: false,
            figures: Vec::new(),
            list: false,
            store: None,
            out: None,
            seconds: None,
            workers: 0,
            format: OutputFormat::Csv,
            deadline: None,
            retries: 0,
            verify: false,
            repair: false,
        };
        let mut it = args.iter();
        if args.first().map(String::as_str) == Some("verify") {
            parsed.verify = true;
            it.next();
        }
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--all" => parsed.all = true,
                "--list" => parsed.list = true,
                "--figure" => parsed.figures.push(value_of("--figure")?),
                "--store" => parsed.store = Some(PathBuf::from(value_of("--store")?)),
                "--out" | "-o" => parsed.out = Some(PathBuf::from(value_of("--out")?)),
                "--seconds" => {
                    parsed.seconds = Some(
                        value_of("--seconds")?
                            .parse()
                            .map_err(|_| "--seconds expects a positive integer".to_string())?,
                    )
                }
                "--workers" | "-w" => {
                    parsed.workers = value_of("--workers")?
                        .parse()
                        .map_err(|_| "--workers expects a count".to_string())?
                }
                "--serial" => parsed.workers = 1,
                "--repair" => parsed.repair = true,
                "--deadline" => {
                    parsed.deadline = Some(
                        value_of("--deadline")?
                            .parse()
                            .ok()
                            .filter(|s: &f64| *s > 0.0)
                            .ok_or_else(|| "--deadline expects seconds > 0".to_string())?,
                    )
                }
                "--retries" => {
                    parsed.retries = value_of("--retries")?
                        .parse()
                        .map_err(|_| "--retries expects a count".to_string())?
                }
                "--format" | "-f" => {
                    parsed.format = match value_of("--format")?.as_str() {
                        "text" => OutputFormat::Text,
                        "csv" => OutputFormat::Csv,
                        "json" => OutputFormat::Json,
                        other => {
                            return Err(format!("--format takes text, csv or json, not {other:?}"))
                        }
                    }
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if parsed.verify {
            if parsed.store.is_none() {
                return Err("artifact verify needs --store DIR".into());
            }
        } else if parsed.repair {
            return Err("--repair only applies to `artifact verify`".into());
        } else if !parsed.list && !parsed.all && parsed.figures.is_empty() {
            return Err("pick figures with --all or --figure NAME (or --list to see them)".into());
        }
        Ok(parsed)
    }

    /// The figures this invocation runs, in registry order.
    pub fn selected(&self) -> Result<Vec<FigureSpec>, String> {
        if self.all {
            return Ok(registry());
        }
        let mut selected = Vec::new();
        for name in &self.figures {
            match find(name) {
                Some(fig) => {
                    if !selected.iter().any(|f: &FigureSpec| f.name == fig.name) {
                        selected.push(fig);
                    }
                }
                None => {
                    let known: Vec<&str> = registry().iter().map(|f| f.name).collect();
                    return Err(format!(
                        "unknown figure `{name}` (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
        Ok(selected)
    }
}

/// Aggregate accounting of one `pbe-bench artifact` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactSummary {
    /// Figures rendered.
    pub figures: usize,
    /// Grid points that simulated in this invocation.
    pub executed: usize,
    /// Grid points served from the result store.
    pub cached: usize,
    /// Grid points that failed (panic/deadline) or were skipped as
    /// quarantined; each is reported on stderr as a structured failure.
    pub failed: usize,
}

/// Run the selected figures: expand, execute-or-serve, render.
///
/// Returns the invocation's cache accounting; the same numbers go to stderr
/// (stdout carries only report data, so two invocations with a warm store
/// stay byte-identical).
pub fn run_artifact(args: &ArtifactArgs) -> io::Result<ArtifactSummary> {
    if args.verify {
        return verify_store(args);
    }
    let figures = args
        .selected()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    if args.list {
        for fig in registry() {
            println!(
                "{:<24} {} (default {} s)",
                fig.name, fig.title, fig.default_seconds
            );
        }
        return Ok(ArtifactSummary {
            figures: 0,
            executed: 0,
            cached: 0,
            failed: 0,
        });
    }

    let mut store = match &args.store {
        Some(dir) => Some(ResultStore::open(dir)?),
        None => None,
    };
    let policy = exec_policy(args);
    let writer = ReportWriter::new(args.format, args.out.clone())?;
    let mut summary = ArtifactSummary {
        figures: 0,
        executed: 0,
        cached: 0,
        failed: 0,
    };
    for fig in &figures {
        let seconds = args.seconds.unwrap_or(fig.default_seconds);
        let specs = (fig.grid)(seconds).expand();
        let run = run_cached_with(fig.name, specs, store.as_mut(), args.workers, &policy)?;
        eprintln!(
            "artifact: {}: executed {} simulation(s), {} cache hit(s)",
            fig.name, run.executed, run.cached
        );
        report_failures(&run.failures);
        if writer.wants_json() {
            writer.sweep_json(fig.name, &run.report)?;
        } else {
            (fig.render)(&run.report, seconds, &writer)?;
        }
        summary.figures += 1;
        summary.executed += run.executed;
        summary.cached += run.cached;
        summary.failed += run.failures.len();
    }
    eprintln!(
        "artifact: executed {} simulation(s), {} cache hit(s), {} failure(s) across {} figure(s)",
        summary.executed, summary.cached, summary.failed, summary.figures
    );
    Ok(summary)
}

/// Translate the command line into the executor's containment policy.
fn exec_policy(args: &ArtifactArgs) -> ExecPolicy {
    ExecPolicy {
        deadline: args.deadline.map(Duration::from_secs_f64),
        retries: args.retries,
        ..ExecPolicy::default()
    }
}

/// Print each point failure as one structured stderr line.
fn report_failures(failures: &[PointFailure]) {
    for f in failures {
        eprintln!(
            "artifact: FAILED {} [{}] scheme={} seed={} after {} attempt(s): {}: {}",
            f.label, f.key, f.scheme, f.seed, f.attempts, f.kind, f.message
        );
    }
}

/// `pbe-bench artifact verify [--repair]`: check every stored blob against
/// its manifest checksum.
///
/// Without `--repair` this is a health check: corrupted or truncated blobs
/// are listed on stderr and the invocation fails, so CI can gate on store
/// integrity.  With `--repair` each bad key is dropped and **exactly those
/// keys** re-execute, by expanding the owning figure's grid and filtering it
/// to the bad set — clean points are never touched (`executed` counts only
/// the repairs).  Keys whose figure or spec no longer exists in the current
/// grids are reported as stale and dropped without re-execution.
fn verify_store(args: &ArtifactArgs) -> io::Result<ArtifactSummary> {
    let dir = args.store.as_ref().expect("parse() requires --store");
    let mut store = ResultStore::open(dir)?;
    let issues = store.verify();
    for issue in &issues {
        eprintln!(
            "artifact verify: BAD {} (figure {}): {}",
            issue.key, issue.figure, issue.problem
        );
    }
    if issues.is_empty() {
        eprintln!(
            "artifact verify: {} point(s), every blob clean",
            store.len()
        );
        return Ok(ArtifactSummary {
            figures: 0,
            executed: 0,
            cached: 0,
            failed: 0,
        });
    }
    if !args.repair {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} corrupted point(s) in {} (re-run with --repair to re-execute exactly them)",
                issues.len(),
                dir.display()
            ),
        ));
    }

    let mut bad_by_figure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for issue in &issues {
        store.invalidate(&issue.key)?;
        bad_by_figure
            .entry(issue.figure.clone())
            .or_default()
            .insert(issue.key.clone());
    }
    let policy = exec_policy(args);
    let mut summary = ArtifactSummary {
        figures: 0,
        executed: 0,
        cached: 0,
        failed: 0,
    };
    for (figure, bad_keys) in &bad_by_figure {
        let Some(fig) = find(figure) else {
            for key in bad_keys {
                eprintln!(
                    "artifact verify: stale key {key} belongs to unknown figure `{figure}`; \
dropped without re-execution"
                );
            }
            continue;
        };
        let seconds = args.seconds.unwrap_or(fig.default_seconds);
        let specs: Vec<_> = (fig.grid)(seconds)
            .expand()
            .into_iter()
            .filter(|s| bad_keys.contains(&s.content_key()))
            .collect();
        let matched: BTreeSet<String> = specs.iter().map(|s| s.content_key()).collect();
        for key in bad_keys.difference(&matched) {
            eprintln!(
                "artifact verify: stale key {key} is not in {figure}'s current grid \
(grid changed, or it ran with different --seconds); dropped without re-execution"
            );
        }
        if specs.is_empty() {
            continue;
        }
        let run = run_cached_with(fig.name, specs, Some(&mut store), args.workers, &policy)?;
        report_failures(&run.failures);
        eprintln!(
            "artifact verify: {figure}: re-executed {} corrupted point(s)",
            run.executed
        );
        summary.figures += 1;
        summary.executed += run.executed;
        summary.cached += run.cached;
        summary.failed += run.failures.len();
    }
    eprintln!(
        "artifact verify: repaired {} point(s) across {} figure(s), {} failure(s)",
        summary.executed, summary.figures, summary.failed
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<ArtifactArgs, String> {
        let owned: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        ArtifactArgs::parse(&owned)
    }

    #[test]
    fn parses_the_full_flag_set() {
        let a = parse(&[
            "--figure",
            "fig21_fairness",
            "--figure",
            "fig16_17_mobility",
            "--store",
            "/tmp/s",
            "--out",
            "/tmp/o",
            "--seconds",
            "4",
            "--serial",
            "--format",
            "text",
        ])
        .unwrap();
        assert!(!a.all);
        assert_eq!(a.figures.len(), 2);
        assert_eq!(a.store.as_deref(), Some(std::path::Path::new("/tmp/s")));
        assert_eq!(a.seconds, Some(4));
        assert_eq!(a.workers, 1);
        assert_eq!(a.format, OutputFormat::Text);
        let names: Vec<&str> = a.selected().unwrap().iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["fig21_fairness", "fig16_17_mobility"]);
    }

    #[test]
    fn all_selects_the_whole_registry_in_order() {
        let a = parse(&["--all"]).unwrap();
        assert_eq!(a.selected().unwrap().len(), 6);
        assert_eq!(a.format, OutputFormat::Csv, "artifact defaults to CSV");
    }

    #[test]
    fn rejects_an_empty_selection_and_unknown_figures() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        let a = parse(&["--figure", "fig99_nope"]).unwrap();
        assert!(a.selected().is_err());
    }

    #[test]
    fn parses_the_verify_subcommand_and_the_containment_flags() {
        let a = parse(&[
            "verify",
            "--store",
            "/tmp/s",
            "--repair",
            "--deadline",
            "2.5",
            "--retries",
            "3",
        ])
        .unwrap();
        assert!(a.verify);
        assert!(a.repair);
        assert_eq!(a.deadline, Some(2.5));
        assert_eq!(a.retries, 3);
        // verify needs a store; --repair belongs to verify alone.
        assert!(parse(&["verify"]).is_err());
        assert!(parse(&["--all", "--store", "/tmp/s", "--repair"]).is_err());
        // A figure run accepts the containment flags without verify.
        let b = parse(&["--all", "--deadline", "10", "--retries", "1"]).unwrap();
        assert!(!b.verify);
        assert_eq!(b.deadline, Some(10.0));
        assert!(parse(&["--all", "--deadline", "0"]).is_err());
    }
}
