//! The artifact pipeline: one command that reproduces every figure, with a
//! content-addressed result store so re-runs only execute what changed.
//!
//! ```text
//! pbe-bench artifact --all --store results/ --out figures/
//! pbe-bench artifact --figure fig16_17_mobility --seconds 4 --store results/
//! pbe-bench artifact --list
//! ```
//!
//! The pipeline is three orthogonal pieces:
//!
//! * [`mod@registry`] — every sweep-backed figure as a [`FigureSpec`]: a grid
//!   builder (`fn(seconds) -> SweepGrid`) plus a renderer
//!   (`fn(&SweepReport, seconds, &ReportWriter)`).  The `fig*` binaries call
//!   the same two functions, so binary and pipeline output are identical.
//! * [`store`] — the on-disk [`ResultStore`]: one JSON blob per executed
//!   grid point, addressed by the spec's
//!   [content key](crate::sweep::ScenarioSpec::content_key), joined by an
//!   append-only `manifest.jsonl`.
//! * [`exec`] — [`run_cached`]: expand the grid, serve every point whose key
//!   is present, execute and persist the rest.
//!
//! Because the key is a canonical content hash of the expanded spec, the
//! cache is invalidated by *meaning*, not by text: editing a figure's grid
//! (different seed, duration, load profile…) changes the keys and exactly
//! those points re-run, while reordering fields or spelling out serde
//! defaults changes nothing.  Simulation counts go to stderr; stdout stays
//! byte-identical run to run, which is what the cache-equivalence tests and
//! the CI smoke job `cmp` against.

pub mod exec;
pub mod figures;
pub mod registry;
pub mod store;

pub use exec::{run_cached, CachedRun};
pub use registry::{find, registry, FigureSpec};
pub use store::{ManifestEntry, ResultStore, StoredPoint};

use crate::sweep::{OutputFormat, ReportWriter};
use std::io;
use std::path::PathBuf;

/// Usage string of the `artifact` subcommand.
pub const USAGE: &str = "usage: pbe-bench artifact (--all | --figure NAME)... [--list] \
[--store DIR] [--out DIR] [--seconds N] [--workers N] [--serial] [--format text|csv|json]";

/// Parsed command line of `pbe-bench artifact`.
#[derive(Debug, Clone)]
pub struct ArtifactArgs {
    /// Run every registered figure.
    pub all: bool,
    /// Explicit figure names (used when `all` is false).
    pub figures: Vec<String>,
    /// Print the registry and exit.
    pub list: bool,
    /// Result-store directory (no caching when absent).
    pub store: Option<PathBuf>,
    /// Report output directory (stdout when absent).
    pub out: Option<PathBuf>,
    /// Override every figure's per-scenario duration.
    pub seconds: Option<u64>,
    /// Worker threads; 0 means all available cores.
    pub workers: usize,
    /// Table output format (CSV by default — artifact output is plot input).
    pub format: OutputFormat,
}

impl ArtifactArgs {
    /// Parse the arguments following `pbe-bench artifact`.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut parsed = ArtifactArgs {
            all: false,
            figures: Vec::new(),
            list: false,
            store: None,
            out: None,
            seconds: None,
            workers: 0,
            format: OutputFormat::Csv,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--all" => parsed.all = true,
                "--list" => parsed.list = true,
                "--figure" => parsed.figures.push(value_of("--figure")?),
                "--store" => parsed.store = Some(PathBuf::from(value_of("--store")?)),
                "--out" | "-o" => parsed.out = Some(PathBuf::from(value_of("--out")?)),
                "--seconds" => {
                    parsed.seconds = Some(
                        value_of("--seconds")?
                            .parse()
                            .map_err(|_| "--seconds expects a positive integer".to_string())?,
                    )
                }
                "--workers" | "-w" => {
                    parsed.workers = value_of("--workers")?
                        .parse()
                        .map_err(|_| "--workers expects a count".to_string())?
                }
                "--serial" => parsed.workers = 1,
                "--format" | "-f" => {
                    parsed.format = match value_of("--format")?.as_str() {
                        "text" => OutputFormat::Text,
                        "csv" => OutputFormat::Csv,
                        "json" => OutputFormat::Json,
                        other => {
                            return Err(format!("--format takes text, csv or json, not {other:?}"))
                        }
                    }
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if !parsed.list && !parsed.all && parsed.figures.is_empty() {
            return Err("pick figures with --all or --figure NAME (or --list to see them)".into());
        }
        Ok(parsed)
    }

    /// The figures this invocation runs, in registry order.
    pub fn selected(&self) -> Result<Vec<FigureSpec>, String> {
        if self.all {
            return Ok(registry());
        }
        let mut selected = Vec::new();
        for name in &self.figures {
            match find(name) {
                Some(fig) => {
                    if !selected.iter().any(|f: &FigureSpec| f.name == fig.name) {
                        selected.push(fig);
                    }
                }
                None => {
                    let known: Vec<&str> = registry().iter().map(|f| f.name).collect();
                    return Err(format!(
                        "unknown figure `{name}` (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
        Ok(selected)
    }
}

/// Aggregate accounting of one `pbe-bench artifact` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactSummary {
    /// Figures rendered.
    pub figures: usize,
    /// Grid points that simulated in this invocation.
    pub executed: usize,
    /// Grid points served from the result store.
    pub cached: usize,
}

/// Run the selected figures: expand, execute-or-serve, render.
///
/// Returns the invocation's cache accounting; the same numbers go to stderr
/// (stdout carries only report data, so two invocations with a warm store
/// stay byte-identical).
pub fn run_artifact(args: &ArtifactArgs) -> io::Result<ArtifactSummary> {
    let figures = args
        .selected()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    if args.list {
        for fig in registry() {
            println!(
                "{:<24} {} (default {} s)",
                fig.name, fig.title, fig.default_seconds
            );
        }
        return Ok(ArtifactSummary {
            figures: 0,
            executed: 0,
            cached: 0,
        });
    }

    let mut store = match &args.store {
        Some(dir) => Some(ResultStore::open(dir)?),
        None => None,
    };
    let writer = ReportWriter::new(args.format, args.out.clone())?;
    let mut summary = ArtifactSummary {
        figures: 0,
        executed: 0,
        cached: 0,
    };
    for fig in &figures {
        let seconds = args.seconds.unwrap_or(fig.default_seconds);
        let specs = (fig.grid)(seconds).expand();
        let run = run_cached(fig.name, specs, store.as_mut(), args.workers)?;
        eprintln!(
            "artifact: {}: executed {} simulation(s), {} cache hit(s)",
            fig.name, run.executed, run.cached
        );
        if writer.wants_json() {
            writer.sweep_json(fig.name, &run.report)?;
        } else {
            (fig.render)(&run.report, seconds, &writer)?;
        }
        summary.figures += 1;
        summary.executed += run.executed;
        summary.cached += run.cached;
    }
    eprintln!(
        "artifact: executed {} simulation(s), {} cache hit(s) across {} figure(s)",
        summary.executed, summary.cached, summary.figures
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Result<ArtifactArgs, String> {
        let owned: Vec<String> = list.iter().map(|s| s.to_string()).collect();
        ArtifactArgs::parse(&owned)
    }

    #[test]
    fn parses_the_full_flag_set() {
        let a = parse(&[
            "--figure",
            "fig21_fairness",
            "--figure",
            "fig16_17_mobility",
            "--store",
            "/tmp/s",
            "--out",
            "/tmp/o",
            "--seconds",
            "4",
            "--serial",
            "--format",
            "text",
        ])
        .unwrap();
        assert!(!a.all);
        assert_eq!(a.figures.len(), 2);
        assert_eq!(a.store.as_deref(), Some(std::path::Path::new("/tmp/s")));
        assert_eq!(a.seconds, Some(4));
        assert_eq!(a.workers, 1);
        assert_eq!(a.format, OutputFormat::Text);
        let names: Vec<&str> = a.selected().unwrap().iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["fig21_fairness", "fig16_17_mobility"]);
    }

    #[test]
    fn all_selects_the_whole_registry_in_order() {
        let a = parse(&["--all"]).unwrap();
        assert_eq!(a.selected().unwrap().len(), 5);
        assert_eq!(a.format, OutputFormat::Csv, "artifact defaults to CSV");
    }

    #[test]
    fn rejects_an_empty_selection_and_unknown_figures() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        let a = parse(&["--figure", "fig99_nope"]).unwrap();
        assert!(a.selected().is_err());
    }
}
