//! Grid builders and table renderers for the registered figures.
//!
//! Each figure contributes two pure functions: `*_grid(seconds)` — the
//! [`SweepGrid`] the figure's evaluation expands from — and
//! `render_*(report, seconds, writer)` — the table emission that turns a
//! [`SweepReport`] into the figure's files.  The `fig*` binaries and the
//! `pbe-bench artifact` pipeline both run on these functions, so a figure's
//! CSV is identical whether its points were freshly simulated by the binary
//! or served out of the result store.  The split is the pipeline's contract:
//! grids depend only on `seconds`, renderers depend only on the report, and
//! nothing in between may touch a clock, a thread count or the store.

use crate::scenarios::paper_schemes;
use crate::sweep::{ReportWriter, ScenarioSpec, SweepGrid, SweepReport};
use crate::table::TextTable;
use crate::{Location, LocationKind};
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{
    AppModel, CellOutage, DecodeLossBurst, FaultSchedule, FlowConfig, PrbInterval, SchemeChoice,
    SimResult,
};
use pbe_stats::jain::jain_index;
use pbe_stats::percentile::median;
use pbe_stats::time::{Duration, Instant};
use std::io;

// ---------------------------------------------------------------------------
// fig13_14_stationary
// ---------------------------------------------------------------------------

fn representative_locations() -> Vec<(&'static str, Location)> {
    let mk = |index, kind, cells, busy, rssi| Location {
        index,
        kind,
        aggregated_cells: cells,
        busy,
        rssi_dbm: rssi,
    };
    vec![
        (
            "Fig13a indoor 1CC busy",
            mk(100, LocationKind::Indoor, 1, true, -95.0),
        ),
        (
            "Fig13b indoor 2CC busy",
            mk(101, LocationKind::Indoor, 2, true, -93.0),
        ),
        (
            "Fig13c indoor 3CC busy",
            mk(102, LocationKind::Indoor, 3, true, -91.0),
        ),
        (
            "Fig13d indoor 3CC idle",
            mk(103, LocationKind::Indoor, 3, false, -91.0),
        ),
        (
            "Fig14a outdoor 2CC busy",
            mk(104, LocationKind::Outdoor, 2, true, -85.0),
        ),
        (
            "Fig14b outdoor 2CC idle",
            mk(105, LocationKind::Outdoor, 2, false, -85.0),
        ),
    ]
}

/// Figures 13/14: six representative stationary locations × the paper's
/// eight schemes.
pub fn stationary_grid(seconds: u64) -> SweepGrid {
    let duration = Duration::from_secs(seconds);
    let scenarios: Vec<ScenarioSpec> = representative_locations()
        .iter()
        .map(|(label, loc)| ScenarioSpec::from_location(*label, loc, duration))
        .collect();
    SweepGrid::over(scenarios).schemes(paper_schemes().into_iter().map(|(s, _)| s))
}

/// Figures 13/14 renderer: one order-statistics table per location.
pub fn render_stationary(
    report: &SweepReport,
    _seconds: u64,
    writer: &ReportWriter,
) -> io::Result<()> {
    for (i, label) in report.labels().iter().enumerate() {
        let mut table = TextTable::new(&[
            "scheme",
            "tput p25",
            "tput p50",
            "tput p75",
            "delay p25 (ms)",
            "delay p50",
            "delay p75",
            "delay p95",
        ]);
        let mut rssi = 0.0;
        for outcome in report.by_label(label) {
            rssi = outcome.spec.ues[0].0.rssi_dbm;
            let s = &outcome.result.flows[0].summary;
            table.row(&[
                outcome.spec.scheme.to_string(),
                format!("{:.1}", s.throughput_percentiles_mbps[1]),
                format!("{:.1}", s.throughput_percentiles_mbps[2]),
                format!("{:.1}", s.throughput_percentiles_mbps[3]),
                format!("{:.0}", s.delay_percentiles_ms[1]),
                format!("{:.0}", s.delay_percentiles_ms[2]),
                format!("{:.0}", s.delay_percentiles_ms[3]),
                format!("{:.0}", s.p95_delay_ms),
            ]);
        }
        let name = format!("fig13_14_location_{i}");
        writer.table(&name, &format!("{label} (RSSI {rssi} dBm)"), &table)?;
    }
    writer.note(
        "\nPaper reference: PBE-CC and BBR have comparable (highest) throughput, with PBE-CC at",
    );
    writer.note("markedly lower delay; Verus high throughput but excessive delay; CUBIC erratic;");
    writer.note("Copa/PCC/Vivace/Sprout low throughput with low delay.");
    Ok(())
}

// ---------------------------------------------------------------------------
// fig16_17_mobility
// ---------------------------------------------------------------------------

const MOBILITY_LABEL: &str = "Fig16 mobility walk";

/// Figures 16/17: the paper's mobility walk (−85 → −105 → −85 dBm) × eight
/// schemes.
pub fn mobility_grid(seconds: u64) -> SweepGrid {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    let scenario = ScenarioSpec::new(MOBILITY_LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(16)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], 2, -85.0),
            MobilityTrace::paper_mobility_walk(),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration));
    SweepGrid::over(vec![scenario]).schemes(paper_schemes().into_iter().map(|(s, _)| s))
}

/// Figures 16/17 renderer: the all-scheme comparison plus the PBE/BBR
/// 2-second timeline.
pub fn render_mobility(
    report: &SweepReport,
    seconds: u64,
    writer: &ReportWriter,
) -> io::Result<()> {
    let mut table = TextTable::new(&[
        "scheme",
        "avg tput (Mbit/s)",
        "median delay (ms)",
        "p95 delay (ms)",
    ]);
    for outcome in report.by_label(MOBILITY_LABEL) {
        let s = &outcome.result.flows[0].summary;
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.delay_percentiles_ms[2]),
            format!("{:.0}", s.p95_delay_ms),
        ]);
    }
    writer.table("fig16_schemes", "Fig16: all schemes", &table)?;

    let pbe = &report
        .outcome(MOBILITY_LABEL, "PBE")
        .expect("PBE ran")
        .result;
    let bbr = &report
        .outcome(MOBILITY_LABEL, "BBR")
        .expect("BBR ran")
        .result;
    let mut t = TextTable::new(&["t (s)", "PBE tput", "PBE delay", "BBR tput", "BBR delay"]);
    let intervals = (seconds / 2) as usize;
    for i in 0..intervals {
        let slice = |r: &SimResult| {
            let f = &r.flows[0];
            let lo = i * 20;
            let hi = ((i + 1) * 20).min(f.throughput_timeline_mbps.len());
            let tput = median(&f.throughput_timeline_mbps[lo..hi]).unwrap_or(0.0);
            let delays: Vec<f64> = f.delay_timeline_ms[lo..hi]
                .iter()
                .flatten()
                .copied()
                .collect();
            (tput, median(&delays).unwrap_or(0.0))
        };
        let (pt, pd) = slice(pbe);
        let (bt, bd) = slice(bbr);
        t.row(&[
            format!("{}", i * 2),
            format!("{pt:.1}"),
            format!("{pd:.0}"),
            format!("{bt:.1}"),
            format!("{bd:.0}"),
        ]);
    }
    writer.table(
        "fig17_timeline",
        "Fig17: per-2-second median throughput and delay, PBE vs BBR",
        &t,
    )?;
    writer.note(
        "\nPaper reference: PBE-CC tracks the capacity drop (13-26 s) and recovery (26-30 s) with",
    );
    writer.note(
        "near-zero queueing; BBR overreacts to the drop and overshoots on recovery, inflating delay.",
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// fig18_19_competition
// ---------------------------------------------------------------------------

const COMPETITION_LABEL: &str = "Fig18 on-off competition";

/// Figures 18/19: a flow under test against an on-off 60 Mbit/s competitor,
/// × eight schemes.
pub fn competition_grid(seconds: u64) -> SweepGrid {
    let ue = UeId(1);
    let competitor = UeId(2);
    let duration = Duration::from_secs(seconds);
    let mut spec = ScenarioSpec::new(COMPETITION_LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(18)
        .ue(
            UeConfig::new(ue, vec![CellId(0)], 1, -88.0),
            MobilityTrace::stationary(-88.0),
        )
        .ue(
            UeConfig::new(competitor, vec![CellId(0)], 1, -88.0),
            MobilityTrace::stationary(-88.0),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration));
    // Competing 60 Mbit/s flow for 4 s out of every 8 s, on a second device.
    let mut id = 100;
    let mut t = 4u64;
    while t + 4 <= seconds {
        spec = spec.background_flow(
            FlowConfig {
                app: AppModel::ConstantRate(60e6),
                ..FlowConfig::bulk(id, competitor, SchemeChoice::FixedRate, duration)
            }
            .with_lifetime(Instant::from_secs(t), Instant::from_secs(t + 4)),
        );
        id += 1;
        t += 8;
    }
    SweepGrid::over(vec![spec]).schemes(paper_schemes().into_iter().map(|(s, _)| s))
}

/// Figures 18/19 renderer: all-scheme comparison plus the PBE/BBR 200 ms
/// timeline with the competitor's on-intervals marked.
pub fn render_competition(
    report: &SweepReport,
    _seconds: u64,
    writer: &ReportWriter,
) -> io::Result<()> {
    let mut table = TextTable::new(&[
        "scheme",
        "avg tput (Mbit/s)",
        "avg delay (ms)",
        "p95 delay (ms)",
    ]);
    for outcome in report.by_label(COMPETITION_LABEL) {
        let s = &outcome.result.flows[0].summary;
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.avg_delay_ms),
            format!("{:.0}", s.p95_delay_ms),
        ]);
    }
    writer.table("fig18_schemes", "Fig18: all schemes", &table)?;

    let pbe = &report
        .outcome(COMPETITION_LABEL, "PBE")
        .expect("PBE ran")
        .result;
    let bbr = &report
        .outcome(COMPETITION_LABEL, "BBR")
        .expect("BBR ran")
        .result;
    let mut t = TextTable::new(&[
        "t (s)",
        "competitor",
        "PBE tput",
        "PBE delay",
        "BBR tput",
        "BBR delay",
    ]);
    let windows = pbe.flows[0].throughput_timeline_mbps.len();
    for w in (0..windows).step_by(2) {
        let time_s = w as f64 * 0.1;
        let competitor_on =
            ((time_s as u64).saturating_sub(4) / 4).is_multiple_of(2) && time_s >= 4.0;
        let cell = |r: &SimResult| {
            let f = &r.flows[0];
            (
                f.throughput_timeline_mbps[w],
                f.delay_timeline_ms[w].unwrap_or(0.0),
            )
        };
        let (pt, pd) = cell(pbe);
        let (bt, bd) = cell(bbr);
        t.row(&[
            format!("{time_s:.1}"),
            if competitor_on {
                "on".into()
            } else {
                "".into()
            },
            format!("{pt:.1}"),
            format!("{pd:.0}"),
            format!("{bt:.1}"),
            format!("{bd:.0}"),
        ]);
    }
    writer.table(
        "fig19_timeline",
        "Fig19: 200 ms-granularity timeline (competitor on during shaded intervals)",
        &t,
    )?;
    writer.note(
        "\nPaper reference: PBE-CC ~57 Mbit/s with 61/71 ms avg/p95 delay; BBR slightly more",
    );
    writer.note("throughput but 147/227 ms delay; CUBIC and Verus 250-400+ ms delay.");
    Ok(())
}

// ---------------------------------------------------------------------------
// fig20_multi_connection
// ---------------------------------------------------------------------------

const MULTI_LABEL: &str = "Fig20 two connections";

/// Figure 20: one device running two concurrent connections, × eight
/// schemes.
pub fn multi_connection_grid(seconds: u64) -> SweepGrid {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    let scenario = ScenarioSpec::new(MULTI_LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(20)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 2, -87.0),
            MobilityTrace::stationary(-87.0),
        )
        .flow(
            FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration)
                .with_one_way_delay(Duration::from_millis(24)),
        )
        .flow(
            FlowConfig::bulk(2, ue, SchemeChoice::Pbe, duration)
                .with_one_way_delay(Duration::from_millis(32)),
        );
    SweepGrid::over(vec![scenario]).schemes(paper_schemes().into_iter().map(|(s, _)| s))
}

/// Figure 20 renderer: per-flow throughput/delay and the balance ratio.
pub fn render_multi_connection(
    report: &SweepReport,
    _seconds: u64,
    writer: &ReportWriter,
) -> io::Result<()> {
    let mut table = TextTable::new(&[
        "scheme",
        "flow1 tput",
        "flow2 tput",
        "flow1 med delay",
        "flow2 med delay",
        "tput ratio",
    ]);
    for outcome in report.by_label(MULTI_LABEL) {
        let a = &outcome.result.flows[0].summary;
        let b = &outcome.result.flows[1].summary;
        let ratio = if b.avg_throughput_mbps > 0.0 {
            a.avg_throughput_mbps / b.avg_throughput_mbps
        } else {
            f64::INFINITY
        };
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{:.1}", a.avg_throughput_mbps),
            format!("{:.1}", b.avg_throughput_mbps),
            format!("{:.0}", a.delay_percentiles_ms[2]),
            format!("{:.0}", b.delay_percentiles_ms[2]),
            format!("{ratio:.2}"),
        ]);
    }
    writer.table("fig20_two_connections", "Fig20: all schemes", &table)?;
    writer.note(
        "\nPaper reference: PBE-CC gives both flows similar throughput (26 / 28 Mbit/s, median",
    );
    writer.note("delays 48 / 56 ms); BBR splits 10 / 35 Mbit/s between its two flows.");
    Ok(())
}

// ---------------------------------------------------------------------------
// fig21_fairness
// ---------------------------------------------------------------------------

struct FairnessCase {
    label: &'static str,
    schemes: [SchemeChoice; 3],
    delays_ms: [u64; 3],
}

fn fairness_cases() -> Vec<FairnessCase> {
    let pbe = SchemeChoice::Pbe;
    let bbr = SchemeChoice::Baseline(SchemeName::Bbr);
    let cubic = SchemeChoice::Baseline(SchemeName::Cubic);
    vec![
        FairnessCase {
            label: "(a) three PBE flows, similar RTTs",
            schemes: [pbe.clone(), pbe.clone(), pbe.clone()],
            delays_ms: [24, 26, 28],
        },
        FairnessCase {
            label: "(b) three PBE flows, RTTs 52/64/297 ms",
            schemes: [pbe.clone(), pbe.clone(), pbe.clone()],
            delays_ms: [26, 32, 148],
        },
        FairnessCase {
            label: "(c) two PBE flows + one BBR flow",
            schemes: [pbe.clone(), bbr, pbe.clone()],
            delays_ms: [24, 26, 28],
        },
        FairnessCase {
            label: "(d) two PBE flows + one CUBIC flow",
            schemes: [pbe.clone(), cubic, pbe],
            delays_ms: [24, 26, 28],
        },
    ]
}

fn fairness_scenario(case: &FairnessCase, total_s: u64) -> ScenarioSpec {
    let duration = Duration::from_secs(total_s);
    // Start/stop pattern scaled from the paper's 60 s to `total_s`.
    let scale = total_s as f64 / 60.0;
    let starts = [0.0, 10.0 * scale, 20.0 * scale];
    let stops = [60.0 * scale, 50.0 * scale, 40.0 * scale];
    let ues = [UeId(1), UeId(2), UeId(3)];

    let mut spec = ScenarioSpec::new(case.label, SchemeChoice::Pbe, duration).seed(21);
    for ue in ues {
        spec = spec.ue(
            UeConfig::new(ue, vec![CellId(0)], 1, -86.0),
            MobilityTrace::stationary(-86.0),
        );
    }
    for i in 0..3 {
        // Every flow keeps its configured scheme: these are fixed-cast
        // scenarios, not points on a scheme axis.
        spec = spec.background_flow(
            FlowConfig::bulk(i as u32 + 1, ues[i], case.schemes[i].clone(), duration)
                .with_one_way_delay(Duration::from_millis(case.delays_ms[i]))
                .with_lifetime(
                    Instant::from_millis((starts[i] * 1000.0) as u64),
                    Instant::from_millis((stops[i] * 1000.0) as u64),
                ),
        );
    }
    spec
}

/// Figure 21: the four staggered-flow fairness cases (no scheme axis — each
/// case fixes its own cast).
pub fn fairness_grid(seconds: u64) -> SweepGrid {
    SweepGrid::over(
        fairness_cases()
            .iter()
            .map(|case| fairness_scenario(case, seconds))
            .collect(),
    )
}

/// Figure 21 renderer: per-case PRB timelines plus Jain's index notes.
pub fn render_fairness(
    report: &SweepReport,
    seconds: u64,
    writer: &ReportWriter,
) -> io::Result<()> {
    for (case_index, outcome) in report.outcomes.iter().enumerate() {
        let intervals: &[PrbInterval] = &outcome.result.primary_prb_timeline;
        let mut table = TextTable::new(&["t (s)", "flow1 PRBs", "flow2 PRBs", "flow3 PRBs"]);
        for interval in intervals.iter().step_by(10) {
            table.row(&[
                format!("{:.0}", interval.start_s),
                format!("{:.0}", interval.prbs_for(1)),
                format!("{:.0}", interval.prbs_for(2)),
                format!("{:.0}", interval.prbs_for(3)),
            ]);
        }
        writer.table(
            &format!("fig21_case_{case_index}"),
            &outcome.spec.label,
            &table,
        )?;

        // Jain's index over the window where all three flows are active
        // (scaled 20-40 s window) and where exactly two are active (10-20 s).
        let scale = seconds as f64 / 60.0;
        let jain_over = |lo_s: f64, hi_s: f64, flows: &[u32]| {
            let totals: Vec<f64> = flows
                .iter()
                .map(|id| {
                    intervals
                        .iter()
                        .filter(|iv| iv.start_s >= lo_s && iv.start_s < hi_s)
                        .map(|iv| iv.prbs_for(*id))
                        .sum()
                })
                .collect();
            jain_index(&totals)
        };
        let two = jain_over(10.0 * scale, 20.0 * scale, &[1, 2]);
        let three = jain_over(20.0 * scale, 40.0 * scale, &[1, 2, 3]);
        writer.note(&format!(
            "Jain's index: two concurrent flows {:.2}%, three concurrent flows {:.2}%\n",
            two * 100.0,
            three * 100.0
        ));
    }
    writer.note(
        "\nPaper reference: Jain's index 98.3-99.97% in every case; the base station's fairness",
    );
    writer.note("policy keeps CUBIC/BBR from starving the PBE-CC flows.");
    Ok(())
}

// ---------------------------------------------------------------------------
// fig_faults
// ---------------------------------------------------------------------------

/// The outage-recovery scenario family: one UE on all three cells with a
/// mid-run fault, crossed with a scheme axis.  Scenario (a) takes the
/// primary cell down for the middle half of the run (RLF, re-selection to a
/// 10 MHz neighbour, recovery); scenario (b) blinds the control-channel
/// decoders for 200 ms (PBE rides through on held estimates; baselines
/// ignore it).
pub fn faults_grid(seconds: u64) -> SweepGrid {
    let duration = Duration::from_secs(seconds);
    let ms = seconds * 1_000;
    let ue = UeId(1);
    let base = |label: &str| {
        ScenarioSpec::new(label, SchemeChoice::Pbe, duration)
            .seed(41)
            .ue(
                UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], 3, -85.0),
                MobilityTrace::stationary(-85.0),
            )
            .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
    };
    let outage = base("(a) primary-cell outage").faults(FaultSchedule {
        cell_outages: vec![CellOutage {
            cell: CellId(0),
            start_ms: ms / 4,
            end_ms: 3 * ms / 4,
        }],
        ..FaultSchedule::none()
    });
    let decode_loss = base("(b) decode-loss burst").faults(FaultSchedule {
        decode_loss: vec![DecodeLossBurst {
            flow: 1,
            start_ms: ms / 2,
            end_ms: ms / 2 + 200,
        }],
        ..FaultSchedule::none()
    });
    SweepGrid::over(vec![outage, decode_loss]).schemes([
        SchemeChoice::Pbe,
        SchemeChoice::Baseline(SchemeName::Bbr),
        SchemeChoice::Baseline(SchemeName::Cubic),
    ])
}

/// Fault-recovery renderer: one row per grid point with the recovery
/// metrics the fault subsystem measures — time to reconnect after RLF,
/// packets stranded on the dead cell, relative estimate error across the
/// fault window — next to the flow's overall throughput and delay.
pub fn render_faults(report: &SweepReport, _seconds: u64, writer: &ReportWriter) -> io::Result<()> {
    let mut table = TextTable::new(&[
        "scenario",
        "scheme",
        "fault",
        "reconnect (ms)",
        "stranded pkts",
        "est err",
        "tput (Mbit/s)",
        "p95 delay (ms)",
    ]);
    for outcome in &report.outcomes {
        let flow = &outcome.result.flows[0];
        if outcome.result.fault_recovery.is_empty() {
            table.row(&[
                outcome.spec.label.clone(),
                outcome.spec.scheme.id().to_string(),
                "none".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("{:.1}", flow.summary.avg_throughput_mbps),
                format!("{:.1}", flow.summary.p95_delay_ms),
            ]);
        }
        for record in &outcome.result.fault_recovery {
            let reconnect = record
                .reconnect_ms
                .iter()
                .map(|(_, ms)| ms.to_string())
                .collect::<Vec<_>>()
                .join("+");
            table.row(&[
                outcome.spec.label.clone(),
                outcome.spec.scheme.id().to_string(),
                format!("{:?} {}", record.kind, record.target),
                if reconnect.is_empty() {
                    "-".to_string()
                } else {
                    reconnect
                },
                record.packets_stranded.to_string(),
                format!("{:.3}", record.estimate_error),
                format!("{:.1}", flow.summary.avg_throughput_mbps),
                format!("{:.1}", flow.summary.p95_delay_ms),
            ]);
        }
    }
    writer.table("fig_faults", "Fault injection and recovery", &table)?;
    writer
        .note("\nScenario (a): the primary cell goes dark for the middle half of the run; the UE");
    writer.note("declares RLF after the detection deadline and re-selects a 10 MHz neighbour.");
    writer
        .note("Scenario (b): the control channel is undecodable for 200 ms; PBE-CC holds its last");
    writer.note("estimate through the gap while the baselines see nothing at all.");
    Ok(())
}
