//! Store-aware grid execution: run only the points whose key is missing.
//!
//! [`run_cached`] is the artifact pipeline's replacement for
//! [`SweepRunner::run`](crate::sweep::SweepRunner): same input (expanded
//! specs), same output shape ([`SweepReport`], grid order preserved), but
//! each point is first looked up in the result store by content key.  Hits
//! are served from disk with zero simulation; misses execute on the worker
//! pool in small batches and are persisted as each batch completes, so an
//! interrupted run resumes from its last finished batch instead of
//! restarting.  Served and fresh outcomes are byte-identical by
//! construction — the blob stores the exact spec and `SimResult` a fresh run
//! would produce — and the cache-equivalence tests in
//! `crates/bench/tests/artifact.rs` pin that.

use super::store::{FailureKind, PointFailure, ResultStore, StoredPoint};
use crate::sweep::{ScenarioOutcome, ScenarioSpec, SweepReport};
use pbe_netsim::Simulation;
use pbe_stats::pool::{panic_message, run_indexed_partial};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Failure-containment policy for grid execution.
///
/// The default policy is fully permissive — no deadline, no retries — which
/// still contains panics (a panicking scenario becomes a [`PointFailure`],
/// never a crashed sweep).
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Wall-clock budget per scenario *attempt*.  A scenario still running
    /// at the deadline counts as failed ([`FailureKind::Deadline`]); its
    /// thread is abandoned, not joined.  `None` means unbounded.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure (0 = fail immediately).
    pub retries: u32,
    /// Base delay between attempts; attempt `n` waits `backoff * 2^(n-1)`.
    pub backoff: Duration,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(100),
        }
    }
}

/// Outcome of a cached run: the assembled report plus the cache accounting
/// the smoke tests and CI assert on.
#[derive(Debug)]
pub struct CachedRun {
    /// Per-point outcomes in grid order, exactly as a fresh sweep would
    /// report them (cached points carry `wall_ms = 0`).  Failed points are
    /// absent here and present in `failures`.
    pub report: SweepReport,
    /// Number of points that actually simulated in this invocation.
    pub executed: usize,
    /// Number of points served from the store.
    pub cached: usize,
    /// Points that failed (panic or deadline) after exhausting the policy's
    /// attempts, plus quarantined points skipped on resume — in grid order.
    pub failures: Vec<PointFailure>,
}

/// Execute `specs`, serving store hits and persisting fresh results, under
/// the default (permissive) [`ExecPolicy`].
///
/// With `store = None` every point executes (a plain sweep).  `workers`
/// follows [`SweepRunner`](crate::sweep::SweepRunner) semantics except that
/// `0` means "all available cores".  `figure` labels the manifest entries of
/// freshly executed points.
pub fn run_cached(
    figure: &str,
    specs: Vec<ScenarioSpec>,
    store: Option<&mut ResultStore>,
    workers: usize,
) -> io::Result<CachedRun> {
    run_cached_with(figure, specs, store, workers, &ExecPolicy::default())
}

/// [`run_cached`] with an explicit failure-containment policy.
///
/// Execution is failure-contained end to end: a panicking scenario is caught
/// and reported as a structured [`PointFailure`]; a scenario exceeding the
/// policy's deadline is abandoned and reported likewise; failures retry per
/// the policy (exponential backoff) before giving up.  Exhausted points are
/// quarantined in the store, so a later resume skips-and-reports them
/// instead of re-poisoning every invocation, and **every other point still
/// executes exactly once** — one poison point costs its own slot, never the
/// sweep.
pub fn run_cached_with(
    figure: &str,
    specs: Vec<ScenarioSpec>,
    mut store: Option<&mut ResultStore>,
    workers: usize,
    policy: &ExecPolicy,
) -> io::Result<CachedRun> {
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    };
    let started = Instant::now();
    let keys: Vec<String> = specs.iter().map(ScenarioSpec::content_key).collect();

    // Phase 1: serve every present point from the store; skip-and-report
    // quarantined keys; everything else is a miss.
    let mut slots: Vec<Option<ScenarioOutcome>> = (0..specs.len()).map(|_| None).collect();
    let mut failures: Vec<(usize, PointFailure)> = Vec::new();
    let mut misses: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let hit = store
            .as_deref()
            .and_then(|s| s.get(key))
            .map(|p| ScenarioOutcome::new(p.spec, p.result, 0.0));
        if let Some(outcome) = hit {
            slots[i] = Some(outcome);
            continue;
        }
        if let Some(poison) = store.as_deref().and_then(|s| s.quarantine_entry(key)) {
            failures.push((i, poison.clone()));
            continue;
        }
        misses.push(i);
    }
    let cached = specs.len() - misses.len() - failures.len();

    // Phase 2: execute the misses in small batches, persisting after each
    // batch so a kill loses at most one batch of work.  Each point runs
    // guarded (catch_unwind + deadline watchdog + retries); the pool-level
    // panic containment is a second line of defense for harness bugs.
    let mut executed = 0usize;
    let batch = (workers * 2).max(4);
    for batch_indices in misses.chunks(batch) {
        let (results, pool_panics) = run_indexed_partial(batch_indices.len(), workers, |j| {
            execute_guarded(&specs[batch_indices[j]], policy)
        });
        for (j, slot) in results.into_iter().enumerate() {
            let i = batch_indices[j];
            let spec = &specs[i];
            let failed = match slot {
                Some(Ok(outcome)) => {
                    if let Some(store) = store.as_deref_mut() {
                        store.insert(
                            figure,
                            &StoredPoint {
                                key: outcome.key.clone(),
                                spec: outcome.spec.clone(),
                                result: outcome.result.clone(),
                            },
                        )?;
                    }
                    executed += 1;
                    slots[i] = Some(outcome);
                    continue;
                }
                Some(Err((kind, message, attempts))) => PointFailure {
                    key: keys[i].clone(),
                    figure: figure.to_string(),
                    label: spec.label.clone(),
                    scheme: spec.scheme.id().to_string(),
                    seed: spec.seed,
                    kind,
                    message,
                    attempts,
                },
                // The guarded job itself panicked (harness bug): the pool
                // contained it; report it like a scenario panic.
                None => {
                    let panic = pool_panics
                        .iter()
                        .find(|p| p.index == j)
                        .map(|p| p.message.clone())
                        .unwrap_or_else(|| "job vanished without a panic record".to_string());
                    PointFailure {
                        key: keys[i].clone(),
                        figure: figure.to_string(),
                        label: spec.label.clone(),
                        scheme: spec.scheme.id().to_string(),
                        seed: spec.seed,
                        kind: FailureKind::Panic,
                        message: panic,
                        attempts: 1,
                    }
                }
            };
            if let Some(store) = store.as_deref_mut() {
                store.quarantine(&failed)?;
            }
            failures.push((i, failed));
        }
    }

    // Failed points lose exactly their own slot; the report keeps every
    // surviving point in grid order.
    failures.sort_by_key(|(i, _)| *i);
    let outcomes: Vec<ScenarioOutcome> = slots.into_iter().flatten().collect();
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
    let busy_ms = outcomes.iter().map(|o| o.wall_ms).sum();
    Ok(CachedRun {
        report: SweepReport {
            outcomes,
            workers,
            elapsed_ms,
            busy_ms,
        },
        executed,
        cached,
        failures: failures.into_iter().map(|(_, f)| f).collect(),
    })
}

/// Run one scenario under the policy: per-attempt panic containment and
/// deadline watchdog, retries with exponential backoff.  Total — never
/// panics, never blocks past `attempts * deadline` (plus backoff).
fn execute_guarded(
    spec: &ScenarioSpec,
    policy: &ExecPolicy,
) -> Result<ScenarioOutcome, (FailureKind, String, u32)> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match attempt(spec, policy.deadline) {
            Ok(outcome) => return Ok(outcome),
            Err((kind, message)) => {
                if attempts > policy.retries {
                    return Err((kind, message, attempts));
                }
                std::thread::sleep(policy.backoff * 2u32.saturating_pow(attempts - 1));
            }
        }
    }
}

/// One execution attempt.  Without a deadline the simulation runs on the
/// calling (pool) thread under `catch_unwind`; with one it runs on a fresh
/// watchdog thread, and on timeout the thread is *abandoned* — it finishes
/// (or spins) in the background while the sweep moves on, which is the only
/// containment available without killing threads.
fn attempt(
    spec: &ScenarioSpec,
    deadline: Option<Duration>,
) -> Result<ScenarioOutcome, (FailureKind, String)> {
    match deadline {
        None => catch_unwind(AssertUnwindSafe(|| execute_one(spec)))
            .map_err(|payload| (FailureKind::Panic, panic_message(payload.as_ref()))),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| execute_one(&spec)))
                    .map_err(|payload| panic_message(payload.as_ref()));
                let _ = tx.send(outcome);
            });
            match rx.recv_timeout(limit) {
                Ok(Ok(outcome)) => Ok(outcome),
                Ok(Err(message)) => Err((FailureKind::Panic, message)),
                Err(_) => Err((
                    FailureKind::Deadline,
                    format!(
                        "still running after the {:.1} s deadline",
                        limit.as_secs_f64()
                    ),
                )),
            }
        }
    }
}

fn execute_one(spec: &ScenarioSpec) -> ScenarioOutcome {
    let started = Instant::now();
    let result = Simulation::new(spec.sim_config()).run();
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    ScenarioOutcome::new(spec.clone(), result, wall_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepGrid, SweepRunner};
    use pbe_netsim::SchemeChoice;
    use pbe_stats::time::Duration;

    fn tiny_specs() -> Vec<ScenarioSpec> {
        SweepGrid::over(vec![ScenarioSpec::single_flow(
            "exec",
            SchemeChoice::Pbe,
            Duration::from_millis(200),
        )
        .seed(11)])
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("CUBIC")])
        .expand()
    }

    #[test]
    fn without_a_store_everything_executes_and_matches_the_sweep_runner() {
        let specs = tiny_specs();
        let plain = SweepRunner::serial().run(specs.clone());
        let run = run_cached("fig_test", specs, None, 1).unwrap();
        assert_eq!(run.executed, 2);
        assert_eq!(run.cached, 0);
        assert_eq!(run.report.deterministic_json(), plain.deterministic_json());
    }

    #[test]
    fn a_panicking_and_a_hanging_point_fail_structured_while_the_rest_execute_once() {
        let dir = std::env::temp_dir().join(format!("pbe_exec_chaos_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir).unwrap();
        // Four points: two healthy schemes, one that panics mid-run, one
        // that burns wall-clock past the deadline.
        let specs = SweepGrid::over(vec![ScenarioSpec::single_flow(
            "chaos",
            SchemeChoice::Pbe,
            Duration::from_millis(200),
        )
        .seed(23)])
        .schemes([
            SchemeChoice::Pbe,
            SchemeChoice::named("CUBIC"),
            SchemeChoice::named("CHAOS_PANIC"),
            SchemeChoice::named("CHAOS_HANG"),
        ])
        .expand();
        let policy = ExecPolicy {
            deadline: Some(std::time::Duration::from_millis(300)),
            retries: 0,
            backoff: std::time::Duration::from_millis(1),
        };
        let run =
            run_cached_with("fig_chaos", specs.clone(), Some(&mut store), 1, &policy).unwrap();

        // Both chaos points fail with the right kind; the sweep completed.
        assert_eq!(run.executed, 2, "the two healthy points executed");
        assert_eq!(run.report.outcomes.len(), 2);
        assert_eq!(run.failures.len(), 2);
        let panic = run
            .failures
            .iter()
            .find(|f| f.scheme == "CHAOS_PANIC")
            .expect("panic failure recorded");
        assert_eq!(panic.kind, FailureKind::Panic);
        assert!(panic.message.contains("chaos: injected scheme panic"));
        let hang = run
            .failures
            .iter()
            .find(|f| f.scheme == "CHAOS_HANG")
            .expect("deadline failure recorded");
        assert_eq!(hang.kind, FailureKind::Deadline);
        assert_eq!((panic.attempts, hang.attempts), (1, 1));
        assert_eq!(store.len(), 2, "only healthy points persisted");

        // Resume: quarantined points are skipped-and-reported, healthy ones
        // served from the store — zero new executions.
        let resumed = run_cached_with("fig_chaos", specs, Some(&mut store), 1, &policy).unwrap();
        assert_eq!((resumed.executed, resumed.cached), (0, 2));
        assert_eq!(resumed.failures.len(), 2, "quarantine reported on resume");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retries_are_counted_before_a_point_is_given_up() {
        // CHAOS_PANIC panics deterministically, so every retry fails too;
        // the failure must record all attempts.
        let specs = SweepGrid::over(vec![ScenarioSpec::single_flow(
            "retry",
            SchemeChoice::named("CHAOS_PANIC"),
            Duration::from_millis(150),
        )
        .seed(5)])
        .expand();
        let policy = ExecPolicy {
            deadline: None,
            retries: 2,
            backoff: std::time::Duration::from_millis(1),
        };
        let run = run_cached_with("fig_retry", specs, None, 1, &policy).unwrap();
        assert_eq!(run.failures.len(), 1);
        assert_eq!(
            run.failures[0].attempts, 3,
            "initial attempt plus two retries"
        );
        assert_eq!(run.failures[0].kind, FailureKind::Panic);
    }

    #[test]
    fn second_invocation_serves_everything_from_the_store() {
        let dir = std::env::temp_dir().join(format!("pbe_exec_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir).unwrap();
        let first = run_cached("fig_test", tiny_specs(), Some(&mut store), 1).unwrap();
        assert_eq!((first.executed, first.cached), (2, 0));
        let second = run_cached("fig_test", tiny_specs(), Some(&mut store), 1).unwrap();
        assert_eq!((second.executed, second.cached), (0, 2));
        assert_eq!(
            first.report.deterministic_json(),
            second.report.deterministic_json()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
