//! Store-aware grid execution: run only the points whose key is missing.
//!
//! [`run_cached`] is the artifact pipeline's replacement for
//! [`SweepRunner::run`](crate::sweep::SweepRunner): same input (expanded
//! specs), same output shape ([`SweepReport`], grid order preserved), but
//! each point is first looked up in the result store by content key.  Hits
//! are served from disk with zero simulation; misses execute on the worker
//! pool in small batches and are persisted as each batch completes, so an
//! interrupted run resumes from its last finished batch instead of
//! restarting.  Served and fresh outcomes are byte-identical by
//! construction — the blob stores the exact spec and `SimResult` a fresh run
//! would produce — and the cache-equivalence tests in
//! `crates/bench/tests/artifact.rs` pin that.

use super::store::{ResultStore, StoredPoint};
use crate::sweep::{ScenarioOutcome, ScenarioSpec, SweepReport};
use pbe_netsim::Simulation;
use pbe_stats::pool::run_indexed;
use std::io;
use std::time::Instant;

/// Outcome of a cached run: the assembled report plus the cache accounting
/// the smoke tests and CI assert on.
#[derive(Debug)]
pub struct CachedRun {
    /// Per-point outcomes in grid order, exactly as a fresh sweep would
    /// report them (cached points carry `wall_ms = 0`).
    pub report: SweepReport,
    /// Number of points that actually simulated in this invocation.
    pub executed: usize,
    /// Number of points served from the store.
    pub cached: usize,
}

/// Execute `specs`, serving store hits and persisting fresh results.
///
/// With `store = None` every point executes (a plain sweep).  `workers`
/// follows [`SweepRunner`](crate::sweep::SweepRunner) semantics except that
/// `0` means "all available cores".  `figure` labels the manifest entries of
/// freshly executed points.
pub fn run_cached(
    figure: &str,
    specs: Vec<ScenarioSpec>,
    mut store: Option<&mut ResultStore>,
    workers: usize,
) -> io::Result<CachedRun> {
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    };
    let started = Instant::now();
    let keys: Vec<String> = specs.iter().map(ScenarioSpec::content_key).collect();

    // Phase 1: serve every present point from the store.
    let mut slots: Vec<Option<ScenarioOutcome>> = (0..specs.len()).map(|_| None).collect();
    let mut misses: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let hit = store
            .as_deref()
            .and_then(|s| s.get(key))
            .map(|p| ScenarioOutcome::new(p.spec, p.result, 0.0));
        match hit {
            Some(outcome) => slots[i] = Some(outcome),
            None => misses.push(i),
        }
    }
    let cached = specs.len() - misses.len();
    let executed = misses.len();

    // Phase 2: execute the misses in small batches, persisting after each
    // batch so a kill loses at most one batch of work.
    let batch = (workers * 2).max(4);
    for batch_indices in misses.chunks(batch) {
        let outcomes = run_indexed(batch_indices.len(), workers, |j| {
            let spec = specs[batch_indices[j]].clone();
            let point_started = Instant::now();
            let result = Simulation::new(spec.sim_config()).run();
            let wall_ms = point_started.elapsed().as_secs_f64() * 1000.0;
            ScenarioOutcome::new(spec, result, wall_ms)
        });
        for (j, outcome) in outcomes.into_iter().enumerate() {
            if let Some(store) = store.as_deref_mut() {
                store.insert(
                    figure,
                    &StoredPoint {
                        key: outcome.key.clone(),
                        spec: outcome.spec.clone(),
                        result: outcome.result.clone(),
                    },
                )?;
            }
            slots[batch_indices[j]] = Some(outcome);
        }
    }

    let outcomes: Vec<ScenarioOutcome> = slots
        .into_iter()
        .map(|slot| slot.expect("every grid point served or executed"))
        .collect();
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
    let busy_ms = outcomes.iter().map(|o| o.wall_ms).sum();
    Ok(CachedRun {
        report: SweepReport {
            outcomes,
            workers,
            elapsed_ms,
            busy_ms,
        },
        executed,
        cached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepGrid, SweepRunner};
    use pbe_netsim::SchemeChoice;
    use pbe_stats::time::Duration;

    fn tiny_specs() -> Vec<ScenarioSpec> {
        SweepGrid::over(vec![ScenarioSpec::single_flow(
            "exec",
            SchemeChoice::Pbe,
            Duration::from_millis(200),
        )
        .seed(11)])
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("CUBIC")])
        .expand()
    }

    #[test]
    fn without_a_store_everything_executes_and_matches_the_sweep_runner() {
        let specs = tiny_specs();
        let plain = SweepRunner::serial().run(specs.clone());
        let run = run_cached("fig_test", specs, None, 1).unwrap();
        assert_eq!(run.executed, 2);
        assert_eq!(run.cached, 0);
        assert_eq!(run.report.deterministic_json(), plain.deterministic_json());
    }

    #[test]
    fn second_invocation_serves_everything_from_the_store() {
        let dir = std::env::temp_dir().join(format!("pbe_exec_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir).unwrap();
        let first = run_cached("fig_test", tiny_specs(), Some(&mut store), 1).unwrap();
        assert_eq!((first.executed, first.cached), (2, 0));
        let second = run_cached("fig_test", tiny_specs(), Some(&mut store), 1).unwrap();
        assert_eq!((second.executed, second.cached), (0, 2));
        assert_eq!(
            first.report.deterministic_json(),
            second.report.deterministic_json()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
