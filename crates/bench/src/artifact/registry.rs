//! The figure registry: every sweep-backed figure as data.
//!
//! A [`FigureSpec`] is the whole figure reduced to three facts: a name, a
//! grid builder and a renderer.  The registry is what lets one command
//! (`pbe-bench artifact --all`) enumerate the paper's evaluation instead of
//! invoking five binaries, and what guarantees the artifact pipeline and the
//! standalone `fig*` binaries run the *same* grid — both sides call the same
//! function pointer.

use super::figures;
use crate::sweep::{ReportWriter, SweepGrid, SweepReport};
use std::io;

/// One registered figure: its identity, default duration, grid and renderer.
#[derive(Clone, Copy)]
pub struct FigureSpec {
    /// Registry name — also the `fig*` binary name and the stem of the
    /// figure's report files.
    pub name: &'static str,
    /// One-line description shown by `pbe-bench artifact --list`.
    pub title: &'static str,
    /// Simulated seconds per scenario when `--seconds` is not given (each
    /// figure keeps the default its binary always had).
    pub default_seconds: u64,
    /// Build the figure's sweep grid for a per-scenario duration.
    pub grid: fn(u64) -> SweepGrid,
    /// Render the executed report as the figure's tables.
    pub render: fn(&SweepReport, u64, &ReportWriter) -> io::Result<()>,
}

impl std::fmt::Debug for FigureSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FigureSpec")
            .field("name", &self.name)
            .field("default_seconds", &self.default_seconds)
            .finish()
    }
}

/// Every sweep-backed figure, in paper order.
pub fn registry() -> Vec<FigureSpec> {
    vec![
        FigureSpec {
            name: "fig13_14_stationary",
            title: "Figs 13/14: six stationary locations x eight schemes",
            default_seconds: 8,
            grid: figures::stationary_grid,
            render: figures::render_stationary,
        },
        FigureSpec {
            name: "fig16_17_mobility",
            title: "Figs 16/17: mobility walk -85 -> -105 -> -85 dBm",
            default_seconds: 40,
            grid: figures::mobility_grid,
            render: figures::render_mobility,
        },
        FigureSpec {
            name: "fig18_19_competition",
            title: "Figs 18/19: on-off 60 Mbit/s competitor",
            default_seconds: 24,
            grid: figures::competition_grid,
            render: figures::render_competition,
        },
        FigureSpec {
            name: "fig20_multi_connection",
            title: "Fig 20: two concurrent connections from one device",
            default_seconds: 12,
            grid: figures::multi_connection_grid,
            render: figures::render_multi_connection,
        },
        FigureSpec {
            name: "fig21_fairness",
            title: "Fig 21: fairness of staggered flows at one cell",
            default_seconds: 18,
            grid: figures::fairness_grid,
            render: figures::render_fairness,
        },
        FigureSpec {
            name: "fig_faults",
            title: "Fault injection: outage/decode-loss recovery metrics",
            default_seconds: 6,
            grid: figures::faults_grid,
            render: figures::render_faults,
        },
    ]
}

/// Look a figure up by registry name.
pub fn find(name: &str) -> Option<FigureSpec> {
    registry().into_iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let figures = registry();
        assert_eq!(figures.len(), 6);
        for fig in &figures {
            assert_eq!(find(fig.name).unwrap().default_seconds, fig.default_seconds);
        }
        let mut names: Vec<&str> = figures.iter().map(|f| f.name).collect();
        names.dedup();
        assert_eq!(names.len(), 6, "registry names are unique");
        assert!(find("fig99_nonexistent").is_none());
    }

    #[test]
    fn every_grid_expands_to_a_nonempty_deterministic_spec_list() {
        for fig in registry() {
            let a = (fig.grid)(2).expand();
            let b = (fig.grid)(2).expand();
            assert!(!a.is_empty(), "{} expands to at least one point", fig.name);
            let keys_a: Vec<String> = a.iter().map(|s| s.content_key()).collect();
            let keys_b: Vec<String> = b.iter().map(|s| s.content_key()).collect();
            assert_eq!(keys_a, keys_b, "{} grid is deterministic", fig.name);
            // Content keys address points, so they must be pairwise distinct.
            let mut sorted = keys_a.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), keys_a.len(), "{} keys are distinct", fig.name);
        }
    }
}
