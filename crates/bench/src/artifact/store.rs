//! The on-disk, content-addressed result store.
//!
//! Layout under the store directory (`--store DIR`):
//!
//! ```text
//! DIR/
//!   manifest.jsonl          one ManifestEntry JSON object per line,
//!                           appended as each point completes
//!   points/<key>.json       one StoredPoint blob per executed grid point
//! ```
//!
//! The `key` is the spec's [content key](ScenarioSpec::content_key).  A point
//! counts as *present* only when both a manifest line names its key **and**
//! its blob file exists; everything else re-executes.  That rule makes the
//! store honest about interruption from either side: a process killed
//! between the blob write and the manifest append leaves an orphaned blob
//! (ignored, re-run), a manifest truncated by hand (or a torn final line)
//! drops exactly the truncated points, and deleting one `points/<key>.json`
//! invalidates exactly that point.  Writes go blob first (to a temp file,
//! then renamed into place), manifest line last, so a key listed in the
//! manifest almost always has its blob — and the presence rule covers the
//! window where it does not.

use crate::sweep::ScenarioSpec;
use pbe_netsim::SimResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One line of `manifest.jsonl`: the join record between a stored blob and
/// the figure/grid point that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The point's content key (blob file name stem).
    pub key: String,
    /// Registry name of the figure that executed the point.
    pub figure: String,
    /// The scenario label of the point's spec.
    pub label: String,
    /// The scheme label (`spec.scheme.id()`).
    pub scheme: String,
    /// The expanded experiment seed.
    pub seed: u64,
    /// 128-bit FNV-1a over the blob's exact bytes, written at insert time so
    /// `verify` can detect truncated or corrupted blobs.  `default` keeps
    /// pre-checksum manifests loadable (their blobs verify by parse only).
    #[serde(default)]
    pub checksum: Option<String>,
}

/// Why a grid point failed to execute (see [`PointFailure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The scenario's simulation panicked.
    Panic,
    /// The scenario exceeded the execution deadline.
    Deadline,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Deadline => write!(f, "deadline"),
        }
    }
}

/// One line of `quarantine.jsonl`: a grid point that exhausted its execution
/// attempts.  Quarantined keys are skipped-and-reported on resume instead of
/// re-poisoning every invocation; deleting the file (or repairing the cause)
/// lifts the quarantine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointFailure {
    /// The point's content key.
    pub key: String,
    /// Registry name of the figure whose grid contains the point.
    pub figure: String,
    /// The scenario label of the point's spec.
    pub label: String,
    /// The scheme label (`spec.scheme.id()`).
    pub scheme: String,
    /// The expanded experiment seed.
    pub seed: u64,
    /// What killed the point.
    pub kind: FailureKind,
    /// The rendered panic payload, or a deadline description.
    pub message: String,
    /// How many execution attempts were made before giving up.
    pub attempts: u32,
}

/// One problem `verify` found with a stored point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreIssue {
    /// The affected content key.
    pub key: String,
    /// Registry name of the figure that stored the point.
    pub figure: String,
    /// Human-readable description of the problem.
    pub problem: String,
}

/// One stored grid point: the expanded spec that ran and its full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredPoint {
    /// The point's content key (matches the file name and manifest line).
    pub key: String,
    /// The fully expanded spec (scheme and seed substituted).
    pub spec: ScenarioSpec,
    /// The simulator's result for that spec.
    pub result: SimResult,
}

/// A content-addressed directory of executed grid points.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    /// Every parsed manifest line, in file order (duplicates possible when a
    /// point was invalidated and re-run; the last line wins).
    entries: Vec<ManifestEntry>,
    /// key → index into `entries`, restricted to keys whose blob exists.
    present: BTreeMap<String, usize>,
    /// key → quarantine record (last line per key wins).
    quarantined: BTreeMap<String, PointFailure>,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// Malformed manifest lines — e.g. the torn final line of an interrupted
    /// run — are skipped, not fatal: their points simply count as absent and
    /// re-execute.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("points"))?;
        let mut entries = Vec::new();
        let mut present = BTreeMap::new();
        let manifest = dir.join("manifest.jsonl");
        if manifest.exists() {
            for line in fs::read_to_string(&manifest)?.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let Ok(entry) = serde_json::from_str::<ManifestEntry>(line) else {
                    continue;
                };
                if dir
                    .join("points")
                    .join(format!("{}.json", entry.key))
                    .is_file()
                {
                    present.insert(entry.key.clone(), entries.len());
                } else {
                    // A manifest line without its blob (deleted by hand, or
                    // a kill in the blob-write window): say so and count the
                    // point as absent, so it re-executes instead of silently
                    // holing the report.
                    eprintln!(
                        "artifact store: manifest names {} ({}) but its blob is missing; \
                         the point will re-execute",
                        entry.key, entry.label
                    );
                }
                entries.push(entry);
            }
        }
        let mut quarantined = BTreeMap::new();
        let quarantine = dir.join("quarantine.jsonl");
        if quarantine.exists() {
            for line in fs::read_to_string(&quarantine)?.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let Ok(failure) = serde_json::from_str::<PointFailure>(line) else {
                    continue;
                };
                // A key that was stored successfully after it was quarantined
                // is healthy: the blob's presence supersedes the record.
                if !present.contains_key(&failure.key) {
                    quarantined.insert(failure.key.clone(), failure);
                }
            }
        }
        Ok(ResultStore {
            dir,
            entries,
            present,
            quarantined,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.jsonl")
    }

    /// Path of a point's blob file.
    pub fn point_path(&self, key: &str) -> PathBuf {
        self.dir.join("points").join(format!("{key}.json"))
    }

    /// Number of present points (manifest line **and** blob).
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// True when the store holds no present points.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Whether a point is present.
    pub fn contains(&self, key: &str) -> bool {
        self.present.contains_key(key)
    }

    /// The manifest entry of a present point.
    pub fn entry(&self, key: &str) -> Option<&ManifestEntry> {
        self.present.get(key).map(|&i| &self.entries[i])
    }

    /// Every manifest entry whose point is present, in manifest order.
    pub fn present_entries(&self) -> Vec<&ManifestEntry> {
        let mut indices: Vec<usize> = self.present.values().copied().collect();
        indices.sort_unstable();
        indices.into_iter().map(|i| &self.entries[i]).collect()
    }

    /// Load a present point's blob.  Returns `None` for absent keys and for
    /// blobs that no longer parse (both mean: re-execute).
    pub fn get(&self, key: &str) -> Option<StoredPoint> {
        if !self.contains(key) {
            return None;
        }
        let text = fs::read_to_string(self.point_path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist one executed point: blob first (temp file + rename), manifest
    /// line last.  The manifest line carries a checksum of the blob's exact
    /// bytes so [`ResultStore::verify`] can detect later corruption.
    pub fn insert(&mut self, figure: &str, point: &StoredPoint) -> io::Result<()> {
        let blob = serde_json::to_string(point).expect("stored point serializes");
        let entry = ManifestEntry {
            key: point.key.clone(),
            figure: figure.to_string(),
            label: point.spec.label.clone(),
            scheme: point.spec.scheme.id().to_string(),
            seed: point.spec.seed,
            checksum: Some(pbe_stats::fnv1a_128_hex(blob.as_bytes())),
        };
        let path = self.point_path(&point.key);
        let tmp = self.dir.join("points").join(format!(".{}.tmp", point.key));
        fs::write(&tmp, blob)?;
        fs::rename(&tmp, &path)?;
        let line = serde_json::to_string(&entry).expect("manifest entry serializes");
        let mut manifest = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        writeln!(manifest, "{line}")?;
        self.present.insert(entry.key.clone(), self.entries.len());
        // A successful execution supersedes any quarantine on the key (the
        // file keeps the historical record; the in-memory view moves on).
        self.quarantined.remove(&entry.key);
        self.entries.push(entry);
        Ok(())
    }

    /// Path of the quarantine file.
    pub fn quarantine_path(&self) -> PathBuf {
        self.dir.join("quarantine.jsonl")
    }

    /// The quarantine record of a key, if any.
    pub fn quarantine_entry(&self, key: &str) -> Option<&PointFailure> {
        self.quarantined.get(key)
    }

    /// Every quarantined point, in key order.
    pub fn quarantined(&self) -> Vec<&PointFailure> {
        self.quarantined.values().collect()
    }

    /// Persist a point failure: the key is skipped-and-reported by
    /// store-aware executors until the quarantine is lifted (the blob, if
    /// any, stays untouched).
    pub fn quarantine(&mut self, failure: &PointFailure) -> io::Result<()> {
        let line = serde_json::to_string(failure).expect("point failure serializes");
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.quarantine_path())?;
        writeln!(file, "{line}")?;
        self.quarantined
            .insert(failure.key.clone(), failure.clone());
        Ok(())
    }

    /// Lift every quarantine: remove the file, so all keys execute again.
    pub fn clear_quarantine(&mut self) -> io::Result<()> {
        self.quarantined.clear();
        let path = self.quarantine_path();
        if path.exists() {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Check every present point's blob against its manifest checksum.
    ///
    /// Reports, in manifest order: blobs whose bytes no longer match the
    /// checksum recorded at insert time (truncation, corruption), and blobs
    /// that no longer parse (covers pre-checksum manifest lines).  A clean
    /// store returns an empty list.
    pub fn verify(&self) -> Vec<StoreIssue> {
        let mut issues = Vec::new();
        for entry in self.present_entries() {
            let path = self.dir.join("points").join(format!("{}.json", entry.key));
            let text = match fs::read_to_string(&path) {
                Ok(text) => text,
                Err(err) => {
                    issues.push(StoreIssue {
                        key: entry.key.clone(),
                        figure: entry.figure.clone(),
                        problem: format!("blob unreadable: {err}"),
                    });
                    continue;
                }
            };
            if let Some(expected) = &entry.checksum {
                let actual = pbe_stats::fnv1a_128_hex(text.as_bytes());
                if actual != *expected {
                    issues.push(StoreIssue {
                        key: entry.key.clone(),
                        figure: entry.figure.clone(),
                        problem: format!("checksum mismatch (manifest {expected}, blob {actual})"),
                    });
                    continue;
                }
            }
            if serde_json::from_str::<StoredPoint>(&text).is_err() {
                issues.push(StoreIssue {
                    key: entry.key.clone(),
                    figure: entry.figure.clone(),
                    problem: "blob does not parse as a stored point".to_string(),
                });
            }
        }
        issues
    }

    /// Drop a point: delete its blob so the key counts as absent and
    /// re-executes.  Manifest lines are append-only history and stay.
    pub fn invalidate(&mut self, key: &str) -> io::Result<()> {
        self.present.remove(key);
        let path = self.point_path(key);
        if path.exists() {
            fs::remove_file(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_netsim::SchemeChoice;
    use pbe_stats::time::Duration;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pbe_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_point(seed: u64) -> StoredPoint {
        let spec =
            ScenarioSpec::single_flow("store", SchemeChoice::Pbe, Duration::from_millis(200))
                .seed(seed);
        let result = spec.run();
        StoredPoint {
            key: spec.content_key(),
            spec,
            result,
        }
    }

    #[test]
    fn points_round_trip_and_reopen() {
        let dir = temp_store("roundtrip");
        let point = tiny_point(1);
        let mut store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.insert("figX", &point).unwrap();
        assert!(store.contains(&point.key));
        assert_eq!(store.entry(&point.key).unwrap().figure, "figX");

        // A fresh handle sees the same state, and the blob is byte-faithful.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        let loaded = reopened.get(&point.key).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded.result).unwrap(),
            serde_json::to_string(&point.result).unwrap()
        );
        assert_eq!(loaded.spec.content_key(), point.key);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_blob_or_manifest_line_means_absent() {
        let dir = temp_store("absent");
        let a = tiny_point(2);
        let b = tiny_point(3);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.insert("figX", &a).unwrap();
            store.insert("figX", &b).unwrap();
        }
        // Deleting a blob invalidates exactly that point.
        fs::remove_file(dir.join("points").join(format!("{}.json", a.key))).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(!store.contains(&a.key));
        assert!(store.contains(&b.key));

        // Truncating the manifest (simulated kill) invalidates the tail even
        // though the blob survives.
        let manifest = fs::read_to_string(dir.join("manifest.jsonl")).unwrap();
        let first_line: String = manifest.lines().next().unwrap().to_string();
        fs::write(dir.join("manifest.jsonl"), format!("{first_line}\n")).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(!store.contains(&b.key));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_corrupted_and_truncated_blobs() {
        let dir = temp_store("verify");
        let a = tiny_point(5);
        let b = tiny_point(6);
        let mut store = ResultStore::open(&dir).unwrap();
        store.insert("figX", &a).unwrap();
        store.insert("figX", &b).unwrap();
        assert!(store.verify().is_empty(), "fresh store verifies clean");

        // Truncate one blob (simulated torn write / disk trouble).
        let path = store.point_path(&a.key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let issues = ResultStore::open(&dir).unwrap().verify();
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].key, a.key);
        assert!(issues[0].problem.contains("checksum mismatch"));

        // Invalidating the bad key makes it absent; the good key verifies.
        let mut store = ResultStore::open(&dir).unwrap();
        store.invalidate(&a.key).unwrap();
        assert!(!store.contains(&a.key));
        assert!(store.contains(&b.key));
        let reopened = ResultStore::open(&dir).unwrap();
        assert!(!reopened.contains(&a.key));
        assert!(reopened.verify().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_checksum_manifest_lines_still_load_and_verify_by_parse() {
        let dir = temp_store("precksum");
        let a = tiny_point(7);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.insert("figX", &a).unwrap();
        }
        // Strip the checksum field, as a manifest written before the field
        // existed would look.
        let manifest = fs::read_to_string(dir.join("manifest.jsonl")).unwrap();
        let entry: ManifestEntry = serde_json::from_str(manifest.lines().next().unwrap()).unwrap();
        let legacy = ManifestEntry {
            checksum: None,
            ..entry
        };
        fs::write(
            dir.join("manifest.jsonl"),
            format!("{}\n", serde_json::to_string(&legacy).unwrap()),
        )
        .unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.contains(&a.key));
        assert!(
            store.verify().is_empty(),
            "parseable blob passes without a checksum"
        );
        // But a corrupted blob is still caught by the parse fallback.
        fs::write(store.point_path(&a.key), "{\"key\": \"gar").unwrap();
        let issues = ResultStore::open(&dir).unwrap().verify();
        assert_eq!(issues.len(), 1);
        assert!(issues[0].problem.contains("does not parse"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_round_trips_across_reopen_and_lifts_on_success() {
        let dir = temp_store("quarantine");
        let a = tiny_point(8);
        let failure = PointFailure {
            key: a.key.clone(),
            figure: "figX".to_string(),
            label: a.spec.label.clone(),
            scheme: a.spec.scheme.id().to_string(),
            seed: a.spec.seed,
            kind: FailureKind::Panic,
            message: "boom".to_string(),
            attempts: 2,
        };
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.quarantine(&failure).unwrap();
            assert_eq!(store.quarantine_entry(&a.key), Some(&failure));
        }
        // A fresh handle sees the quarantine.
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.quarantined(), vec![&failure]);
        // A later successful execution lifts it — in memory and on reopen
        // (the blob's presence supersedes the persisted record).
        store.insert("figX", &a).unwrap();
        assert!(store.quarantine_entry(&a.key).is_none());
        assert!(
            ResultStore::open(&dir)
                .unwrap()
                .quarantine_entry(&a.key)
                .is_none(),
            "a stale quarantine line does not resurrect a healthy point"
        );
        // Clearing removes the file entirely.
        store.quarantine(&failure).unwrap();
        store.clear_quarantine().unwrap();
        assert!(store.quarantined().is_empty());
        assert!(!store.quarantine_path().exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_line_is_skipped_not_fatal() {
        let dir = temp_store("torn");
        let a = tiny_point(4);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.insert("figX", &a).unwrap();
        }
        // Simulate a kill mid-append: a half-written JSON line.
        let mut manifest = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.jsonl"))
            .unwrap();
        write!(manifest, "{{\"key\":\"deadbeef\",\"figu").unwrap();
        drop(manifest);
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(&a.key));
        fs::remove_dir_all(&dir).unwrap();
    }
}
