//! The on-disk, content-addressed result store.
//!
//! Layout under the store directory (`--store DIR`):
//!
//! ```text
//! DIR/
//!   manifest.jsonl          one ManifestEntry JSON object per line,
//!                           appended as each point completes
//!   points/<key>.json       one StoredPoint blob per executed grid point
//! ```
//!
//! The `key` is the spec's [content key](ScenarioSpec::content_key).  A point
//! counts as *present* only when both a manifest line names its key **and**
//! its blob file exists; everything else re-executes.  That rule makes the
//! store honest about interruption from either side: a process killed
//! between the blob write and the manifest append leaves an orphaned blob
//! (ignored, re-run), a manifest truncated by hand (or a torn final line)
//! drops exactly the truncated points, and deleting one `points/<key>.json`
//! invalidates exactly that point.  Writes go blob first (to a temp file,
//! then renamed into place), manifest line last, so a key listed in the
//! manifest almost always has its blob — and the presence rule covers the
//! window where it does not.

use crate::sweep::ScenarioSpec;
use pbe_netsim::SimResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One line of `manifest.jsonl`: the join record between a stored blob and
/// the figure/grid point that produced it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The point's content key (blob file name stem).
    pub key: String,
    /// Registry name of the figure that executed the point.
    pub figure: String,
    /// The scenario label of the point's spec.
    pub label: String,
    /// The scheme label (`spec.scheme.id()`).
    pub scheme: String,
    /// The expanded experiment seed.
    pub seed: u64,
}

/// One stored grid point: the expanded spec that ran and its full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredPoint {
    /// The point's content key (matches the file name and manifest line).
    pub key: String,
    /// The fully expanded spec (scheme and seed substituted).
    pub spec: ScenarioSpec,
    /// The simulator's result for that spec.
    pub result: SimResult,
}

/// A content-addressed directory of executed grid points.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    /// Every parsed manifest line, in file order (duplicates possible when a
    /// point was invalidated and re-run; the last line wins).
    entries: Vec<ManifestEntry>,
    /// key → index into `entries`, restricted to keys whose blob exists.
    present: BTreeMap<String, usize>,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// Malformed manifest lines — e.g. the torn final line of an interrupted
    /// run — are skipped, not fatal: their points simply count as absent and
    /// re-execute.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("points"))?;
        let mut entries = Vec::new();
        let mut present = BTreeMap::new();
        let manifest = dir.join("manifest.jsonl");
        if manifest.exists() {
            for line in fs::read_to_string(&manifest)?.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let Ok(entry) = serde_json::from_str::<ManifestEntry>(line) else {
                    continue;
                };
                if dir
                    .join("points")
                    .join(format!("{}.json", entry.key))
                    .is_file()
                {
                    present.insert(entry.key.clone(), entries.len());
                }
                entries.push(entry);
            }
        }
        Ok(ResultStore {
            dir,
            entries,
            present,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.jsonl")
    }

    /// Path of a point's blob file.
    pub fn point_path(&self, key: &str) -> PathBuf {
        self.dir.join("points").join(format!("{key}.json"))
    }

    /// Number of present points (manifest line **and** blob).
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// True when the store holds no present points.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Whether a point is present.
    pub fn contains(&self, key: &str) -> bool {
        self.present.contains_key(key)
    }

    /// The manifest entry of a present point.
    pub fn entry(&self, key: &str) -> Option<&ManifestEntry> {
        self.present.get(key).map(|&i| &self.entries[i])
    }

    /// Every manifest entry whose point is present, in manifest order.
    pub fn present_entries(&self) -> Vec<&ManifestEntry> {
        let mut indices: Vec<usize> = self.present.values().copied().collect();
        indices.sort_unstable();
        indices.into_iter().map(|i| &self.entries[i]).collect()
    }

    /// Load a present point's blob.  Returns `None` for absent keys and for
    /// blobs that no longer parse (both mean: re-execute).
    pub fn get(&self, key: &str) -> Option<StoredPoint> {
        if !self.contains(key) {
            return None;
        }
        let text = fs::read_to_string(self.point_path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist one executed point: blob first (temp file + rename), manifest
    /// line last.
    pub fn insert(&mut self, figure: &str, point: &StoredPoint) -> io::Result<()> {
        let entry = ManifestEntry {
            key: point.key.clone(),
            figure: figure.to_string(),
            label: point.spec.label.clone(),
            scheme: point.spec.scheme.id().to_string(),
            seed: point.spec.seed,
        };
        let blob = serde_json::to_string(point).expect("stored point serializes");
        let path = self.point_path(&point.key);
        let tmp = self.dir.join("points").join(format!(".{}.tmp", point.key));
        fs::write(&tmp, blob)?;
        fs::rename(&tmp, &path)?;
        let line = serde_json::to_string(&entry).expect("manifest entry serializes");
        let mut manifest = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        writeln!(manifest, "{line}")?;
        self.present.insert(entry.key.clone(), self.entries.len());
        self.entries.push(entry);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_netsim::SchemeChoice;
    use pbe_stats::time::Duration;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pbe_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_point(seed: u64) -> StoredPoint {
        let spec =
            ScenarioSpec::single_flow("store", SchemeChoice::Pbe, Duration::from_millis(200))
                .seed(seed);
        let result = spec.run();
        StoredPoint {
            key: spec.content_key(),
            spec,
            result,
        }
    }

    #[test]
    fn points_round_trip_and_reopen() {
        let dir = temp_store("roundtrip");
        let point = tiny_point(1);
        let mut store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.insert("figX", &point).unwrap();
        assert!(store.contains(&point.key));
        assert_eq!(store.entry(&point.key).unwrap().figure, "figX");

        // A fresh handle sees the same state, and the blob is byte-faithful.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        let loaded = reopened.get(&point.key).unwrap();
        assert_eq!(
            serde_json::to_string(&loaded.result).unwrap(),
            serde_json::to_string(&point.result).unwrap()
        );
        assert_eq!(loaded.spec.content_key(), point.key);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_blob_or_manifest_line_means_absent() {
        let dir = temp_store("absent");
        let a = tiny_point(2);
        let b = tiny_point(3);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.insert("figX", &a).unwrap();
            store.insert("figX", &b).unwrap();
        }
        // Deleting a blob invalidates exactly that point.
        fs::remove_file(dir.join("points").join(format!("{}.json", a.key))).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(!store.contains(&a.key));
        assert!(store.contains(&b.key));

        // Truncating the manifest (simulated kill) invalidates the tail even
        // though the blob survives.
        let manifest = fs::read_to_string(dir.join("manifest.jsonl")).unwrap();
        let first_line: String = manifest.lines().next().unwrap().to_string();
        fs::write(dir.join("manifest.jsonl"), format!("{first_line}\n")).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(!store.contains(&b.key));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_line_is_skipped_not_fatal() {
        let dir = temp_store("torn");
        let a = tiny_point(4);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.insert("figX", &a).unwrap();
        }
        // Simulate a kill mid-append: a half-written JSON line.
        let mut manifest = fs::OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.jsonl"))
            .unwrap();
        write!(manifest, "{{\"key\":\"deadbeef\",\"figu").unwrap();
        drop(manifest);
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(&a.key));
        fs::remove_dir_all(&dir).unwrap();
    }
}
