//! The location library used by the stationary-link experiments.
//!
//! The paper tests 40 stationary locations covering every combination of
//! indoor/outdoor, one/two/three aggregated cells and busy/idle cell load
//! (§6.3.1), plus the mobility trajectory of §6.3.2 and the controlled
//! competition of §6.3.3.  This module generates the equivalent scenario
//! matrix for the simulator: each location is a (RSSI, cells, load) triple
//! with a deterministic per-location seed.

use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimConfig};
use pbe_stats::time::Duration;
use serde::{Deserialize, Serialize};

/// Indoor or outdoor placement (affects the baseline RSSI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocationKind {
    /// Indoor: moderate signal.
    Indoor,
    /// Outdoor: stronger signal.
    Outdoor,
}

/// One stationary test location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Location {
    /// Index within the library (0..40).
    pub index: usize,
    /// Indoor or outdoor.
    pub kind: LocationKind,
    /// Number of cells the device at this location can aggregate (1..=3).
    pub aggregated_cells: usize,
    /// Whether the cell is busy (daytime) or idle (late night).
    pub busy: bool,
    /// Baseline RSSI of the primary cell in dBm.
    pub rssi_dbm: f64,
}

impl Location {
    /// Background-load profile of this location.
    pub fn load(&self) -> CellLoadProfile {
        if self.busy {
            CellLoadProfile::busy()
        } else {
            CellLoadProfile::idle()
        }
    }

    /// Deterministic seed for this location.
    pub fn seed(&self) -> u64 {
        0xC0FFEE ^ (self.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Build a single-flow simulation config for this location.
    pub fn sim_config(&self, scheme: SchemeChoice, duration: Duration) -> SimConfig {
        let ue = UeId(1);
        let cells: Vec<CellId> = (0..3).map(|i| CellId(i as u16)).collect();
        SimConfig {
            cellular: CellularConfig::default(),
            load: self.load(),
            seed: self.seed(),
            duration,
            ues: vec![(
                UeConfig::new(ue, cells, self.aggregated_cells, self.rssi_dbm),
                MobilityTrace::stationary(self.rssi_dbm),
            )],
            flows: vec![FlowConfig::bulk(1, ue, scheme, duration)],
            trajectories: Vec::new(),
            shards: None,
            backhaul: None,
            faults: None,
        }
    }
}

/// The 40-location library of §6.3.1.
#[derive(Debug, Clone)]
pub struct ScenarioLibrary {
    locations: Vec<Location>,
}

impl Default for ScenarioLibrary {
    fn default() -> Self {
        ScenarioLibrary::paper_40_locations()
    }
}

impl ScenarioLibrary {
    /// The paper's 40 stationary locations: 25 busy, 15 idle, covering
    /// indoor/outdoor and 1/2/3 aggregated cells.
    pub fn paper_40_locations() -> Self {
        let mut locations = Vec::with_capacity(40);
        // 25 busy + 15 idle; cells cycle 1,2,3; kind alternates; RSSI spreads
        // between -81 and -103 dBm.
        for i in 0..40usize {
            let busy = i < 25;
            let kind = if i % 2 == 0 {
                LocationKind::Indoor
            } else {
                LocationKind::Outdoor
            };
            let aggregated_cells = 1 + (i % 3);
            let base = match kind {
                LocationKind::Indoor => -95.0,
                LocationKind::Outdoor => -86.0,
            };
            let rssi = base + (i % 5) as f64 * 2.0;
            locations.push(Location {
                index: i,
                kind,
                aggregated_cells,
                busy,
                rssi_dbm: rssi,
            });
        }
        ScenarioLibrary { locations }
    }

    /// A small subset for quick runs (used by tests and smoke benchmarks):
    /// `count` locations sampled evenly across the library.
    pub fn subset(count: usize) -> Vec<Location> {
        let lib = ScenarioLibrary::paper_40_locations();
        let step = (lib.locations.len() / count.max(1)).max(1);
        lib.locations
            .iter()
            .step_by(step)
            .take(count)
            .cloned()
            .collect()
    }

    /// All 40 locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Locations filtered by load.
    pub fn by_load(&self, busy: bool) -> Vec<&Location> {
        self.locations.iter().filter(|l| l.busy == busy).collect()
    }
}

/// The paper's scheme list in the order the figures print them.
pub fn paper_schemes() -> Vec<(SchemeChoice, &'static str)> {
    vec![
        (SchemeChoice::Pbe, "PBE"),
        (SchemeChoice::Baseline(SchemeName::Bbr), "BBR"),
        (SchemeChoice::Baseline(SchemeName::Cubic), "CUBIC"),
        (SchemeChoice::Baseline(SchemeName::Verus), "Verus"),
        (SchemeChoice::Baseline(SchemeName::Sprout), "Sprout"),
        (SchemeChoice::Baseline(SchemeName::Copa), "Copa"),
        (SchemeChoice::Baseline(SchemeName::Pcc), "PCC"),
        (SchemeChoice::Baseline(SchemeName::Vivace), "Vivace"),
    ]
}

/// The four "high-throughput" schemes of Fig. 12.
pub fn high_throughput_schemes() -> Vec<(SchemeChoice, &'static str)> {
    vec![
        (SchemeChoice::Pbe, "PBE"),
        (SchemeChoice::Baseline(SchemeName::Bbr), "BBR"),
        (SchemeChoice::Baseline(SchemeName::Cubic), "CUBIC"),
        (SchemeChoice::Baseline(SchemeName::Verus), "Verus"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_matches_paper_counts() {
        let lib = ScenarioLibrary::paper_40_locations();
        assert_eq!(lib.locations().len(), 40);
        assert_eq!(lib.by_load(true).len(), 25);
        assert_eq!(lib.by_load(false).len(), 15);
        // All three aggregation levels appear.
        for cells in 1..=3usize {
            assert!(lib.locations().iter().any(|l| l.aggregated_cells == cells));
        }
    }

    #[test]
    fn seeds_are_distinct_and_stable() {
        let lib = ScenarioLibrary::paper_40_locations();
        let mut seeds: Vec<u64> = lib.locations().iter().map(|l| l.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 40);
        assert_eq!(
            lib.locations()[3].seed(),
            ScenarioLibrary::paper_40_locations().locations()[3].seed()
        );
    }

    #[test]
    fn subset_is_small_and_spread() {
        let sub = ScenarioLibrary::subset(4);
        assert_eq!(sub.len(), 4);
        assert!(sub.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn sim_config_reflects_location() {
        let lib = ScenarioLibrary::paper_40_locations();
        let loc = &lib.locations()[1];
        let cfg = loc.sim_config(SchemeChoice::Pbe, Duration::from_secs(5));
        assert_eq!(cfg.ues[0].0.max_aggregated_cells, loc.aggregated_cells);
        assert_eq!(cfg.flows.len(), 1);
        assert_eq!(cfg.seed, loc.seed());
    }

    #[test]
    fn scheme_lists() {
        assert_eq!(paper_schemes().len(), 8);
        assert_eq!(high_throughput_schemes().len(), 4);
    }
}
