//! Minimal aligned-text table printer used by every experiment binary.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must have the same number of columns as the header).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append one row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as CSV (RFC 4180 quoting: cells containing commas,
    /// quotes or newlines are quoted, embedded quotes doubled).  This is the
    /// single CSV formatter of the experiment harness — the sweep report
    /// writer routes every `--format csv` table through it.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["scheme", "tput", "delay"]);
        t.row_display(&["PBE", "55.2", "48"]);
        t.row_display(&["BBR", "54.9", "156"]);
        let s = t.render();
        assert!(s.contains("scheme"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_only_what_needs_quoting() {
        let mut t = TextTable::new(&["scenario", "note"]);
        t.row_display(&["plain", "ok"]);
        t.row_display(&["with, comma", "say \"hi\""]);
        assert_eq!(
            t.to_csv(),
            "scenario,note\nplain,ok\n\"with, comma\",\"say \"\"hi\"\"\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_display(&["only one"]);
    }
}
