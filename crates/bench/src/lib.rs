//! Experiment harness for the PBE-CC reproduction.
//!
//! Every table and figure of the paper's evaluation maps to one binary in
//! `src/bin/` (see `DESIGN.md` §3 for the index and `EXPERIMENTS.md` for the
//! recorded results).  The binaries print plot-ready text tables; the
//! Criterion benches under `benches/` measure the computational cost of the
//! building blocks (capacity estimation, scheduling, blind decoding, the
//! congestion-control update paths, and a short end-to-end simulation).

pub mod scenarios;
pub mod table;

pub use scenarios::{Location, LocationKind, ScenarioLibrary};
pub use table::TextTable;
