//! Experiment harness for the PBE-CC reproduction.
//!
//! Every table and figure of the paper's evaluation maps to one binary in
//! `src/bin/` (the top-level `README.md` carries the figure → binary
//! reproduction table).  The binaries print plot-ready tables;
//! the Criterion benches under `benches/` measure the computational cost of
//! the building blocks (capacity estimation, scheduling, blind decoding, the
//! congestion-control update paths, and a short end-to-end simulation).
//!
//! The evaluation grid itself — scenario × scheme × seed — is a first-class
//! subsystem in [`sweep`]: declarative [`ScenarioSpec`]s expand through a
//! [`SweepGrid`] and execute on all cores via [`SweepRunner`], with results
//! aggregated into a [`SweepReport`] and rendered by one shared
//! text/CSV/JSON writer.  The stationary, mobility, competition,
//! multi-connection and fairness figure binaries all run on it.
//!
//! On top of the sweep sits the [`artifact`] pipeline: a registry of every
//! sweep-backed figure plus a content-addressed on-disk result store, so
//! `pbe-bench artifact --all --store DIR` reproduces the whole evaluation
//! and a re-run only executes the grid points whose content key is missing.

#![warn(missing_docs)]

pub mod artifact;
pub mod perf;
pub mod scenarios;
pub mod sweep;
pub mod table;

pub use artifact::{ArtifactArgs, ArtifactSummary, FigureSpec, ResultStore};
pub use scenarios::{Location, LocationKind, ScenarioLibrary};
pub use sweep::{CityScale, ScenarioSpec, SweepGrid, SweepReport, SweepRunner};
pub use table::TextTable;
