//! The shared report writer and common CLI arguments of the `fig*` binaries.
//!
//! Before the sweep harness, every experiment binary hand-rolled its own
//! stdout formatting, and adding CSV output or an output directory meant
//! copying that code again.  This module is the single copy: a
//! [`ReportWriter`] renders each named table as aligned text, CSV or JSON
//! and sends it to stdout or a `--out` directory, and [`SweepArgs`] parses
//! the command line every migrated binary shares:
//!
//! ```text
//! fig13_14_stationary [SECONDS] [--workers N] [--serial] [--out DIR] [--format text|csv|json]
//! ```

use super::runner::{SweepReport, SweepRunner};
use crate::table::TextTable;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Output format of the sweep tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned plain-text tables (the default; what the paper's figures are
    /// transcribed from).
    Text,
    /// Comma-separated values, one table per file (or stdout stream).
    Csv,
    /// The full [`SweepReport`] as JSON (specs, results and timing).
    Json,
}

/// Command-line arguments shared by every sweep-based experiment binary.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Simulated seconds per scenario (binaries supply their own default).
    pub seconds: Option<u64>,
    /// Worker threads; 0 means all available cores.
    pub workers: usize,
    /// Directory to write report files into (stdout when absent).
    pub out_dir: Option<PathBuf>,
    /// Table output format.
    pub format: OutputFormat,
}

impl SweepArgs {
    /// Parse `std::env::args()`.  Panics with a usage message on malformed
    /// input — these are experiment binaries, not long-running services.
    pub fn parse() -> Self {
        SweepArgs::from_iter(std::env::args().skip(1))
    }

    fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut parsed = SweepArgs {
            seconds: None,
            workers: 0,
            out_dir: None,
            format: OutputFormat::Text,
        };
        let usage =
            "usage: [SECONDS] [--workers N] [--serial] [--out DIR] [--format text|csv|json]";
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--workers" | "-w" => {
                    let n = iter.next().and_then(|v| v.parse().ok());
                    parsed.workers =
                        n.unwrap_or_else(|| panic!("--workers needs a count; {usage}"));
                }
                "--serial" => parsed.workers = 1,
                "--out" | "-o" => {
                    let dir = iter
                        .next()
                        .unwrap_or_else(|| panic!("--out needs a directory; {usage}"));
                    parsed.out_dir = Some(PathBuf::from(dir));
                }
                "--format" | "-f" => match iter.next().as_deref() {
                    Some("text") => parsed.format = OutputFormat::Text,
                    Some("csv") => parsed.format = OutputFormat::Csv,
                    Some("json") => parsed.format = OutputFormat::Json,
                    _ => panic!("--format takes text, csv or json; {usage}"),
                },
                "--csv" => parsed.format = OutputFormat::Csv,
                "--json" => parsed.format = OutputFormat::Json,
                other => match other.parse() {
                    Ok(seconds) => parsed.seconds = Some(seconds),
                    Err(_) => panic!("unrecognized argument {other:?}; {usage}"),
                },
            }
        }
        parsed
    }

    /// The per-scenario duration, with the binary's default.
    pub fn seconds_or(&self, default: u64) -> u64 {
        self.seconds.unwrap_or(default)
    }

    /// A [`SweepRunner`] honouring `--workers` / `--serial`.
    pub fn runner(&self) -> SweepRunner {
        SweepRunner::new().workers(self.workers)
    }

    /// The report writer honouring `--out` and `--format` (creates the
    /// output directory if needed).
    pub fn writer(&self) -> io::Result<ReportWriter> {
        ReportWriter::new(self.format, self.out_dir.clone())
    }
}

/// Renders named tables in the selected format, to stdout or an output
/// directory.
#[derive(Debug, Clone)]
pub struct ReportWriter {
    format: OutputFormat,
    out_dir: Option<PathBuf>,
}

impl ReportWriter {
    /// A writer for the given format and destination (creating the
    /// directory when one is given).
    pub fn new(format: OutputFormat, out_dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(dir) = &out_dir {
            fs::create_dir_all(dir)?;
        }
        Ok(ReportWriter { format, out_dir })
    }

    /// True when the caller should emit the whole [`SweepReport`] as JSON
    /// (via [`ReportWriter::sweep_json`]) instead of per-figure tables.
    pub fn wants_json(&self) -> bool {
        self.format == OutputFormat::Json
    }

    /// Emit one named table: aligned text or CSV, to stdout (prefixed by a
    /// `=== title ===` section header) or to `<out>/<name>.{txt,csv}`.
    pub fn table(&self, name: &str, title: &str, table: &TextTable) -> io::Result<()> {
        let (rendered, extension) = match self.format {
            OutputFormat::Csv => (table.to_csv(), "csv"),
            _ => (table.render(), "txt"),
        };
        self.emit(name, title, &rendered, extension)
    }

    /// Emit the whole sweep report as JSON, to stdout or `<out>/<name>.json`.
    pub fn sweep_json(&self, name: &str, report: &SweepReport) -> io::Result<()> {
        let json = serde_json::to_string(report).expect("sweep report serializes");
        self.emit(name, name, &json, "json")
    }

    /// Emit free-form notes (reference text, section banners).  Notes print
    /// to stdout only when the tables go to files (`--out`) or stdout is the
    /// aligned-text report; when stdout *is* the CSV or JSON stream, prose
    /// would corrupt it, so notes are dropped.
    pub fn note(&self, text: &str) {
        if self.format == OutputFormat::Text || self.out_dir.is_some() {
            println!("{text}");
        }
    }

    /// Emit the sweep's wall-clock statistics — on **stderr**, because the
    /// numbers change run to run and stdout must stay byte-identical across
    /// processes (the repo's determinism check `cmp`s it).
    pub fn timing(&self, report: &SweepReport) {
        eprintln!("sweep: {}", report.stats_line());
    }

    fn emit(&self, name: &str, title: &str, rendered: &str, extension: &str) -> io::Result<()> {
        // Aligned-text output keeps its section title (CSV/JSON stay pure
        // data — for files the title lives in the file name).
        let titled;
        let content = if self.format == OutputFormat::Text {
            titled = format!("=== {title} ===\n\n{rendered}");
            &titled
        } else {
            rendered
        };
        match &self.out_dir {
            Some(dir) => {
                let path = dir.join(format!("{name}.{extension}"));
                fs::write(&path, content)?;
                println!("wrote {}", path.display());
            }
            None => println!("{content}"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> SweepArgs {
        SweepArgs::from_iter(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_the_shared_flag_set() {
        let a = args(&["12", "--workers", "4", "--out", "/tmp/x", "--format", "csv"]);
        assert_eq!(a.seconds_or(8), 12);
        assert_eq!(a.workers, 4);
        assert_eq!(a.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(a.format, OutputFormat::Csv);
        assert_eq!(a.runner().worker_count(), 4);
    }

    #[test]
    fn defaults_are_all_cores_text_stdout() {
        let a = args(&[]);
        assert_eq!(a.seconds_or(8), 8);
        assert_eq!(a.workers, 0);
        assert!(a.out_dir.is_none());
        assert_eq!(a.format, OutputFormat::Text);
        assert!(a.runner().worker_count() >= 1);
    }

    #[test]
    fn serial_and_format_shortcuts() {
        let a = args(&["--serial", "--json"]);
        assert_eq!(a.runner().worker_count(), 1);
        assert_eq!(a.format, OutputFormat::Json);
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn rejects_unknown_flags() {
        args(&["--frobnicate"]);
    }

    #[test]
    fn tables_land_in_the_output_directory() {
        let dir = std::env::temp_dir().join("pbe_sweep_report_test");
        let _ = fs::remove_dir_all(&dir);
        let writer = ReportWriter::new(OutputFormat::Csv, Some(dir.clone())).unwrap();
        let mut t = TextTable::new(&["scheme", "tput"]);
        t.row_display(&["PBE", "55.2"]);
        writer.table("fig_test", "test table", &t).unwrap();
        let written = fs::read_to_string(dir.join("fig_test.csv")).unwrap();
        assert_eq!(written, "scheme,tput\nPBE,55.2\n");
        fs::remove_dir_all(&dir).unwrap();
    }
}
