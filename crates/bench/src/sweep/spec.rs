//! Declarative scenario specifications and grid expansion.

use crate::scenarios::Location;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{
    BackhaulConfig, CellTrajectory, FaultSchedule, FlowConfig, SchemeChoice, SimConfig, SimResult,
    Simulation,
};
use pbe_stats::rng::derive_seed;
use pbe_stats::time::Duration;
use serde::{Deserialize, Serialize, Value};

/// One fully specified point of an evaluation grid.
///
/// A spec carries everything a [`SimConfig`] needs plus the sweep metadata:
/// a human-readable `label` (carried through to reports), the `scheme` under
/// test, and the set of flows that scheme drives (`sweep_flows` — background
/// flows such as the §6.3.3 competitor keep their own configured scheme).
/// Specs serialize to JSON, so a scenario catalog can live beside the code;
/// see `docs/MIGRATION.md` for a commented example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name shown in reports (location, trace, case, …).
    pub label: String,
    /// The congestion-control scheme under test.
    pub scheme: SchemeChoice,
    /// Experiment seed; every stochastic component derives from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: Duration,
    /// Cellular-network configuration (cells, CA policy, overheads).
    pub cellular: CellularConfig,
    /// Background-traffic load profile applied to every cell.
    pub load: CellLoadProfile,
    /// Mobile devices and their mobility traces.
    pub ues: Vec<(UeConfig, MobilityTrace)>,
    /// All end-to-end flows of the scenario.
    pub flows: Vec<FlowConfig>,
    /// Ids of the flows driven by `scheme`; the rest keep their configured
    /// scheme (competitors, fixed-rate probes).
    pub sweep_flows: Vec<u32>,
    /// Per-cell trajectory overrides (multi-cell mobility — the city-scale
    /// and handover scenario families).  `default` keeps pre-handover
    /// scenario JSON loadable.
    #[serde(default)]
    pub trajectories: Vec<CellTrajectory>,
    /// Shard count for the cellular tick engine (`None` = serial; any `Some`
    /// value is byte-identical to serial).  `default` keeps pre-shard
    /// scenario JSON loadable.
    #[serde(default)]
    pub shards: Option<usize>,
    /// Shared wired backhaul topology (`None` = per-flow private paths; see
    /// [`SimConfig::backhaul`]).  `default` keeps pre-backhaul scenario JSON
    /// loadable.
    #[serde(default)]
    pub backhaul: Option<BackhaulConfig>,
    /// Deterministic fault schedule (cell outages, link flaps, decode-loss
    /// bursts; see [`SimConfig::faults`]).  `default` keeps pre-fault
    /// scenario JSON loadable, and an empty schedule elides from the content
    /// key exactly like `None`.
    #[serde(default)]
    pub faults: Option<FaultSchedule>,
}

impl ScenarioSpec {
    /// An empty scenario on the default three-cell network with no
    /// background load.
    pub fn new(label: impl Into<String>, scheme: SchemeChoice, duration: Duration) -> Self {
        ScenarioSpec {
            label: label.into(),
            scheme,
            seed: 0,
            duration,
            cellular: CellularConfig::default(),
            load: CellLoadProfile::none(),
            ues: Vec::new(),
            flows: Vec::new(),
            sweep_flows: Vec::new(),
            trajectories: Vec::new(),
            shards: None,
            backhaul: None,
            faults: None,
        }
    }

    /// The paper's default single-device, single-bulk-flow scenario: one UE
    /// on the primary cell at −85 dBm, one flow driven by the swept scheme.
    pub fn single_flow(label: impl Into<String>, scheme: SchemeChoice, duration: Duration) -> Self {
        let ue = UeId(1);
        ScenarioSpec::new(label, scheme, duration)
            .ue(
                UeConfig::new(ue, vec![CellId(0)], 1, -85.0),
                MobilityTrace::stationary(-85.0),
            )
            .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
    }

    /// A stationary-location scenario from the §6.3.1 library: the
    /// location's RSSI, aggregation level, load profile and per-location
    /// seed, with one bulk flow under test.
    pub fn from_location(label: impl Into<String>, loc: &Location, duration: Duration) -> Self {
        let ue = UeId(1);
        let cells: Vec<CellId> = (0..3).map(|i| CellId(i as u16)).collect();
        ScenarioSpec::new(label, SchemeChoice::Pbe, duration)
            .load(loc.load())
            .seed(loc.seed())
            .ue(
                UeConfig::new(ue, cells, loc.aggregated_cells, loc.rssi_dbm),
                MobilityTrace::stationary(loc.rssi_dbm),
            )
            .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
    }

    /// Set the cellular-network configuration.
    pub fn cellular(mut self, cellular: CellularConfig) -> Self {
        self.cellular = cellular;
        self
    }

    /// Set the background-load profile.
    pub fn load(mut self, load: CellLoadProfile) -> Self {
        self.load = load;
        self
    }

    /// Set the base experiment seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a mobile device with its mobility trace.
    pub fn ue(mut self, config: UeConfig, trace: MobilityTrace) -> Self {
        self.ues.push((config, trace));
        self
    }

    /// Add a flow driven by the swept scheme.
    pub fn flow(mut self, flow: FlowConfig) -> Self {
        self.sweep_flows.push(flow.id);
        self.flows.push(flow);
        self
    }

    /// Add a background flow that keeps its own configured scheme (e.g. the
    /// fixed-rate competitor of §6.3.3).
    pub fn background_flow(mut self, flow: FlowConfig) -> Self {
        self.flows.push(flow);
        self
    }

    /// Route every flow through a shared backhaul topology (see
    /// [`SimConfig::backhaul`]).
    pub fn backhaul(mut self, backhaul: BackhaulConfig) -> Self {
        self.backhaul = Some(backhaul);
        self
    }

    /// Inject a deterministic fault schedule (see [`SimConfig::faults`]).
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Override the RSSI trajectory one UE sees towards one of its
    /// configured cells (multi-cell mobility; see
    /// [`SimConfig::trajectories`]).
    pub fn trajectory(mut self, ue: UeId, cell: CellId, trace: MobilityTrace) -> Self {
        self.trajectories.push(CellTrajectory { ue, cell, trace });
        self
    }

    /// Lower the spec onto a plain simulator configuration, substituting the
    /// scheme under test into the swept flows.
    pub fn sim_config(&self) -> SimConfig {
        let flows = self
            .flows
            .iter()
            .map(|f| {
                let mut f = f.clone();
                if self.sweep_flows.contains(&f.id) {
                    f.scheme = self.scheme.clone();
                }
                f
            })
            .collect();
        SimConfig {
            cellular: self.cellular.clone(),
            load: self.load,
            seed: self.seed,
            duration: self.duration,
            ues: self.ues.clone(),
            flows,
            trajectories: self.trajectories.clone(),
            shards: self.shards,
            backhaul: self.backhaul.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Run this single scenario to completion (sugar for the one-off case;
    /// sweeps go through [`SweepRunner`](crate::sweep::SweepRunner)).
    pub fn run(&self) -> SimResult {
        Simulation::new(self.sim_config()).run()
    }

    /// The stable content key addressing this spec in the artifact result
    /// store: a 128-bit FNV-1a over the [canonical](canonical_json)
    /// serialization.  Two specs share a key exactly when they describe the
    /// same experiment, however their JSON was spelled (field order, explicit
    /// serde defaults) and whichever release wrote it (fields later added
    /// with `#[serde(default)]` do not disturb old keys while they stay at
    /// their default).
    pub fn content_key(&self) -> String {
        content_key_of_value(&serde_json::to_value(self).expect("spec serializes"))
    }

    /// The canonical serialization [`ScenarioSpec::content_key`] hashes —
    /// exposed so golden tests can pin the exact hash input.
    pub fn canonical_json(&self) -> String {
        canonical_json(&serde_json::to_value(self).expect("spec serializes"))
    }
}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

/// Canonicalize a serialized value tree for content hashing.
///
/// Two rules, applied recursively:
///
/// 1. **Object entries sort by key**, so the hash is independent of struct
///    field declaration order and of the order a JSON file spelled them in.
/// 2. **Entries whose canonical value is `null`, `[]` or `{}` are dropped.**
///    Serde-defaulted optional fields (`shards: None`, `backhaul: None`,
///    `trajectories: []`) hash identically whether they are written out or
///    omitted — and a field added in a later release does not change the key
///    of any already-stored point that leaves it at its default.
pub fn canonical_value(v: &Value) -> Value {
    match v {
        Value::Array(items) => Value::Array(items.iter().map(canonical_value).collect()),
        Value::Object(entries) => {
            let mut canon: Vec<(String, Value)> = entries
                .iter()
                .map(|(k, val)| (k.clone(), canonical_value(val)))
                .filter(|(_, val)| match val {
                    Value::Null => false,
                    Value::Array(items) => !items.is_empty(),
                    Value::Object(fields) => !fields.is_empty(),
                    _ => true,
                })
                .collect();
            canon.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(canon)
        }
        other => other.clone(),
    }
}

/// Render a value tree in canonical form (see [`canonical_value`]) as
/// compact JSON — the exact byte string the content key hashes.
pub fn canonical_json(v: &Value) -> String {
    serde_json::to_string(&canonical_value(v)).expect("canonical value renders")
}

/// Content key of an already-serialized value tree: 128-bit FNV-1a over the
/// canonical JSON, as 32 hex digits.  Parsing a stored spec's JSON and
/// hashing the parsed tree gives the same key the live
/// [`ScenarioSpec::content_key`] computes.
pub fn content_key_of_value(v: &Value) -> String {
    pbe_stats::fnv1a_128_hex(canonical_json(v).as_bytes())
}

/// A set of base scenarios crossed with a scheme axis and a seed axis.
///
/// `expand()` yields `scenarios × schemes × seeds` [`ScenarioSpec`]s, exactly
/// one per grid point, in deterministic scenario-major order (then scheme,
/// then seed) — the order reports print in, independent of how many workers
/// later execute the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepGrid {
    /// The base scenarios (their `scheme`/`seed` fields are the defaults the
    /// axes override).
    pub scenarios: Vec<ScenarioSpec>,
    /// Scheme axis.  Empty means "keep each scenario's own scheme".
    pub schemes: Vec<SchemeChoice>,
    /// Seed-replica axis: each entry is mixed into the scenario's base seed
    /// with [`derive_seed`].  Empty means one replica with the base seed.
    pub seeds: Vec<u64>,
}

impl SweepGrid {
    /// A grid over the given base scenarios with no extra axes.
    pub fn over(scenarios: Vec<ScenarioSpec>) -> Self {
        SweepGrid {
            scenarios,
            schemes: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Set the scheme axis.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = SchemeChoice>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Set the seed axis to explicit replica indices.
    ///
    /// Entries are **not** experiment seeds: each index is mixed into the
    /// scenario's base seed with [`derive_seed`] (index 0 keeps the base
    /// seed unchanged).  To run one specific experiment seed, set it as the
    /// scenario's base seed and leave this axis empty.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Set the seed axis to `count` replicas (indices `0..count`; replica 0
    /// keeps each scenario's base seed).
    pub fn seed_replicas(self, count: u64) -> Self {
        self.seeds((0..count).collect::<Vec<_>>())
    }

    /// Number of grid points `expand()` will produce.
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.schemes.len().max(1) * self.seeds.len().max(1)
    }

    /// True if the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full cross product, exactly once per point.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut points = Vec::with_capacity(self.len());
        for base in &self.scenarios {
            let schemes: Vec<SchemeChoice> = if self.schemes.is_empty() {
                vec![base.scheme.clone()]
            } else {
                self.schemes.clone()
            };
            let seeds: Vec<u64> = if self.seeds.is_empty() {
                vec![0]
            } else {
                self.seeds.clone()
            };
            for scheme in &schemes {
                for &replica in &seeds {
                    let mut spec = base.clone();
                    spec.scheme = scheme.clone();
                    spec.seed = derive_seed(base.seed, replica);
                    points.push(spec);
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_config_substitutes_only_swept_flows() {
        let ue = UeId(1);
        let competitor = UeId(2);
        let duration = Duration::from_secs(2);
        let spec = ScenarioSpec::new("comp", SchemeChoice::named("BBR"), duration)
            .ue(
                UeConfig::new(ue, vec![CellId(0)], 1, -85.0),
                MobilityTrace::stationary(-85.0),
            )
            .ue(
                UeConfig::new(competitor, vec![CellId(0)], 1, -85.0),
                MobilityTrace::stationary(-85.0),
            )
            .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
            .background_flow(FlowConfig::bulk(
                2,
                competitor,
                SchemeChoice::FixedRate,
                duration,
            ));
        let cfg = spec.sim_config();
        assert_eq!(cfg.flows[0].scheme, SchemeChoice::named("BBR"));
        assert_eq!(cfg.flows[1].scheme, SchemeChoice::FixedRate);
    }

    #[test]
    fn from_location_matches_the_legacy_sim_config() {
        let library = crate::scenarios::ScenarioLibrary::paper_40_locations();
        let loc = &library.locations()[7];
        let duration = Duration::from_secs(3);
        let spec = ScenarioSpec::from_location("loc7", loc, duration);
        let via_spec = spec.sim_config();
        let legacy = loc.sim_config(SchemeChoice::Pbe, duration);
        assert_eq!(
            serde_json::to_string(&via_spec).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }

    #[test]
    fn expansion_is_the_exact_cross_product() {
        let duration = Duration::from_millis(100);
        let grid = SweepGrid::over(vec![
            ScenarioSpec::single_flow("a", SchemeChoice::Pbe, duration).seed(10),
            ScenarioSpec::single_flow("b", SchemeChoice::Pbe, duration).seed(20),
        ])
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("BBR")])
        .seed_replicas(3);
        let points = grid.expand();
        assert_eq!(points.len(), grid.len());
        assert_eq!(points.len(), 2 * 2 * 3);
        // Every (label, scheme, seed) triple is distinct.
        let mut keys: Vec<String> = points
            .iter()
            .map(|p| format!("{}/{}/{}", p.label, p.scheme, p.seed))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 12);
        // Replica 0 keeps the base seed.
        assert_eq!(points[0].seed, 10);
    }

    #[test]
    fn empty_axes_keep_the_base_scenario() {
        let duration = Duration::from_millis(100);
        let base = ScenarioSpec::single_flow("a", SchemeChoice::named("Copa"), duration).seed(5);
        let points = SweepGrid::over(vec![base]).expand();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].scheme, SchemeChoice::named("Copa"));
        assert_eq!(points[0].seed, 5);
    }

    #[test]
    fn canonical_form_sorts_keys_and_drops_defaults() {
        let v = serde_json::parse(
            r#"{"zeta":1,"alpha":{"b":null,"a":2},"empty":[],"none":null,"nested":[{"y":[],"x":1}]}"#,
        )
        .unwrap();
        assert_eq!(
            canonical_json(&v),
            r#"{"alpha":{"a":2},"nested":[{"x":1}],"zeta":1}"#
        );
    }

    #[test]
    fn content_key_elides_defaulted_fields_and_ignores_order() {
        let duration = Duration::from_secs(1);
        let spec = ScenarioSpec::single_flow("key", SchemeChoice::Pbe, duration).seed(9);
        // The struct serializer writes `shards`/`backhaul` as null and
        // `trajectories` as []; the canonical form must not contain them.
        let canon = spec.canonical_json();
        assert!(!canon.contains("shards"));
        assert!(!canon.contains("backhaul"));
        assert!(!canon.contains("trajectories"));
        assert!(!canon.contains("faults"));
        // An *empty* fault schedule canonicalizes to `{}` and elides exactly
        // like `None`: old stored keys survive the field's introduction.
        let faulted = spec.clone().faults(FaultSchedule::none());
        assert_eq!(faulted.content_key(), spec.content_key());
        // A non-empty schedule is a different experiment.
        let outage = spec.clone().faults(FaultSchedule {
            cell_outages: vec![pbe_netsim::CellOutage {
                cell: CellId(0),
                start_ms: 100,
                end_ms: 200,
            }],
            ..FaultSchedule::none()
        });
        assert_ne!(outage.content_key(), spec.content_key());
        // Hashing the parsed JSON (any spelling) matches the live key.
        let text = serde_json::to_string(&spec).unwrap();
        let parsed = serde_json::parse(&text).unwrap();
        assert_eq!(content_key_of_value(&parsed), spec.content_key());
        // A semantic change moves the key.
        let other = ScenarioSpec::single_flow("key", SchemeChoice::Pbe, duration).seed(10);
        assert_ne!(other.content_key(), spec.content_key());
    }

    #[test]
    fn specs_round_trip_through_json() {
        let duration = Duration::from_secs(1);
        let spec = ScenarioSpec::single_flow("json", SchemeChoice::Pbe, duration).seed(3);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&back.sim_config()).unwrap(),
            serde_json::to_string(&spec.sim_config()).unwrap()
        );
        assert_eq!(back.label, "json");
        assert_eq!(back.sweep_flows, vec![1]);
    }
}
