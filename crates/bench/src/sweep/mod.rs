//! Declarative scenario catalog and parallel sweep harness.
//!
//! The paper's evaluation is a grid — locations/mobility traces × eight
//! congestion-control schemes × seeds — and before this module existed every
//! `fig*` binary hand-rolled its own corner of that grid and ran each point
//! serially.  The sweep harness makes the grid a first-class object:
//!
//! * [`ScenarioSpec`] — one fully specified grid point: cell profile, devices
//!   with mobility traces, flows, the scheme under test, a seed and a
//!   duration.  It is serde-serializable, so a scenario can live in a JSON
//!   file as easily as in code, and `sim_config()` lowers it onto the
//!   simulator's [`SimConfig`](pbe_netsim::SimConfig).
//! * [`SweepGrid`] — a set of base scenarios crossed with a scheme axis and a
//!   seed axis.  [`SweepGrid::expand`] produces the full cross product,
//!   exactly once per point, in a deterministic order.
//! * [`SweepRunner`] — executes a list of specs across OS threads using the
//!   shared in-tree worker pool ([`pbe_stats::pool`], also the dispatch layer
//!   of the sharded tick engine; no external dependencies).  Every
//!   scenario's randomness derives from its spec alone
//!   ([`pbe_stats::derive_seed`]), so a parallel sweep is byte-identical to a
//!   serial one; only the wall clock changes.
//! * [`SweepReport`] — the aggregated outcome: per-scenario
//!   [`SimResult`](pbe_netsim::SimResult)s plus wall-clock accounting
//!   (total elapsed, summed per-scenario busy time, parallel speedup), with
//!   JSON export and lookups by label/scheme.
//! * [`report`] — the single shared table writer (aligned text, CSV, JSON,
//!   stdout or `--out` directory) and the common CLI argument parser every
//!   migrated `fig*` binary uses.
//! * [`city`] — the `city_scale` scenario family: a grid of cells under a
//!   log-distance path-loss model with a fleet of UEs on random-waypoint
//!   trajectories, compiled into per-cell RSSI traces that exercise the
//!   inter-cell handover machinery at scale.
//! * [`fanout`] — the `fanout` scenario family: one server fanning out to
//!   many cells behind one shared aggregation link
//!   ([`pbe_netsim::BackhaulConfig`]), the scenario where the bottleneck
//!   migrates from the radio into the backhaul.
//!
//! ```
//! use pbe_bench::sweep::{ScenarioSpec, SweepGrid, SweepRunner};
//! use pbe_netsim::SchemeChoice;
//! use pbe_stats::time::Duration;
//!
//! let base = ScenarioSpec::single_flow("demo", SchemeChoice::Pbe, Duration::from_millis(300));
//! let grid = SweepGrid::over(vec![base])
//!     .schemes([SchemeChoice::Pbe, SchemeChoice::named("BBR")])
//!     .seed_replicas(2);
//! let report = SweepRunner::new().workers(2).run(grid.expand());
//! assert_eq!(report.outcomes.len(), 4); // 1 scenario × 2 schemes × 2 seeds
//! ```

pub mod city;
pub mod fanout;
pub mod report;
pub mod runner;
pub mod spec;

pub use city::CityScale;
pub use fanout::Fanout;
pub use pbe_stats::pool::run_indexed;
pub use report::{OutputFormat, ReportWriter, SweepArgs};
pub use runner::{ScenarioOutcome, SweepReport, SweepRunner};
pub use spec::{canonical_json, canonical_value, content_key_of_value, ScenarioSpec, SweepGrid};
