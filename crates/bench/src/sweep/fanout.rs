//! The `fanout` scenario family: one server, many cells, one shared
//! aggregation link.
//!
//! The paper's topology gives every flow a private wired path, so the only
//! contention is on the radio.  A deployed CDN edge looks different: one
//! server fans out to hundreds or thousands of flows whose cells all hang
//! off the same metro aggregation link, and when that link is undersized the
//! bottleneck migrates from the radio into the backhaul.  [`Fanout`]
//! generates that regime deterministically: a grid of cells, stationary UEs
//! round-robined across them (one bulk flow each), and a
//! [`BackhaulConfig::shared_aggregation`] topology whose aggregation link is
//! sized relative to the offered load.
//!
//! ```
//! use pbe_bench::sweep::{Fanout, SweepRunner};
//!
//! let spec = Fanout::new(2, 4).millis(400).scenario();
//! let report = SweepRunner::serial().run(vec![spec]);
//! assert_eq!(report.outcomes[0].result.flows.len(), 4);
//! assert_eq!(report.outcomes[0].result.backhaul_links.len(), 3);
//! ```

use super::spec::ScenarioSpec;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{Bandwidth, CellConfig, CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{BackhaulConfig, BackhaulLinkSpec, FlowConfig, SchemeChoice};
use pbe_stats::time::Duration;

/// Declarative generator of one fan-out scenario.
#[derive(Debug, Clone)]
pub struct Fanout {
    /// Scenario label carried into reports.
    pub label: String,
    /// Number of cells (each gets its own backhaul link off the shared
    /// aggregation link).
    pub cells: u16,
    /// Number of UEs/flows, assigned to cells round-robin.
    pub flows: u32,
    /// Simulated duration.
    pub duration: Duration,
    /// Experiment seed.
    pub seed: u64,
    /// Background load applied to every cell.
    pub load: CellLoadProfile,
    /// Scheme driving every flow (sweepable via the grid).
    pub scheme: SchemeChoice,
    /// Shard count handed to the simulator (`None` = serial tick engine).
    pub shards: Option<usize>,
    /// Line rate of the shared aggregation link, bits per second.
    pub agg_rate_bps: f64,
    /// Queue limit of the aggregation link, bytes.
    pub agg_queue_bytes: u64,
    /// ECN marking threshold of the aggregation link, bytes (`None`
    /// disables marking there).
    pub agg_mark_threshold_bytes: Option<u64>,
    /// Line rate of every per-cell backhaul link, bits per second.
    pub cell_rate_bps: f64,
    /// Queue limit of every per-cell backhaul link, bytes.
    pub cell_queue_bytes: u64,
}

impl Fanout {
    /// A fan-out with `flows` stationary UEs round-robined over `cells`
    /// cells, all behind one 200 Mbit/s aggregation link that marks at half
    /// its 500 kB queue.
    pub fn new(cells: u16, flows: u32) -> Self {
        assert!(cells >= 1, "a fan-out needs at least one cell");
        assert!(flows >= 1, "a fan-out needs at least one flow");
        Fanout {
            label: format!("fanout {cells} cells ({flows} flows)"),
            cells,
            flows,
            duration: Duration::from_secs(1),
            seed: 0xFA0,
            load: CellLoadProfile::none(),
            scheme: SchemeChoice::named("CUBIC"),
            shards: None,
            agg_rate_bps: 200e6,
            agg_queue_bytes: 500_000,
            agg_mark_threshold_bytes: Some(250_000),
            cell_rate_bps: 150e6,
            cell_queue_bytes: 250_000,
        }
    }

    /// Set the simulated duration in seconds.
    pub fn seconds(mut self, seconds: u64) -> Self {
        self.duration = Duration::from_secs(seconds);
        self
    }

    /// Set the simulated duration in milliseconds.
    pub fn millis(mut self, millis: u64) -> Self {
        self.duration = Duration::from_millis(millis);
        self
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scheme driving every flow.
    pub fn scheme(mut self, scheme: SchemeChoice) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the background-load profile.
    pub fn load(mut self, load: CellLoadProfile) -> Self {
        self.load = load;
        self
    }

    /// Tick the radio network on a sharded engine with this many shards
    /// (byte-identical to the serial default — the backhaul is stepped in
    /// the driver loop either way; only the wall clock changes).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Size the shared aggregation link: rate, queue limit, and a marking
    /// threshold at half the queue.
    pub fn agg(mut self, rate_bps: f64, queue_bytes: u64) -> Self {
        self.agg_rate_bps = rate_bps;
        self.agg_queue_bytes = queue_bytes;
        self.agg_mark_threshold_bytes = Some(queue_bytes / 2);
        self
    }

    /// Override the aggregation link's marking threshold (`None` disables
    /// ECN marking).
    pub fn mark_threshold(mut self, bytes: Option<u64>) -> Self {
        self.agg_mark_threshold_bytes = bytes;
        self
    }

    /// The cellular network: `cells` 10 MHz cells with the default CA and
    /// handover policies.
    pub fn cellular(&self) -> CellularConfig {
        CellularConfig {
            cells: (0..self.cells)
                .map(|i| CellConfig {
                    id: CellId(i),
                    bandwidth: Bandwidth::Mhz10,
                    carrier_ghz: 1.94,
                    max_spatial_streams: 2,
                })
                .collect(),
            ..CellularConfig::default()
        }
    }

    /// The shared-aggregation backhaul of the fan-out.
    pub fn backhaul(&self) -> BackhaulConfig {
        let cell_ids: Vec<CellId> = (0..self.cells).map(CellId).collect();
        let mut agg = BackhaulLinkSpec::new(
            "agg",
            self.agg_rate_bps,
            Duration::from_millis(2),
            self.agg_queue_bytes,
        );
        agg.mark_threshold_bytes = self.agg_mark_threshold_bytes;
        BackhaulConfig::shared_aggregation(&cell_ids, agg, |cell| {
            BackhaulLinkSpec::new(
                format!("cell-{}", cell.0),
                self.cell_rate_bps,
                Duration::from_millis(1),
                self.cell_queue_bytes,
            )
        })
    }

    /// Compile the scenario: grid cells, stationary UEs round-robined over
    /// them (one bulk flow each), and the shared-aggregation backhaul.
    pub fn scenario(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(self.label.clone(), self.scheme.clone(), self.duration)
            .cellular(self.cellular())
            .load(self.load)
            .seed(self.seed)
            .backhaul(self.backhaul());
        spec.shards = self.shards;
        for i in 0..self.flows {
            let ue = UeId(i + 1);
            let cell = CellId((i % u32::from(self.cells)) as u16);
            spec = spec
                .ue(
                    UeConfig::new(ue, vec![cell], 1, -85.0),
                    MobilityTrace::stationary(-85.0),
                )
                .flow(FlowConfig::bulk(
                    i + 1,
                    ue,
                    self.scheme.clone(),
                    self.duration,
                ));
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRunner;

    #[test]
    fn scenario_shape_matches_the_fanout() {
        let spec = Fanout::new(6, 20).scenario();
        assert_eq!(spec.cellular.cells.len(), 6);
        assert_eq!(spec.ues.len(), 20);
        assert_eq!(spec.flows.len(), 20);
        assert_eq!(spec.sweep_flows.len(), 20);
        let backhaul = spec.backhaul.as_ref().expect("fan-out has a backhaul");
        // One aggregation link plus one link per cell, every cell routed.
        assert_eq!(backhaul.links.len(), 7);
        assert_eq!(backhaul.routes.len(), 6);
        backhaul.validate().expect("fan-out topology validates");
        // UEs round-robin over the cells.
        for (i, (cfg, _)) in spec.ues.iter().enumerate() {
            assert_eq!(cfg.configured_cells, vec![CellId((i % 6) as u16)]);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = Fanout::new(3, 9).seconds(1).scenario();
        let b = Fanout::new(3, 9).seconds(1).scenario();
        assert_eq!(
            serde_json::to_string(&a.sim_config()).unwrap(),
            serde_json::to_string(&b.sim_config()).unwrap()
        );
    }

    #[test]
    fn undersized_aggregation_link_marks_and_constrains() {
        // 8 flows behind a 12 Mbit/s aggregation link: the shared queue must
        // mark, and total delivered goodput must track the link, not the
        // (much faster) radio.
        let spec = Fanout::new(2, 8).seconds(1).agg(12e6, 90_000).scenario();
        let report = SweepRunner::serial().run(vec![spec]);
        let result = &report.outcomes[0].result;
        let agg = &result.backhaul_links[0];
        assert!(agg.stats.marked_packets > 0, "no marks at the shared link");
        let delivered_mbps: f64 = result
            .flows
            .iter()
            .map(|f| f.summary.avg_throughput_mbps)
            .sum();
        assert!(
            delivered_mbps < 14.0,
            "delivered {delivered_mbps} Mbit/s through a 12 Mbit/s aggregation link"
        );
    }
}
