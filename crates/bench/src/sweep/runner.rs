//! Parallel execution of scenario lists and the aggregated sweep report.

use super::spec::ScenarioSpec;
use pbe_netsim::{SimResult, Simulation};
use pbe_stats::pool::run_indexed;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One executed grid point: the spec that defined it, the simulator's
/// result, and how long the simulation took on its worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub spec: ScenarioSpec,
    /// The simulator's full result for that scenario.
    pub result: SimResult,
    /// Wall-clock milliseconds this scenario spent on its worker (0 when the
    /// outcome was served from an artifact result store).
    pub wall_ms: f64,
    /// The spec's [content key](ScenarioSpec::content_key) — the address of
    /// this point in an artifact result store, so report rows and store
    /// entries join without re-expanding the grid.  Serde-defaulted: report
    /// JSON written before the artifact pipeline loads with an empty key.
    #[serde(default)]
    pub key: String,
    /// The scheme label (`spec.scheme.id()`), duplicated at top level so
    /// report consumers need not interpret the spec.  Serde-defaulted.
    #[serde(default)]
    pub scheme: String,
    /// The expanded experiment seed, duplicated from the spec.
    /// Serde-defaulted.
    #[serde(default)]
    pub seed: u64,
}

impl ScenarioOutcome {
    /// Assemble an outcome, deriving the content key and scheme/seed labels
    /// from the spec.
    pub fn new(spec: ScenarioSpec, result: SimResult, wall_ms: f64) -> Self {
        let key = spec.content_key();
        let scheme = spec.scheme.id().to_string();
        let seed = spec.seed;
        ScenarioOutcome {
            spec,
            result,
            wall_ms,
            key,
            scheme,
            seed,
        }
    }
}

/// Aggregated outcome of a sweep: per-scenario results in grid order plus
/// wall-clock accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// One outcome per grid point, in the order the specs were given
    /// (grid-expansion order, not completion order).
    pub outcomes: Vec<ScenarioOutcome>,
    /// Number of worker threads that executed the sweep.
    pub workers: usize,
    /// Wall-clock milliseconds for the whole sweep.
    pub elapsed_ms: f64,
    /// Sum of per-scenario wall-clock milliseconds (what a serial run would
    /// roughly cost).
    pub busy_ms: f64,
}

impl SweepReport {
    /// Parallel speedup: summed per-scenario time over sweep wall-clock time
    /// (≈ 1.0 for a serial run, approaching the worker count when the grid
    /// is wide enough).
    pub fn speedup(&self) -> f64 {
        if self.elapsed_ms > 0.0 {
            self.busy_ms / self.elapsed_ms
        } else {
            1.0
        }
    }

    /// The distinct scenario labels, in first-appearance (grid) order.
    pub fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for o in &self.outcomes {
            if !labels.contains(&o.spec.label.as_str()) {
                labels.push(&o.spec.label);
            }
        }
        labels
    }

    /// All outcomes of one scenario label, in grid order (one per scheme ×
    /// seed combination).
    pub fn by_label(&self, label: &str) -> Vec<&ScenarioOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.spec.label == label)
            .collect()
    }

    /// The outcome of one (label, scheme) grid point, if it ran.
    pub fn outcome(&self, label: &str, scheme: &str) -> Option<&ScenarioOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.spec.label == label && o.spec.scheme.id().as_str() == scheme)
    }

    /// Serialize only the deterministic part of the report — the specs and
    /// their `SimResult`s, no timing — so two runs of the same grid compare
    /// byte-for-byte regardless of worker count.
    pub fn deterministic_json(&self) -> String {
        let pairs: Vec<(&ScenarioSpec, &SimResult)> =
            self.outcomes.iter().map(|o| (&o.spec, &o.result)).collect();
        serde_json::to_string(&pairs).expect("sweep results serialize")
    }

    /// One line of sweep statistics for a report footer.
    pub fn stats_line(&self) -> String {
        format!(
            "{} scenarios on {} worker(s): {:.2} s wall, {:.2} s simulated-serial, {:.2}x speedup",
            self.outcomes.len(),
            self.workers,
            self.elapsed_ms / 1000.0,
            self.busy_ms / 1000.0,
            self.speedup()
        )
    }
}

/// Executes scenario lists across OS threads.
///
/// Each worker builds its scenario through the ordinary
/// [`Simulation`] path from the spec alone, so the
/// schedule (which worker, what order) cannot leak into the results: a
/// 16-worker sweep and a serial sweep of the same grid produce byte-identical
/// per-scenario [`SimResult`]s.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// A runner using all available cores.
    pub fn new() -> Self {
        SweepRunner {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// A single-worker runner (the serial baseline).
    pub fn serial() -> Self {
        SweepRunner { workers: 1 }
    }

    /// Set the worker count explicitly (0 means "all available cores").
    pub fn workers(mut self, workers: usize) -> Self {
        if workers == 0 {
            return SweepRunner::new();
        }
        self.workers = workers;
        self
    }

    /// The worker count this runner will use.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Execute every spec and aggregate the outcomes in input order.
    pub fn run(&self, specs: Vec<ScenarioSpec>) -> SweepReport {
        let started = Instant::now();
        let outcomes = run_indexed(specs.len(), self.workers, |i| {
            let spec = specs[i].clone();
            let scenario_started = Instant::now();
            let result = Simulation::new(spec.sim_config()).run();
            let wall_ms = scenario_started.elapsed().as_secs_f64() * 1000.0;
            ScenarioOutcome::new(spec, result, wall_ms)
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        let busy_ms = outcomes.iter().map(|o| o.wall_ms).sum();
        SweepReport {
            outcomes,
            workers: self.workers,
            elapsed_ms,
            busy_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::spec::SweepGrid;
    use pbe_netsim::SchemeChoice;
    use pbe_stats::time::Duration;

    fn tiny_grid() -> SweepGrid {
        let duration = Duration::from_millis(400);
        SweepGrid::over(vec![ScenarioSpec::single_flow(
            "tiny",
            SchemeChoice::Pbe,
            duration,
        )
        .seed(3)])
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("CUBIC")])
    }

    #[test]
    fn report_preserves_grid_order_and_lookups_work() {
        let report = SweepRunner::serial().run(tiny_grid().expand());
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.labels(), vec!["tiny"]);
        assert_eq!(report.by_label("tiny").len(), 2);
        assert!(report.outcome("tiny", "PBE").is_some());
        assert!(report.outcome("tiny", "CUBIC").is_some());
        assert!(report.outcome("tiny", "BBR").is_none());
        assert_eq!(
            report.outcomes[0].spec.scheme.id().as_str(),
            "PBE",
            "grid order survives execution"
        );
    }

    #[test]
    fn parallel_results_match_serial_byte_for_byte() {
        let specs = tiny_grid().expand();
        let serial = SweepRunner::serial().run(specs.clone());
        let parallel = SweepRunner::new().workers(2).run(specs);
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    }
}
