//! In-tree chunked worker pool.
//!
//! The sweep harness needs "run N independent jobs on all cores" and nothing
//! more, so — in the same spirit as the offline stand-ins under
//! `crates/compat/` — this module implements it directly on `std::thread`
//! instead of pulling in an external executor.  Workers claim contiguous
//! chunks of the index range from a shared atomic cursor (cheap, and
//! neighbouring scenarios tend to have similar cost, which keeps the tail
//! balanced); every job writes its result into its own index's slot, so the
//! output order equals the input order no matter which worker ran what.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `count` independent jobs across `workers` OS threads and collect the
/// results in index order.
///
/// `job(i)` must depend only on `i` (and captured shared state) — the pool
/// guarantees each index runs exactly once but says nothing about which
/// thread runs it.  With `workers <= 1` the jobs run inline on the calling
/// thread, which is the serial baseline the determinism tests compare
/// against.
pub fn run_indexed<T, F>(count: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(count.max(1));
    if workers <= 1 {
        return (0..count).map(job).collect();
    }

    // Chunks of roughly a quarter of an even share: big enough to keep the
    // cursor cold, small enough that a slow chunk cannot strand the tail.
    let chunk = (count / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= count {
                    break;
                }
                let end = (start + chunk).min(count);
                for i in start..end {
                    let out = job(i);
                    slots.lock().expect("pool slots poisoned")[i] = Some(out);
                }
            });
        }
    });

    slots
        .into_inner()
        .expect("pool slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 4, 7] {
            let out = run_indexed(23, workers, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(Vec::new());
        run_indexed(101, 4, |i| seen.lock().unwrap().push(i));
        let ran = seen.into_inner().unwrap();
        assert_eq!(ran.len(), 101);
        assert_eq!(ran.iter().collect::<HashSet<_>>().len(), 101);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u8> = run_indexed(0, 4, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }
}
