//! The `city_scale` scenario family: a grid of cells, a fleet of UEs on
//! waypoint trajectories, handovers everywhere.
//!
//! The paper evaluates PBE-CC at 40 stationary locations and on one
//! walking trace; the production question is what happens when *many*
//! devices roam across *many* cells at once — the regime a deployed
//! congestion controller actually lives in.  [`CityScale`] generates that
//! regime deterministically from a seed: cells on a rectangular grid with a
//! log-distance path-loss model, UEs doing a random-waypoint walk (or
//! drive) across the city, each UE's per-cell RSSI trajectory compiled into
//! the [`ScenarioSpec::trajectories`] overrides that drive the simulator's
//! A3 handover machinery.
//!
//! ```
//! use pbe_bench::sweep::{CityScale, SweepRunner};
//!
//! let spec = CityScale::walking(2, 1, 2).seconds(2).scenario();
//! let report = SweepRunner::serial().run(vec![spec]);
//! assert_eq!(report.outcomes[0].result.flows.len(), 2);
//! ```

use super::spec::ScenarioSpec;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{Bandwidth, CellConfig, CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice};
use pbe_stats::time::Duration;
use pbe_stats::DetRng;

/// A cell's compiled view of one UE path: the cell, the strongest RSSI seen
/// anywhere along the path, and the `(seconds, rssi)` trace itself.
type CellPathView = (CellId, f64, Vec<(f64, f64)>);

/// Reference RSSI at [`REFERENCE_DISTANCE_M`] from a cell site, dBm.
const REFERENCE_RSSI_DBM: f64 = -55.0;
/// Distance of the reference measurement, metres.
const REFERENCE_DISTANCE_M: f64 = 10.0;
/// Log-distance path-loss exponent (urban macro, between free space's 2.0
/// and dense-urban 4.0).
const PATH_LOSS_EXPONENT: f64 = 3.2;
/// Weakest RSSI the model reports (receiver sensitivity floor), dBm.
const RSSI_FLOOR_DBM: f64 = -118.0;
/// Cells whose RSSI never rises above this along a UE's path are not worth
/// configuring as handover candidates.
const CANDIDATE_RSSI_DBM: f64 = -112.0;

/// Received signal strength at distance `d_m` from a site under the
/// log-distance model, clamped to the physical range.
pub fn path_loss_rssi_dbm(d_m: f64) -> f64 {
    let d = d_m.max(REFERENCE_DISTANCE_M);
    let rssi = REFERENCE_RSSI_DBM - 10.0 * PATH_LOSS_EXPONENT * (d / REFERENCE_DISTANCE_M).log10();
    rssi.clamp(RSSI_FLOOR_DBM, REFERENCE_RSSI_DBM)
}

/// Declarative generator of one city-scale scenario.
#[derive(Debug, Clone)]
pub struct CityScale {
    /// Scenario label carried into reports.
    pub label: String,
    /// Cell-grid columns (cells sit at the centres of the grid squares).
    pub cols: u16,
    /// Cell-grid rows.  `cols × rows` must fit the `u16` cell id space.
    pub rows: u16,
    /// Distance between neighbouring cell sites, metres.
    pub cell_spacing_m: f64,
    /// Number of roaming devices (one bulk flow each).
    pub ues: u32,
    /// Movement speed of every device, metres per second.
    pub speed_mps: f64,
    /// Simulated duration.
    pub duration: Duration,
    /// Seed; trajectories and every stochastic component derive from it.
    pub seed: u64,
    /// Background load applied to every cell.
    pub load: CellLoadProfile,
    /// Scheme under test (driving every UE's flow; sweepable via the grid).
    pub scheme: SchemeChoice,
    /// Handover-candidate cells configured per UE (primary included).
    pub cells_per_ue: usize,
    /// Sampling step of the compiled RSSI traces, milliseconds.
    pub trace_step_ms: u64,
    /// Shard count handed to the simulator (`None` = serial tick engine).
    pub shards: Option<usize>,
    /// Cap on the number of UEs that get a foreground bulk flow (`None` =
    /// every UE).  Metro-scale runs register 100k+ radio users but monitor
    /// a handful of end-to-end flows through them — the many-viewers shape.
    pub max_flows: Option<u32>,
}

impl CityScale {
    /// A walking-speed city: pedestrians at 1.4 m/s on a 400 m grid.
    pub fn walking(cols: u16, rows: u16, ues: u32) -> Self {
        CityScale {
            label: format!("city {cols}x{rows} walk ({ues} UEs)"),
            cols,
            rows,
            cell_spacing_m: 400.0,
            ues,
            speed_mps: 1.4,
            duration: Duration::from_secs(30),
            seed: 0xC17,
            load: CellLoadProfile::idle(),
            scheme: SchemeChoice::Pbe,
            cells_per_ue: 4,
            trace_step_ms: 250,
            shards: None,
            max_flows: None,
        }
    }

    /// A driving-speed city: vehicles at 13 m/s (~47 km/h) on a 500 m grid.
    pub fn driving(cols: u16, rows: u16, ues: u32) -> Self {
        CityScale {
            label: format!("city {cols}x{rows} drive ({ues} UEs)"),
            cell_spacing_m: 500.0,
            speed_mps: 13.0,
            ..CityScale::walking(cols, rows, ues)
        }
    }

    /// Set the simulated duration in seconds.
    pub fn seconds(mut self, seconds: u64) -> Self {
        self.duration = Duration::from_secs(seconds);
        self
    }

    /// Set the simulated duration in milliseconds (metro-scale runs pay per
    /// subframe across 100k+ UEs; a few hundred is already a real workout).
    pub fn millis(mut self, millis: u64) -> Self {
        self.duration = Duration::from_millis(millis);
        self
    }

    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scheme under test.
    pub fn scheme(mut self, scheme: SchemeChoice) -> Self {
        self.scheme = scheme;
        self
    }

    /// Set the background-load profile.
    pub fn load(mut self, load: CellLoadProfile) -> Self {
        self.load = load;
        self
    }

    /// Tick the city on a sharded engine with this many shards
    /// (byte-identical to the serial default; only the wall clock changes).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Give only the first `n` UEs a foreground bulk flow; the rest are
    /// radio users contributing load, handovers and scheduling pressure.
    pub fn flows_cap(mut self, n: u32) -> Self {
        self.max_flows = Some(n);
        self
    }

    /// Position of a cell site, metres.
    fn cell_position(&self, idx: u16) -> (f64, f64) {
        let col = f64::from(idx % self.cols.max(1));
        let row = f64::from(idx / self.cols.max(1));
        (
            (col + 0.5) * self.cell_spacing_m,
            (row + 0.5) * self.cell_spacing_m,
        )
    }

    /// The cellular network of the city: `cols × rows` 10 MHz cells with the
    /// default CA and handover policies.
    pub fn cellular(&self) -> CellularConfig {
        let n = u32::from(self.cols) * u32::from(self.rows);
        assert!(n >= 1, "a city needs at least one cell");
        assert!(n <= 65_536, "CellId is 16 bits: at most 65,536 cells");
        CellularConfig {
            cells: (0..n)
                .map(|i| CellConfig {
                    id: CellId(i as u16),
                    bandwidth: Bandwidth::Mhz10,
                    carrier_ghz: 1.94,
                    max_spatial_streams: 2,
                })
                .collect(),
            ..CellularConfig::default()
        }
    }

    /// Random-waypoint positions of one UE, sampled every `trace_step_ms`.
    fn waypoint_path(&self, ue_index: u32) -> Vec<(f64, f64, f64)> {
        let width = f64::from(self.cols) * self.cell_spacing_m;
        let height = f64::from(self.rows) * self.cell_spacing_m;
        let mut rng = DetRng::new(self.seed).split_indexed("city-ue", u64::from(ue_index));
        let (mut x, mut y) = (rng.uniform() * width, rng.uniform() * height);
        let (mut tx, mut ty) = (rng.uniform() * width, rng.uniform() * height);
        let step_s = self.trace_step_ms as f64 / 1000.0;
        let total_s = self.duration.as_secs_f64();
        let mut path = Vec::with_capacity((total_s / step_s) as usize + 2);
        let mut t = 0.0;
        while t <= total_s + step_s {
            path.push((t, x, y));
            // Advance towards the current waypoint, drawing a new one on
            // arrival.
            let mut remaining = self.speed_mps * step_s;
            while remaining > 0.0 {
                let (dx, dy) = (tx - x, ty - y);
                let dist = (dx * dx + dy * dy).sqrt();
                if dist <= remaining {
                    x = tx;
                    y = ty;
                    remaining -= dist;
                    tx = rng.uniform() * width;
                    ty = rng.uniform() * height;
                } else {
                    x += dx / dist * remaining;
                    y += dy / dist * remaining;
                    remaining = 0.0;
                }
            }
            t += step_s;
        }
        path
    }

    /// Cells worth evaluating against one UE path: every cell whose site
    /// could clear [`CANDIDATE_RSSI_DBM`] somewhere along it, found by grid
    /// arithmetic instead of scanning the whole metro.  The log-distance
    /// model puts the candidate bound at ~604 m, so this is a conservative
    /// superset of the full scan's survivors (one extra spacing of margin):
    /// excluded cells sit below the candidate floor at every path point and
    /// the full scan would drop them too — the compiled scenario is
    /// byte-identical, only the generation cost changes (a 1,000-cell /
    /// 100k-UE metro compiles ~16 cells per UE instead of 1,000).
    fn candidate_cells(&self, path: &[(f64, f64, f64)]) -> Vec<u16> {
        let radius = REFERENCE_DISTANCE_M
            * 10f64.powf((REFERENCE_RSSI_DBM - CANDIDATE_RSSI_DBM) / (10.0 * PATH_LOSS_EXPONENT))
            + self.cell_spacing_m;
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in path {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let s = self.cell_spacing_m;
        let cols = u32::from(self.cols.max(1));
        let rows = u32::from(self.rows.max(1));
        let lo = |v: f64| (((v - radius) / s - 0.5).floor().max(0.0)) as u32;
        let hi = |v: f64, n: u32| ((((v + radius) / s - 0.5).ceil().max(0.0)) as u32).min(n - 1);
        let (lo_col, hi_col) = (lo(min_x), hi(max_x, cols));
        let (lo_row, hi_row) = (lo(min_y), hi(max_y, rows));
        let mut ids = Vec::with_capacity(((hi_row - lo_row + 1) * (hi_col - lo_col + 1)) as usize);
        // Row-major, ascending cell id — the iteration order of the full
        // scan, which the stable candidate sort below relies on.
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                ids.push((row * cols + col) as u16);
            }
        }
        ids
    }

    /// Compile the scenario: grid cells, per-UE waypoint trajectories
    /// lowered to per-cell RSSI traces, one bulk flow per UE (up to
    /// [`CityScale::max_flows`]) under the swept scheme.
    pub fn scenario(&self) -> ScenarioSpec {
        let cellular = self.cellular();
        let mut spec = ScenarioSpec::new(self.label.clone(), self.scheme.clone(), self.duration)
            .cellular(cellular)
            .load(self.load)
            .seed(self.seed);
        spec.shards = self.shards;
        for i in 0..self.ues {
            let ue = UeId(i + 1);
            let path = self.waypoint_path(i);
            // RSSI trace towards every candidate cell, plus its strongest
            // point along the path.
            let mut per_cell: Vec<CellPathView> = self
                .candidate_cells(&path)
                .into_iter()
                .map(|c| {
                    let (cx, cy) = self.cell_position(c);
                    let mut best = f64::NEG_INFINITY;
                    let trace: Vec<(f64, f64)> = path
                        .iter()
                        .map(|(t, x, y)| {
                            let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                            let rssi = path_loss_rssi_dbm(d);
                            best = best.max(rssi);
                            (*t, rssi)
                        })
                        .collect();
                    (CellId(c), best, trace)
                })
                .collect();
            // Primary: strongest cell at t = 0.  Other candidates: the
            // strongest cells anywhere along the path (deterministic
            // tie-break on cell id).
            let primary = per_cell
                .iter()
                .max_by(|a, b| {
                    a.2[0]
                        .1
                        .partial_cmp(&b.2[0].1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.0.cmp(&a.0))
                })
                .map(|(c, _, _)| *c)
                .expect("at least one cell");
            per_cell.sort_by(|a, b| {
                (a.0 != primary)
                    .cmp(&(b.0 != primary))
                    .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
                    .then(a.0.cmp(&b.0))
            });
            per_cell.truncate(self.cells_per_ue.max(1));
            per_cell.retain(|(c, best, _)| *c == primary || *best >= CANDIDATE_RSSI_DBM);
            let configured: Vec<CellId> = per_cell.iter().map(|(c, _, _)| *c).collect();
            let rssi0 = per_cell[0].2[0].1;
            spec = spec.ue(
                UeConfig::new(ue, configured, 1, rssi0),
                MobilityTrace::stationary(rssi0),
            );
            for (cell, _, trace) in &per_cell {
                spec = spec.trajectory(ue, *cell, MobilityTrace::from_secs(trace));
            }
            if self.max_flows.is_none_or(|cap| i < cap) {
                spec = spec.flow(FlowConfig::bulk(
                    i + 1,
                    ue,
                    self.scheme.clone(),
                    self.duration,
                ));
            }
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRunner;

    #[test]
    fn path_loss_is_monotone_and_clamped() {
        assert_eq!(path_loss_rssi_dbm(0.0), REFERENCE_RSSI_DBM);
        assert!(path_loss_rssi_dbm(200.0) > path_loss_rssi_dbm(400.0));
        assert_eq!(path_loss_rssi_dbm(1e9), RSSI_FLOOR_DBM);
        // Mid-way between two sites on a 400 m grid the link is usable.
        let edge = path_loss_rssi_dbm(200.0);
        assert!((-105.0..-85.0).contains(&edge), "edge RSSI {edge}");
    }

    #[test]
    fn scenario_shape_matches_the_city() {
        let city = CityScale::walking(3, 2, 5).seconds(4);
        let spec = city.scenario();
        assert_eq!(spec.cellular.cells.len(), 6);
        assert_eq!(spec.ues.len(), 5);
        assert_eq!(spec.flows.len(), 5);
        assert_eq!(spec.sweep_flows.len(), 5);
        for (cfg, _) in &spec.ues {
            assert!(!cfg.configured_cells.is_empty());
            assert!(cfg.configured_cells.len() <= city.cells_per_ue);
            // Every configured cell has an explicit trajectory override.
            for cell in &cfg.configured_cells {
                assert!(spec
                    .trajectories
                    .iter()
                    .any(|t| t.ue == cfg.id && t.cell == *cell));
            }
        }
    }

    #[test]
    fn candidate_subgrid_keeps_every_in_coverage_cell() {
        // The subgrid scan must be a superset of the cells the full scan
        // would keep: any cell within CANDIDATE_RSSI_DBM of any path point.
        let city = CityScale::driving(8, 6, 12).seconds(10).seed(11);
        for i in 0..city.ues {
            let path = city.waypoint_path(i);
            let candidates = city.candidate_cells(&path);
            for c in 0..(city.cols * city.rows) {
                let (cx, cy) = city.cell_position(c);
                let best = path
                    .iter()
                    .map(|(_, x, y)| {
                        path_loss_rssi_dbm(((x - cx).powi(2) + (y - cy).powi(2)).sqrt())
                    })
                    .fold(f64::NEG_INFINITY, f64::max);
                if best >= CANDIDATE_RSSI_DBM {
                    assert!(
                        candidates.contains(&c),
                        "cell {c} ({best} dBm) missed by the subgrid scan"
                    );
                }
            }
            // Ascending id order — the full scan's iteration order.
            assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn flows_cap_limits_foreground_flows() {
        let spec = CityScale::walking(3, 2, 50)
            .seconds(2)
            .flows_cap(4)
            .scenario();
        assert_eq!(spec.ues.len(), 50);
        assert_eq!(spec.flows.len(), 4);
    }

    #[test]
    fn trajectories_are_deterministic_for_a_seed() {
        let a = CityScale::driving(2, 2, 3).seconds(3).scenario();
        let b = CityScale::driving(2, 2, 3).seconds(3).scenario();
        assert_eq!(
            serde_json::to_string(&a.sim_config()).unwrap(),
            serde_json::to_string(&b.sim_config()).unwrap()
        );
    }

    #[test]
    fn driving_across_the_city_hands_over() {
        // Two cells side by side, fast UEs, long enough to cross the border:
        // at least one UE must hand over at least once.
        let spec = CityScale::driving(2, 1, 4).seconds(20).seed(3).scenario();
        let report = SweepRunner::serial().run(vec![spec]);
        let result = &report.outcomes[0].result;
        assert!(
            !result.handovers.is_empty(),
            "city mobility produced no handovers"
        );
        // Every flow still moved data.
        for f in &result.flows {
            assert!(f.packets_delivered > 100, "flow {} starved", f.id);
        }
    }
}
