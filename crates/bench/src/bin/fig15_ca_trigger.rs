//! Figure 15: the number of locations at which each congestion-control
//! scheme drives the cellular network to activate carrier aggregation.
//! Conservative schemes never offer enough load to trigger a secondary cell,
//! leaving capacity unused.
//!
//! Built on `SimBuilder` + the observer API: carrier activations are counted
//! straight off the `CaTriggered` event stream.

use pbe_bench::scenarios::{paper_schemes, ScenarioLibrary};
use pbe_bench::TextTable;
use pbe_netsim::{SimBuilder, SimEvent};
use pbe_stats::time::Duration;
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_locations: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seconds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    // Only CA-capable locations count (the paper excludes the single-cell
    // Redmi 8 locations, leaving a maximum of 30).
    let locations: Vec<_> = ScenarioLibrary::paper_40_locations()
        .locations()
        .iter()
        .filter(|l| l.aggregated_cells >= 2)
        .take(n_locations)
        .cloned()
        .collect();
    println!(
        "Figure 15 reproduction: CA-capable locations = {}, {} s per flow (paper: 30 locations, 20 s)\n",
        locations.len(),
        seconds
    );
    let mut table = TextTable::new(&["scheme", "CA triggered", "not triggered"]);
    for (scheme, name) in paper_schemes() {
        let mut triggered = 0usize;
        for loc in &locations {
            let activated: Rc<Cell<bool>> = Rc::default();
            let sink = activated.clone();
            SimBuilder::from_config(loc.sim_config(scheme.clone(), Duration::from_secs(seconds)))
                .observe(move |event: &SimEvent<'_>| {
                    if let SimEvent::CaTriggered { event } = event {
                        if event.activated {
                            sink.set(true);
                        }
                    }
                })
                .run();
            if activated.get() {
                triggered += 1;
            }
        }
        table.row(&[
            name.to_string(),
            format!("{triggered}"),
            format!("{}", locations.len() - triggered),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: PBE-CC, BBR, Verus and CUBIC trigger carrier aggregation at most");
    println!("locations; Copa, PCC, PCC-Vivace and Sprout rarely do, under-utilising the link.");
}
