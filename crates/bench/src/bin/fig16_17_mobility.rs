//! Figures 16 and 17: performance under mobility.  The device starts at
//! −85 dBm, walks to −105 dBm over 13 s, returns in 4 s and stays put —
//! Fig. 16 compares all eight schemes' throughput/delay, Fig. 17 shows the
//! PBE-CC and BBR timelines in 2-second intervals.
//!
//! The eight schemes run as one parallel sweep over a single mobility-trace
//! [`ScenarioSpec`]; Fig. 17 reads the PBE and BBR timelines back out of the
//! same [`SweepReport`](pbe_bench::SweepReport).

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::sweep::{ScenarioSpec, SweepArgs, SweepGrid};
use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimResult};
use pbe_stats::percentile::median;
use pbe_stats::time::Duration;

const LABEL: &str = "Fig16 mobility walk";

fn mobility_scenario(seconds: u64) -> ScenarioSpec {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    ScenarioSpec::new(LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(16)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], 2, -85.0),
            MobilityTrace::paper_mobility_walk(),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
}

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(40);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 16 reproduction: mobility walk -85 -> -105 -> -85 dBm over {seconds} s\n"
    ));

    let grid = SweepGrid::over(vec![mobility_scenario(seconds)])
        .schemes(paper_schemes().into_iter().map(|(s, _)| s));
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig16_17_mobility", &report)?;
        writer.timing(&report);
        return Ok(());
    }

    let mut table = TextTable::new(&[
        "scheme",
        "avg tput (Mbit/s)",
        "median delay (ms)",
        "p95 delay (ms)",
    ]);
    for outcome in report.by_label(LABEL) {
        let s = &outcome.result.flows[0].summary;
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.delay_percentiles_ms[2]),
            format!("{:.0}", s.p95_delay_ms),
        ]);
    }
    writer.table("fig16_schemes", "Fig16: all schemes", &table)?;

    let pbe = &report.outcome(LABEL, "PBE").expect("PBE ran").result;
    let bbr = &report.outcome(LABEL, "BBR").expect("BBR ran").result;
    let mut t = TextTable::new(&["t (s)", "PBE tput", "PBE delay", "BBR tput", "BBR delay"]);
    let intervals = (seconds / 2) as usize;
    for i in 0..intervals {
        let slice = |r: &SimResult| {
            let f = &r.flows[0];
            let lo = i * 20;
            let hi = ((i + 1) * 20).min(f.throughput_timeline_mbps.len());
            let tput = median(&f.throughput_timeline_mbps[lo..hi]).unwrap_or(0.0);
            let delays: Vec<f64> = f.delay_timeline_ms[lo..hi]
                .iter()
                .flatten()
                .copied()
                .collect();
            (tput, median(&delays).unwrap_or(0.0))
        };
        let (pt, pd) = slice(pbe);
        let (bt, bd) = slice(bbr);
        t.row(&[
            format!("{}", i * 2),
            format!("{pt:.1}"),
            format!("{pd:.0}"),
            format!("{bt:.1}"),
            format!("{bd:.0}"),
        ]);
    }
    writer.table(
        "fig17_timeline",
        "Fig17: per-2-second median throughput and delay, PBE vs BBR",
        &t,
    )?;
    writer.timing(&report);
    writer.note(
        "\nPaper reference: PBE-CC tracks the capacity drop (13-26 s) and recovery (26-30 s) with",
    );
    writer.note(
        "near-zero queueing; BBR overreacts to the drop and overshoots on recovery, inflating delay.",
    );
    Ok(())
}
