//! Figures 16 and 17: performance under mobility.  The device starts at
//! −85 dBm, walks to −105 dBm over 13 s, returns in 4 s and stays put —
//! Fig. 16 compares all eight schemes' throughput/delay, Fig. 17 shows the
//! PBE-CC and BBR timelines in 2-second intervals.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::TextTable;
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimConfig, SimResult, Simulation};
use pbe_stats::percentile::median;
use pbe_stats::time::Duration;

fn run(scheme: SchemeChoice, seconds: u64) -> SimResult {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    let cfg = SimConfig {
        cellular: CellularConfig::default(),
        load: CellLoadProfile::idle(),
        seed: 16,
        duration,
        ues: vec![(
            UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], 2, -85.0),
            MobilityTrace::paper_mobility_walk(),
        )],
        flows: vec![FlowConfig::bulk(1, ue, scheme, duration)],
    };
    Simulation::new(cfg).run()
}

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    println!("Figure 16 reproduction: mobility walk -85 -> -105 -> -85 dBm over {seconds} s\n");
    let mut table = TextTable::new(&[
        "scheme",
        "avg tput (Mbit/s)",
        "median delay (ms)",
        "p95 delay (ms)",
    ]);
    let mut pbe_result = None;
    let mut bbr_result = None;
    for (scheme, name) in paper_schemes() {
        let result = run(scheme.clone(), seconds);
        let s = &result.flows[0].summary;
        table.row(&[
            name.to_string(),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.delay_percentiles_ms[2]),
            format!("{:.0}", s.p95_delay_ms),
        ]);
        match scheme {
            SchemeChoice::Pbe => pbe_result = Some(result),
            SchemeChoice::Baseline(SchemeName::Bbr) => bbr_result = Some(result),
            _ => {}
        }
    }
    println!("{}", table.render());

    println!("Figure 17: per-2-second median throughput and delay, PBE vs BBR\n");
    let mut t = TextTable::new(&["t (s)", "PBE tput", "PBE delay", "BBR tput", "BBR delay"]);
    let (pbe, bbr) = (pbe_result.expect("pbe ran"), bbr_result.expect("bbr ran"));
    let intervals = (seconds / 2) as usize;
    for i in 0..intervals {
        let slice = |r: &SimResult| {
            let f = &r.flows[0];
            let lo = i * 20;
            let hi = ((i + 1) * 20).min(f.throughput_timeline_mbps.len());
            let tput = median(&f.throughput_timeline_mbps[lo..hi]).unwrap_or(0.0);
            let delays: Vec<f64> = f.delay_timeline_ms[lo..hi]
                .iter()
                .flatten()
                .copied()
                .collect();
            (tput, median(&delays).unwrap_or(0.0))
        };
        let (pt, pd) = slice(&pbe);
        let (bt, bd) = slice(&bbr);
        t.row(&[
            format!("{}", i * 2),
            format!("{pt:.1}"),
            format!("{pd:.0}"),
            format!("{bt:.1}"),
            format!("{bd:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper reference: PBE-CC tracks the capacity drop (13-26 s) and recovery (26-30 s) with"
    );
    println!("near-zero queueing; BBR overreacts to the drop and overshoots on recovery, inflating delay.");
}
