//! Figures 16 and 17: performance under mobility.  The device starts at
//! −85 dBm, walks to −105 dBm over 13 s, returns in 4 s and stays put —
//! Fig. 16 compares all eight schemes' throughput/delay, Fig. 17 shows the
//! PBE-CC and BBR timelines in 2-second intervals.
//!
//! The single-scenario × eight-scheme grid and both table renderers live in
//! the artifact figure registry (`pbe_bench::artifact`), shared with
//! `pbe-bench artifact`; this binary is the standalone, always-fresh way to
//! run the same figure.

use pbe_bench::artifact;
use pbe_bench::sweep::SweepArgs;

fn main() -> std::io::Result<()> {
    let fig = artifact::find("fig16_17_mobility").expect("registered figure");
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(fig.default_seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 16 reproduction: mobility walk -85 -> -105 -> -85 dBm over {seconds} s\n"
    ));

    let report = args.runner().run((fig.grid)(seconds).expand());
    if writer.wants_json() {
        writer.sweep_json(fig.name, &report)?;
        writer.timing(&report);
        return Ok(());
    }
    (fig.render)(&report, seconds, &writer)?;
    writer.timing(&report);
    Ok(())
}
