//! Figures 13 and 14: per-location delay/throughput order statistics for all
//! eight congestion-control schemes at six representative locations
//! (indoor 1/2/3 aggregated cells busy, indoor 3-cell idle, outdoor 2-cell
//! busy, outdoor 2-cell idle).
//!
//! The 6 × 8 grid and the table renderer live in the artifact figure
//! registry (`pbe_bench::artifact`), shared with `pbe-bench artifact`; this
//! binary is the standalone, always-fresh way to run the same figure.

use pbe_bench::artifact;
use pbe_bench::sweep::SweepArgs;

fn main() -> std::io::Result<()> {
    let fig = artifact::find("fig13_14_stationary").expect("registered figure");
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(fig.default_seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figures 13/14 reproduction: 6 representative locations × 8 schemes × {seconds} s\n"
    ));

    let report = args.runner().run((fig.grid)(seconds).expand());
    if writer.wants_json() {
        writer.sweep_json(fig.name, &report)?;
        writer.timing(&report);
        return Ok(());
    }
    (fig.render)(&report, seconds, &writer)?;
    writer.timing(&report);
    Ok(())
}
