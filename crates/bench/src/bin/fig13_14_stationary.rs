//! Figures 13 and 14: per-location delay/throughput order statistics for all
//! eight congestion-control schemes at six representative locations
//! (indoor 1/2/3 aggregated cells busy, indoor 3-cell idle, outdoor 2-cell
//! busy, outdoor 2-cell idle).
//!
//! The 6 × 8 grid runs through the parallel sweep harness: each location is a
//! [`ScenarioSpec`] template crossed with the paper's scheme axis.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::sweep::{ScenarioSpec, SweepArgs, SweepGrid};
use pbe_bench::{Location, LocationKind, TextTable};
use pbe_stats::time::Duration;

fn representative_locations() -> Vec<(&'static str, Location)> {
    let mk = |index, kind, cells, busy, rssi| Location {
        index,
        kind,
        aggregated_cells: cells,
        busy,
        rssi_dbm: rssi,
    };
    vec![
        (
            "Fig13a indoor 1CC busy",
            mk(100, LocationKind::Indoor, 1, true, -95.0),
        ),
        (
            "Fig13b indoor 2CC busy",
            mk(101, LocationKind::Indoor, 2, true, -93.0),
        ),
        (
            "Fig13c indoor 3CC busy",
            mk(102, LocationKind::Indoor, 3, true, -91.0),
        ),
        (
            "Fig13d indoor 3CC idle",
            mk(103, LocationKind::Indoor, 3, false, -91.0),
        ),
        (
            "Fig14a outdoor 2CC busy",
            mk(104, LocationKind::Outdoor, 2, true, -85.0),
        ),
        (
            "Fig14b outdoor 2CC idle",
            mk(105, LocationKind::Outdoor, 2, false, -85.0),
        ),
    ]
}

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(8);
    let duration = Duration::from_secs(seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figures 13/14 reproduction: 6 representative locations × 8 schemes × {seconds} s\n"
    ));

    let scenarios: Vec<ScenarioSpec> = representative_locations()
        .iter()
        .map(|(label, loc)| ScenarioSpec::from_location(*label, loc, duration))
        .collect();
    let grid = SweepGrid::over(scenarios).schemes(paper_schemes().into_iter().map(|(s, _)| s));
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig13_14_stationary", &report)?;
    } else {
        for (i, label) in report.labels().iter().enumerate() {
            let mut table = TextTable::new(&[
                "scheme",
                "tput p25",
                "tput p50",
                "tput p75",
                "delay p25 (ms)",
                "delay p50",
                "delay p75",
                "delay p95",
            ]);
            let mut rssi = 0.0;
            for outcome in report.by_label(label) {
                rssi = outcome.spec.ues[0].0.rssi_dbm;
                let s = &outcome.result.flows[0].summary;
                table.row(&[
                    outcome.spec.scheme.to_string(),
                    format!("{:.1}", s.throughput_percentiles_mbps[1]),
                    format!("{:.1}", s.throughput_percentiles_mbps[2]),
                    format!("{:.1}", s.throughput_percentiles_mbps[3]),
                    format!("{:.0}", s.delay_percentiles_ms[1]),
                    format!("{:.0}", s.delay_percentiles_ms[2]),
                    format!("{:.0}", s.delay_percentiles_ms[3]),
                    format!("{:.0}", s.p95_delay_ms),
                ]);
            }
            let name = format!("fig13_14_location_{i}");
            writer.table(&name, &format!("{label} (RSSI {rssi} dBm)"), &table)?;
        }
    }
    writer.timing(&report);
    writer.note(
        "\nPaper reference: PBE-CC and BBR have comparable (highest) throughput, with PBE-CC at",
    );
    writer.note("markedly lower delay; Verus high throughput but excessive delay; CUBIC erratic;");
    writer.note("Copa/PCC/Vivace/Sprout low throughput with low delay.");
    Ok(())
}
