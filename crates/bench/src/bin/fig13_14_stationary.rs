//! Figures 13 and 14: per-location delay/throughput order statistics for all
//! eight congestion-control schemes at six representative locations
//! (indoor 1/2/3 aggregated cells busy, indoor 3-cell idle, outdoor 2-cell
//! busy, outdoor 2-cell idle).

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::{Location, LocationKind, TextTable};
use pbe_netsim::Simulation;
use pbe_stats::time::Duration;

fn representative_locations() -> Vec<(&'static str, Location)> {
    let mk = |index, kind, cells, busy, rssi| Location {
        index,
        kind,
        aggregated_cells: cells,
        busy,
        rssi_dbm: rssi,
    };
    vec![
        (
            "Fig13a indoor 1CC busy",
            mk(100, LocationKind::Indoor, 1, true, -95.0),
        ),
        (
            "Fig13b indoor 2CC busy",
            mk(101, LocationKind::Indoor, 2, true, -93.0),
        ),
        (
            "Fig13c indoor 3CC busy",
            mk(102, LocationKind::Indoor, 3, true, -91.0),
        ),
        (
            "Fig13d indoor 3CC idle",
            mk(103, LocationKind::Indoor, 3, false, -91.0),
        ),
        (
            "Fig14a outdoor 2CC busy",
            mk(104, LocationKind::Outdoor, 2, true, -85.0),
        ),
        (
            "Fig14b outdoor 2CC idle",
            mk(105, LocationKind::Outdoor, 2, false, -85.0),
        ),
    ]
}

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("Figures 13/14 reproduction: 6 representative locations × 8 schemes × {seconds} s\n");
    for (label, loc) in representative_locations() {
        println!("=== {label} (RSSI {} dBm) ===\n", loc.rssi_dbm);
        let mut table = TextTable::new(&[
            "scheme",
            "tput p25",
            "tput p50",
            "tput p75",
            "delay p25 (ms)",
            "delay p50",
            "delay p75",
            "delay p95",
        ]);
        for (scheme, name) in paper_schemes() {
            let result =
                Simulation::new(loc.sim_config(scheme, Duration::from_secs(seconds))).run();
            let s = &result.flows[0].summary;
            table.row(&[
                name.to_string(),
                format!("{:.1}", s.throughput_percentiles_mbps[1]),
                format!("{:.1}", s.throughput_percentiles_mbps[2]),
                format!("{:.1}", s.throughput_percentiles_mbps[3]),
                format!("{:.0}", s.delay_percentiles_ms[1]),
                format!("{:.0}", s.delay_percentiles_ms[2]),
                format!("{:.0}", s.delay_percentiles_ms[3]),
                format!("{:.0}", s.p95_delay_ms),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Paper reference: PBE-CC and BBR have comparable (highest) throughput, with PBE-CC at"
    );
    println!("markedly lower delay; Verus high throughput but excessive delay; CUBIC erratic;");
    println!("Copa/PCC/Vivace/Sprout low throughput with low delay.");
}
