//! Figure 20: one device, two concurrent connections to two different
//! servers.  PBE-CC divides the estimated wireless capacity evenly between
//! its own flows; other schemes can end up badly unbalanced.
//!
//! Both flows take the sweep's scheme axis, so the 1 × 8 grid runs through
//! the parallel sweep harness like every other comparison figure.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::sweep::{ScenarioSpec, SweepArgs, SweepGrid};
use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice};
use pbe_stats::time::Duration;

const LABEL: &str = "Fig20 two connections";

fn multi_connection_scenario(seconds: u64) -> ScenarioSpec {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    ScenarioSpec::new(LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(20)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 2, -87.0),
            MobilityTrace::stationary(-87.0),
        )
        .flow(
            FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration)
                .with_one_way_delay(Duration::from_millis(24)),
        )
        .flow(
            FlowConfig::bulk(2, ue, SchemeChoice::Pbe, duration)
                .with_one_way_delay(Duration::from_millis(32)),
        )
}

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(12);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 20 reproduction: two concurrent flows from one device to two servers ({seconds} s)\n"
    ));

    let grid = SweepGrid::over(vec![multi_connection_scenario(seconds)])
        .schemes(paper_schemes().into_iter().map(|(s, _)| s));
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig20_multi_connection", &report)?;
        writer.timing(&report);
        return Ok(());
    }

    let mut table = TextTable::new(&[
        "scheme",
        "flow1 tput",
        "flow2 tput",
        "flow1 med delay",
        "flow2 med delay",
        "tput ratio",
    ]);
    for outcome in report.by_label(LABEL) {
        let a = &outcome.result.flows[0].summary;
        let b = &outcome.result.flows[1].summary;
        let ratio = if b.avg_throughput_mbps > 0.0 {
            a.avg_throughput_mbps / b.avg_throughput_mbps
        } else {
            f64::INFINITY
        };
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{:.1}", a.avg_throughput_mbps),
            format!("{:.1}", b.avg_throughput_mbps),
            format!("{:.0}", a.delay_percentiles_ms[2]),
            format!("{:.0}", b.delay_percentiles_ms[2]),
            format!("{ratio:.2}"),
        ]);
    }
    writer.table("fig20_two_connections", "Fig20: all schemes", &table)?;
    writer.timing(&report);
    writer.note(
        "\nPaper reference: PBE-CC gives both flows similar throughput (26 / 28 Mbit/s, median",
    );
    writer.note("delays 48 / 56 ms); BBR splits 10 / 35 Mbit/s between its two flows.");
    Ok(())
}
