//! Figure 20: one device, two concurrent connections to two different
//! servers.  PBE-CC divides the estimated wireless capacity evenly between
//! its own flows; other schemes can end up badly unbalanced.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SimConfig, Simulation};
use pbe_stats::time::Duration;

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("Figure 20 reproduction: two concurrent flows from one device to two servers ({seconds} s)\n");
    let mut table = TextTable::new(&[
        "scheme",
        "flow1 tput",
        "flow2 tput",
        "flow1 med delay",
        "flow2 med delay",
        "tput ratio",
    ]);
    for (scheme, name) in paper_schemes() {
        let ue = UeId(1);
        let duration = Duration::from_secs(seconds);
        let cfg = SimConfig {
            cellular: CellularConfig::default(),
            load: CellLoadProfile::idle(),
            seed: 20,
            duration,
            ues: vec![(
                UeConfig::new(ue, vec![CellId(0), CellId(1)], 2, -87.0),
                MobilityTrace::stationary(-87.0),
            )],
            flows: vec![
                FlowConfig::bulk(1, ue, scheme.clone(), duration)
                    .with_one_way_delay(Duration::from_millis(24)),
                FlowConfig::bulk(2, ue, scheme.clone(), duration)
                    .with_one_way_delay(Duration::from_millis(32)),
            ],
        };
        let result = Simulation::new(cfg).run();
        let a = &result.flows[0].summary;
        let b = &result.flows[1].summary;
        let ratio = if b.avg_throughput_mbps > 0.0 {
            a.avg_throughput_mbps / b.avg_throughput_mbps
        } else {
            f64::INFINITY
        };
        table.row(&[
            name.to_string(),
            format!("{:.1}", a.avg_throughput_mbps),
            format!("{:.1}", b.avg_throughput_mbps),
            format!("{:.0}", a.delay_percentiles_ms[2]),
            format!("{:.0}", b.delay_percentiles_ms[2]),
            format!("{ratio:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: PBE-CC gives both flows similar throughput (26 / 28 Mbit/s, median");
    println!("delays 48 / 56 ms); BBR splits 10 / 35 Mbit/s between its two flows.");
}
