//! Figure 20: one device, two concurrent connections to two different
//! servers.  PBE-CC divides the estimated wireless capacity evenly between
//! its own flows; other schemes can end up badly unbalanced.
//!
//! The 1 × 8 grid (both flows take the scheme axis) and the table renderer
//! live in the artifact figure registry (`pbe_bench::artifact`), shared with
//! `pbe-bench artifact`; this binary is the standalone, always-fresh way to
//! run the same figure.

use pbe_bench::artifact;
use pbe_bench::sweep::SweepArgs;

fn main() -> std::io::Result<()> {
    let fig = artifact::find("fig20_multi_connection").expect("registered figure");
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(fig.default_seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 20 reproduction: two concurrent flows from one device to two servers ({seconds} s)\n"
    ));

    let report = args.runner().run((fig.grid)(seconds).expand());
    if writer.wants_json() {
        writer.sweep_json(fig.name, &report)?;
        writer.timing(&report);
        return Ok(());
    }
    (fig.render)(&report, seconds, &writer)?;
    writer.timing(&report);
    Ok(())
}
