//! Table 1: PBE-CC throughput speedup and delay reduction vs BBR, Verus and
//! Copa, averaged over idle and busy stationary links, plus the §6.3.1
//! "alternation between states" statistic (fraction of time PBE-CC spends in
//! the Internet-bottleneck state).
//!
//! Usage: `cargo run --release -p pbe-bench --bin table1 [locations] [seconds]`
//! (defaults: 8 locations, 8 s per flow; the paper uses 40 locations × 20 s).

use pbe_bench::scenarios::ScenarioLibrary;
use pbe_bench::TextTable;
use pbe_cc_algorithms::api::SchemeName;
use pbe_netsim::{SchemeChoice, Simulation};
use pbe_stats::time::Duration;
use pbe_stats::FlowSummary;

fn run(loc: &pbe_bench::Location, scheme: SchemeChoice, seconds: u64) -> FlowSummary {
    let cfg = loc.sim_config(scheme, Duration::from_secs(seconds));
    Simulation::new(cfg).run().flows[0].summary.clone()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_locations: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seconds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let locations = ScenarioLibrary::subset(n_locations);
    println!(
        "Table 1 reproduction: {} locations × {} s per scheme (paper: 40 × 20 s)\n",
        locations.len(),
        seconds
    );

    let comparators = [
        (SchemeChoice::Baseline(SchemeName::Bbr), "BBR"),
        (SchemeChoice::Baseline(SchemeName::Verus), "Verus"),
        (SchemeChoice::Baseline(SchemeName::Copa), "Copa"),
    ];

    let mut table = TextTable::new(&[
        "Scheme",
        "Load",
        "PBE tput speedup",
        "p95 delay reduction",
        "avg delay reduction",
    ]);
    let mut internet_fraction = [(0.0, 0usize), (0.0, 0usize)]; // (busy, idle)

    for busy in [true, false] {
        let locs: Vec<_> = locations.iter().filter(|l| l.busy == busy).collect();
        if locs.is_empty() {
            continue;
        }
        let pbe: Vec<FlowSummary> = locs
            .iter()
            .map(|l| run(l, SchemeChoice::Pbe, seconds))
            .collect();
        for (i, _) in locs.iter().enumerate() {
            let slot = if busy { 0 } else { 1 };
            internet_fraction[slot].0 += pbe[i].internet_bottleneck_fraction;
            internet_fraction[slot].1 += 1;
        }
        for (scheme, name) in &comparators {
            let other: Vec<FlowSummary> = locs
                .iter()
                .map(|l| run(l, scheme.clone(), seconds))
                .collect();
            let mut speedup = 0.0;
            let mut p95_red = 0.0;
            let mut avg_red = 0.0;
            for (p, o) in pbe.iter().zip(&other) {
                speedup += p.throughput_speedup_vs(o);
                p95_red += p.p95_delay_reduction_vs(o);
                avg_red += p.avg_delay_reduction_vs(o);
            }
            let n = locs.len() as f64;
            table.row(&[
                name.to_string(),
                if busy { "Busy".into() } else { "Idle".into() },
                format!("{:.2}x", speedup / n),
                format!("{:.2}x", p95_red / n),
                format!("{:.2}x", avg_red / n),
            ]);
        }
    }
    println!("{}", table.render());

    println!("Alternation between states (fraction of time in Internet-bottleneck state):");
    for (label, (sum, count)) in ["busy", "idle"].iter().zip(internet_fraction) {
        if count > 0 {
            println!("  {label:>4} links: {:.1}%", 100.0 * sum / count as f64);
        }
    }
    println!("\nPaper reference: busy 18%, idle 4%; speedups 1.04-1.10x vs BBR, 1.25-2.01x vs Verus, ~10-13x vs Copa.");
}
