//! Figure 8: one-way packet delay vs offered load.  Higher offered loads
//! build larger transport blocks, raising the block error rate and therefore
//! the number of packets that incur 8 ms (or multiples of 8 ms)
//! retransmission-plus-reordering delays.

use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{AppModel, FlowConfig, SchemeChoice, SimConfig, Simulation};
use pbe_stats::percentile::percentile;
use pbe_stats::time::Duration;

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Figure 8 reproduction: one-way delay distribution vs offered load ({seconds} s per load)\n");
    let mut table = TextTable::new(&[
        "offered load (Mbit/s)",
        "min delay (ms)",
        "median (ms)",
        "p90 (ms)",
        "p99 (ms)",
        "share > min+8ms (%)",
    ]);
    for load_mbps in [6.0, 24.0, 36.0] {
        let ue = UeId(1);
        let duration = Duration::from_secs(seconds);
        let cfg = SimConfig {
            cellular: CellularConfig::default(),
            load: CellLoadProfile::none(),
            seed: 8,
            duration,
            ues: vec![(
                UeConfig::new(ue, vec![CellId(0), CellId(1)], 2, -99.0),
                MobilityTrace::stationary(-99.0),
            )],
            flows: vec![FlowConfig {
                app: AppModel::ConstantRate(load_mbps * 1e6),
                ..FlowConfig::bulk(1, ue, SchemeChoice::FixedRate, duration)
            }],
            trajectories: Vec::new(),
            shards: None,
            backhaul: None,
            faults: None,
        };
        let result = Simulation::new(cfg).run();
        let delays: Vec<f64> = result.flows[0]
            .delay_timeline_ms
            .iter()
            .flatten()
            .copied()
            .collect();
        let summary = &result.flows[0].summary;
        let min = summary.delay_percentiles_ms[0]
            .min(delays.iter().copied().fold(f64::INFINITY, f64::min));
        let spikes =
            delays.iter().filter(|d| **d > min + 8.0).count() as f64 / delays.len().max(1) as f64;
        table.row(&[
            format!("{load_mbps:.0}"),
            format!("{min:.1}"),
            format!("{:.1}", summary.delay_percentiles_ms[2]),
            format!("{:.1}", summary.delay_percentiles_ms[4]),
            format!("{:.1}", percentile(&delays, 99.0).unwrap_or(0.0)),
            format!("{:.1}", spikes * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: at 6 Mbit/s only a few packets see the +8 ms retransmission delay;");
    println!("at 24 and 36 Mbit/s an increasing share of packets is delayed by multiples of 8 ms.");
}
