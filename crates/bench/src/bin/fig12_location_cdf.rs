//! Figure 12: CDFs, across stationary locations, of the average throughput
//! and the 95th-percentile one-way delay achieved by the four
//! high-throughput schemes (PBE-CC, BBR, CUBIC, Verus).

use pbe_bench::scenarios::{high_throughput_schemes, ScenarioLibrary};
use pbe_bench::TextTable;
use pbe_netsim::Simulation;
use pbe_stats::time::Duration;
use pbe_stats::Cdf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_locations: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seconds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let locations = ScenarioLibrary::subset(n_locations);
    println!(
        "Figure 12 reproduction: {} locations × {} s (paper: 40 × 20 s)\n",
        locations.len(),
        seconds
    );

    let mut per_scheme: Vec<(&str, Vec<f64>, Vec<f64>)> = Vec::new();
    for (scheme, name) in high_throughput_schemes() {
        let mut tputs = Vec::new();
        let mut delays = Vec::new();
        for loc in &locations {
            let result =
                Simulation::new(loc.sim_config(scheme.clone(), Duration::from_secs(seconds))).run();
            tputs.push(result.flows[0].summary.avg_throughput_mbps);
            delays.push(result.flows[0].summary.p95_delay_ms);
        }
        per_scheme.push((name, tputs, delays));
    }

    println!("(a) CDF across locations of average throughput (Mbit/s)\n");
    let mut a = TextTable::new(&["quantile", "PBE", "BBR", "CUBIC", "Verus"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let mut row = vec![format!("{q:.2}")];
        for (_, tputs, _) in &per_scheme {
            row.push(format!(
                "{:.1}",
                Cdf::from_samples(tputs.iter().copied())
                    .quantile(q)
                    .unwrap_or(0.0)
            ));
        }
        a.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for (_, tputs, _) in &per_scheme {
        mean_row.push(format!(
            "{:.1}",
            tputs.iter().sum::<f64>() / tputs.len() as f64
        ));
    }
    a.row(&mean_row);
    println!("{}", a.render());

    println!("(b) CDF across locations of 95th-percentile one-way delay (ms)\n");
    let mut b = TextTable::new(&["quantile", "PBE", "BBR", "CUBIC", "Verus"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let mut row = vec![format!("{q:.2}")];
        for (_, _, delays) in &per_scheme {
            row.push(format!(
                "{:.0}",
                Cdf::from_samples(delays.iter().copied())
                    .quantile(q)
                    .unwrap_or(0.0)
            ));
        }
        b.row(&row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for (_, _, delays) in &per_scheme {
        mean_row.push(format!(
            "{:.0}",
            delays.iter().sum::<f64>() / delays.len() as f64
        ));
    }
    b.row(&mean_row);
    println!("{}", b.render());
    println!("Paper reference: PBE-CC achieves the highest throughput at most locations while its");
    println!("95th-percentile delay CDF sits well to the left of BBR, CUBIC and Verus.");
}
