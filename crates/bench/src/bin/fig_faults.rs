//! Fault injection: outage and decode-loss recovery metrics.
//!
//! Two scenarios on the default three-cell network, crossed with PBE-CC,
//! BBR and CUBIC: (a) the primary cell goes dark for the middle half of the
//! run — the UE declares radio-link failure after the detection deadline
//! and re-selects a 10 MHz neighbour; (b) the control channel is
//! undecodable for 200 ms — PBE-CC rides through on its held estimate.
//! The binary prints per-point recovery metrics (time to reconnect, packets
//! stranded, estimate error across the fault window) next to the flow's
//! throughput and delay.
//!
//! The grid and renderer live in the artifact figure registry
//! (`pbe_bench::artifact`), shared with `pbe-bench artifact`; this binary is
//! the standalone, always-fresh way to run the same figure.

use pbe_bench::artifact;
use pbe_bench::sweep::SweepArgs;

fn main() -> std::io::Result<()> {
    let fig = artifact::find("fig_faults").expect("registered figure");
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(fig.default_seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Fault-injection reproduction ({seconds} s per scenario)\n"
    ));

    let report = args.runner().run((fig.grid)(seconds).expand());
    if writer.wants_json() {
        writer.sweep_json(fig.name, &report)?;
        writer.timing(&report);
        return Ok(());
    }
    (fig.render)(&report, seconds, &writer)?;
    writer.timing(&report);
    Ok(())
}
