//! Figure 21: fairness at the shared primary cell.
//!
//! Three staggered flows (start 0/10/20 s, stop 60/50/40 s) share one
//! primary cell.  Four cases: (a) three PBE-CC flows with similar RTTs,
//! (b) three PBE-CC flows with very different RTTs, (c) two PBE-CC flows
//! against one BBR flow, (d) two PBE-CC flows against one CUBIC flow.  The
//! binary prints the per-second PRB allocation of the primary cell and
//! Jain's fairness index for the two- and three-flow periods.

use pbe_bench::TextTable;
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimConfig, SimResult, Simulation};
use pbe_stats::jain::jain_index;
use pbe_stats::time::{Duration, Instant};

struct Case {
    label: &'static str,
    schemes: [SchemeChoice; 3],
    delays_ms: [u64; 3],
}

fn run_case(case: &Case, total_s: u64) -> SimResult {
    let duration = Duration::from_secs(total_s);
    // Start/stop pattern scaled from the paper's 60 s to `total_s`.
    let scale = total_s as f64 / 60.0;
    let starts = [0.0, 10.0 * scale, 20.0 * scale];
    let stops = [60.0 * scale, 50.0 * scale, 40.0 * scale];
    let ues = [UeId(1), UeId(2), UeId(3)];
    let flows = (0..3)
        .map(|i| {
            FlowConfig::bulk(i as u32 + 1, ues[i], case.schemes[i], duration)
                .with_one_way_delay(Duration::from_millis(case.delays_ms[i]))
                .with_lifetime(
                    Instant::from_millis((starts[i] * 1000.0) as u64),
                    Instant::from_millis((stops[i] * 1000.0) as u64),
                )
        })
        .collect();
    let cfg = SimConfig {
        cellular: CellularConfig::default(),
        load: CellLoadProfile::none(),
        seed: 21,
        duration,
        ues: ues
            .iter()
            .map(|ue| {
                (
                    UeConfig::new(*ue, vec![CellId(0)], 1, -86.0),
                    MobilityTrace::stationary(-86.0),
                )
            })
            .collect(),
        flows,
    };
    Simulation::new(cfg).run()
}

fn main() {
    let total_s: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(18);
    let pbe = SchemeChoice::Pbe;
    let cases = [
        Case {
            label: "(a) three PBE flows, similar RTTs",
            schemes: [pbe, pbe, pbe],
            delays_ms: [24, 26, 28],
        },
        Case {
            label: "(b) three PBE flows, RTTs 52/64/297 ms",
            schemes: [pbe, pbe, pbe],
            delays_ms: [26, 32, 148],
        },
        Case {
            label: "(c) two PBE flows + one BBR flow",
            schemes: [pbe, SchemeChoice::Baseline(SchemeName::Bbr), pbe],
            delays_ms: [24, 26, 28],
        },
        Case {
            label: "(d) two PBE flows + one CUBIC flow",
            schemes: [pbe, SchemeChoice::Baseline(SchemeName::Cubic), pbe],
            delays_ms: [24, 26, 28],
        },
    ];
    println!("Figure 21 reproduction (flow lifetimes scaled from 60 s to {total_s} s)\n");
    for case in &cases {
        let result = run_case(case, total_s);
        println!("=== {} ===\n", case.label);
        let mut table = TextTable::new(&["t (s)", "flow1 PRBs", "flow2 PRBs", "flow3 PRBs"]);
        for interval in result.primary_prb_timeline.iter().step_by(10) {
            table.row(&[
                format!("{:.0}", interval.start_s),
                format!("{:.0}", interval.per_ue.get(&1).copied().unwrap_or(0.0)),
                format!("{:.0}", interval.per_ue.get(&2).copied().unwrap_or(0.0)),
                format!("{:.0}", interval.per_ue.get(&3).copied().unwrap_or(0.0)),
            ]);
        }
        println!("{}", table.render());

        // Jain's index over the window where all three flows are active
        // (scaled 20-40 s window) and where exactly two are active (10-20 s).
        let scale = total_s as f64 / 60.0;
        let jain_over = |lo_s: f64, hi_s: f64, flows: &[u32]| {
            let totals: Vec<f64> = flows
                .iter()
                .map(|id| {
                    result
                        .primary_prb_timeline
                        .iter()
                        .filter(|iv| iv.start_s >= lo_s && iv.start_s < hi_s)
                        .map(|iv| iv.per_ue.get(id).copied().unwrap_or(0.0))
                        .sum()
                })
                .collect();
            jain_index(&totals)
        };
        let two = jain_over(10.0 * scale, 20.0 * scale, &[1, 2]);
        let three = jain_over(20.0 * scale, 40.0 * scale, &[1, 2, 3]);
        println!("Jain's index: two concurrent flows {:.2}%, three concurrent flows {:.2}%\n", two * 100.0, three * 100.0);
    }
    println!("Paper reference: Jain's index 98.3-99.97% in every case; the base station's fairness");
    println!("policy keeps CUBIC/BBR from starving the PBE-CC flows.");
}
