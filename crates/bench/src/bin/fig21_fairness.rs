//! Figure 21: fairness at the shared primary cell.
//!
//! Three staggered flows (start 0/10/20 s, stop 60/50/40 s) share one
//! primary cell.  Four cases: (a) three PBE-CC flows with similar RTTs,
//! (b) three PBE-CC flows with very different RTTs, (c) two PBE-CC flows
//! against one BBR flow, (d) two PBE-CC flows against one CUBIC flow.  The
//! binary prints the per-second PRB allocation of the primary cell and
//! Jain's fairness index for the two- and three-flow periods.
//!
//! Built on `SimBuilder` + the observer API: the PRB timeline is collected
//! by a custom observer from the `SubframeScheduled` event stream — the same
//! stream the simulator's own metrics use — instead of a simulator hook.

use pbe_bench::TextTable;
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimBuilder, SimEvent};
use pbe_stats::jain::jain_index;
use pbe_stats::time::{Duration, Instant};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

struct Case {
    label: &'static str,
    schemes: [SchemeChoice; 3],
    delays_ms: [u64; 3],
}

/// Per-100 ms average PRBs of the primary cell for each foreground UE,
/// accumulated from the `SubframeScheduled` events.
#[derive(Default)]
struct PrbTimeline {
    intervals: Vec<(f64, HashMap<u32, f64>)>,
    accum: HashMap<u32, f64>,
    interval_start_ms: u64,
}

fn run_case(case: &Case, total_s: u64) -> Vec<(f64, HashMap<u32, f64>)> {
    let duration = Duration::from_secs(total_s);
    // Start/stop pattern scaled from the paper's 60 s to `total_s`.
    let scale = total_s as f64 / 60.0;
    let starts = [0.0, 10.0 * scale, 20.0 * scale];
    let stops = [60.0 * scale, 50.0 * scale, 40.0 * scale];
    let ues = [UeId(1), UeId(2), UeId(3)];

    let timeline: Rc<RefCell<PrbTimeline>> = Rc::default();
    let sink = timeline.clone();
    let mut builder = SimBuilder::new()
        .cell_profile(CellularConfig::default(), CellLoadProfile::none())
        .seed(21)
        .duration(duration)
        .observe(move |event: &SimEvent<'_>| {
            let SimEvent::SubframeScheduled { now, report } = event else {
                return;
            };
            let mut tl = sink.borrow_mut();
            for cr in &report.cell_reports {
                if cr.cell != CellId(0) {
                    continue;
                }
                for (i, ue) in [UeId(1), UeId(2), UeId(3)].iter().enumerate() {
                    *tl.accum.entry(i as u32 + 1).or_insert(0.0) +=
                        f64::from(cr.prb_usage.allocated_to(*ue));
                }
            }
            let t_ms = now.as_millis();
            if (t_ms + 1) % 100 == 0 {
                let start_s = tl.interval_start_ms as f64 / 1000.0;
                let per_flow: HashMap<u32, f64> = tl
                    .accum
                    .drain()
                    .map(|(id, total)| (id, total / 100.0))
                    .collect();
                tl.intervals.push((start_s, per_flow));
                tl.interval_start_ms = t_ms + 1;
            }
        });
    for ue in ues {
        builder = builder.ue(
            UeConfig::new(ue, vec![CellId(0)], 1, -86.0),
            MobilityTrace::stationary(-86.0),
        );
    }
    for i in 0..3 {
        builder = builder.flow(
            FlowConfig::bulk(i as u32 + 1, ues[i], case.schemes[i].clone(), duration)
                .with_one_way_delay(Duration::from_millis(case.delays_ms[i]))
                .with_lifetime(
                    Instant::from_millis((starts[i] * 1000.0) as u64),
                    Instant::from_millis((stops[i] * 1000.0) as u64),
                ),
        );
    }
    builder.run();
    Rc::try_unwrap(timeline)
        .unwrap_or_else(|_| panic!("observer dropped with the simulation"))
        .into_inner()
        .intervals
}

fn main() {
    let total_s: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);
    let pbe = SchemeChoice::Pbe;
    let bbr = SchemeChoice::Baseline(SchemeName::Bbr);
    let cubic = SchemeChoice::Baseline(SchemeName::Cubic);
    let cases = [
        Case {
            label: "(a) three PBE flows, similar RTTs",
            schemes: [pbe.clone(), pbe.clone(), pbe.clone()],
            delays_ms: [24, 26, 28],
        },
        Case {
            label: "(b) three PBE flows, RTTs 52/64/297 ms",
            schemes: [pbe.clone(), pbe.clone(), pbe.clone()],
            delays_ms: [26, 32, 148],
        },
        Case {
            label: "(c) two PBE flows + one BBR flow",
            schemes: [pbe.clone(), bbr, pbe.clone()],
            delays_ms: [24, 26, 28],
        },
        Case {
            label: "(d) two PBE flows + one CUBIC flow",
            schemes: [pbe.clone(), cubic, pbe.clone()],
            delays_ms: [24, 26, 28],
        },
    ];
    println!("Figure 21 reproduction (flow lifetimes scaled from 60 s to {total_s} s)\n");
    for case in &cases {
        let intervals = run_case(case, total_s);
        println!("=== {} ===\n", case.label);
        let mut table = TextTable::new(&["t (s)", "flow1 PRBs", "flow2 PRBs", "flow3 PRBs"]);
        for (start_s, per_flow) in intervals.iter().step_by(10) {
            table.row(&[
                format!("{start_s:.0}"),
                format!("{:.0}", per_flow.get(&1).copied().unwrap_or(0.0)),
                format!("{:.0}", per_flow.get(&2).copied().unwrap_or(0.0)),
                format!("{:.0}", per_flow.get(&3).copied().unwrap_or(0.0)),
            ]);
        }
        println!("{}", table.render());

        // Jain's index over the window where all three flows are active
        // (scaled 20-40 s window) and where exactly two are active (10-20 s).
        let scale = total_s as f64 / 60.0;
        let jain_over = |lo_s: f64, hi_s: f64, flows: &[u32]| {
            let totals: Vec<f64> = flows
                .iter()
                .map(|id| {
                    intervals
                        .iter()
                        .filter(|(start_s, _)| *start_s >= lo_s && *start_s < hi_s)
                        .map(|(_, per_flow)| per_flow.get(id).copied().unwrap_or(0.0))
                        .sum()
                })
                .collect();
            jain_index(&totals)
        };
        let two = jain_over(10.0 * scale, 20.0 * scale, &[1, 2]);
        let three = jain_over(20.0 * scale, 40.0 * scale, &[1, 2, 3]);
        println!(
            "Jain's index: two concurrent flows {:.2}%, three concurrent flows {:.2}%\n",
            two * 100.0,
            three * 100.0
        );
    }
    println!(
        "Paper reference: Jain's index 98.3-99.97% in every case; the base station's fairness"
    );
    println!("policy keeps CUBIC/BBR from starving the PBE-CC flows.");
}
