//! Figure 21: fairness at the shared primary cell.
//!
//! Three staggered flows (start 0/10/20 s, stop 60/50/40 s) share one
//! primary cell.  Four cases: (a) three PBE-CC flows with similar RTTs,
//! (b) three PBE-CC flows with very different RTTs, (c) two PBE-CC flows
//! against one BBR flow, (d) two PBE-CC flows against one CUBIC flow.  The
//! binary prints the per-second PRB allocation of the primary cell and
//! Jain's fairness index for the two- and three-flow periods.
//!
//! The four fixed-cast scenarios (each case keeps its own schemes — there is
//! no scheme axis) and the PRB-timeline renderer live in the artifact figure
//! registry (`pbe_bench::artifact`), shared with `pbe-bench artifact`; this
//! binary is the standalone, always-fresh way to run the same figure.

use pbe_bench::artifact;
use pbe_bench::sweep::SweepArgs;

fn main() -> std::io::Result<()> {
    let fig = artifact::find("fig21_fairness").expect("registered figure");
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(fig.default_seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 21 reproduction (flow lifetimes scaled from 60 s to {seconds} s)\n"
    ));

    let report = args.runner().run((fig.grid)(seconds).expand());
    if writer.wants_json() {
        writer.sweep_json(fig.name, &report)?;
        writer.timing(&report);
        return Ok(());
    }
    (fig.render)(&report, seconds, &writer)?;
    writer.timing(&report);
    Ok(())
}
