//! Figure 21: fairness at the shared primary cell.
//!
//! Three staggered flows (start 0/10/20 s, stop 60/50/40 s) share one
//! primary cell.  Four cases: (a) three PBE-CC flows with similar RTTs,
//! (b) three PBE-CC flows with very different RTTs, (c) two PBE-CC flows
//! against one BBR flow, (d) two PBE-CC flows against one CUBIC flow.  The
//! binary prints the per-second PRB allocation of the primary cell and
//! Jain's fairness index for the two- and three-flow periods.
//!
//! Each case is one [`ScenarioSpec`] whose flows keep their own schemes (the
//! mixed-scheme cases have no single "scheme under test"), and the four
//! cases run as one parallel sweep.  The PRB timeline comes straight from
//! [`SimResult::primary_prb_timeline`](pbe_netsim::SimResult) — the built-in
//! metrics observer derives it from the same `SubframeScheduled` event
//! stream the binary's bespoke observer used to tap.

use pbe_bench::sweep::{ScenarioSpec, SweepArgs, SweepGrid};
use pbe_bench::TextTable;
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_netsim::{FlowConfig, PrbInterval, SchemeChoice};
use pbe_stats::jain::jain_index;
use pbe_stats::time::{Duration, Instant};

struct Case {
    label: &'static str,
    schemes: [SchemeChoice; 3],
    delays_ms: [u64; 3],
}

fn case_scenario(case: &Case, total_s: u64) -> ScenarioSpec {
    let duration = Duration::from_secs(total_s);
    // Start/stop pattern scaled from the paper's 60 s to `total_s`.
    let scale = total_s as f64 / 60.0;
    let starts = [0.0, 10.0 * scale, 20.0 * scale];
    let stops = [60.0 * scale, 50.0 * scale, 40.0 * scale];
    let ues = [UeId(1), UeId(2), UeId(3)];

    let mut spec = ScenarioSpec::new(case.label, SchemeChoice::Pbe, duration).seed(21);
    for ue in ues {
        spec = spec.ue(
            UeConfig::new(ue, vec![CellId(0)], 1, -86.0),
            MobilityTrace::stationary(-86.0),
        );
    }
    for i in 0..3 {
        // Every flow keeps its configured scheme: these are fixed-cast
        // scenarios, not points on a scheme axis.
        spec = spec.background_flow(
            FlowConfig::bulk(i as u32 + 1, ues[i], case.schemes[i].clone(), duration)
                .with_one_way_delay(Duration::from_millis(case.delays_ms[i]))
                .with_lifetime(
                    Instant::from_millis((starts[i] * 1000.0) as u64),
                    Instant::from_millis((stops[i] * 1000.0) as u64),
                ),
        );
    }
    spec
}

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let total_s = args.seconds_or(18);
    let writer = args.writer()?;
    let pbe = SchemeChoice::Pbe;
    let bbr = SchemeChoice::Baseline(SchemeName::Bbr);
    let cubic = SchemeChoice::Baseline(SchemeName::Cubic);
    let cases = [
        Case {
            label: "(a) three PBE flows, similar RTTs",
            schemes: [pbe.clone(), pbe.clone(), pbe.clone()],
            delays_ms: [24, 26, 28],
        },
        Case {
            label: "(b) three PBE flows, RTTs 52/64/297 ms",
            schemes: [pbe.clone(), pbe.clone(), pbe.clone()],
            delays_ms: [26, 32, 148],
        },
        Case {
            label: "(c) two PBE flows + one BBR flow",
            schemes: [pbe.clone(), bbr, pbe.clone()],
            delays_ms: [24, 26, 28],
        },
        Case {
            label: "(d) two PBE flows + one CUBIC flow",
            schemes: [pbe.clone(), cubic, pbe.clone()],
            delays_ms: [24, 26, 28],
        },
    ];
    writer.note(&format!(
        "Figure 21 reproduction (flow lifetimes scaled from 60 s to {total_s} s)\n"
    ));

    let grid = SweepGrid::over(
        cases
            .iter()
            .map(|case| case_scenario(case, total_s))
            .collect(),
    );
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig21_fairness", &report)?;
        writer.timing(&report);
        return Ok(());
    }

    for (case_index, outcome) in report.outcomes.iter().enumerate() {
        let intervals: &[PrbInterval] = &outcome.result.primary_prb_timeline;
        let mut table = TextTable::new(&["t (s)", "flow1 PRBs", "flow2 PRBs", "flow3 PRBs"]);
        for interval in intervals.iter().step_by(10) {
            table.row(&[
                format!("{:.0}", interval.start_s),
                format!("{:.0}", interval.prbs_for(1)),
                format!("{:.0}", interval.prbs_for(2)),
                format!("{:.0}", interval.prbs_for(3)),
            ]);
        }
        writer.table(
            &format!("fig21_case_{case_index}"),
            &outcome.spec.label,
            &table,
        )?;

        // Jain's index over the window where all three flows are active
        // (scaled 20-40 s window) and where exactly two are active (10-20 s).
        let scale = total_s as f64 / 60.0;
        let jain_over = |lo_s: f64, hi_s: f64, flows: &[u32]| {
            let totals: Vec<f64> = flows
                .iter()
                .map(|id| {
                    intervals
                        .iter()
                        .filter(|iv| iv.start_s >= lo_s && iv.start_s < hi_s)
                        .map(|iv| iv.prbs_for(*id))
                        .sum()
                })
                .collect();
            jain_index(&totals)
        };
        let two = jain_over(10.0 * scale, 20.0 * scale, &[1, 2]);
        let three = jain_over(20.0 * scale, 40.0 * scale, &[1, 2, 3]);
        writer.note(&format!(
            "Jain's index: two concurrent flows {:.2}%, three concurrent flows {:.2}%\n",
            two * 100.0,
            three * 100.0
        ));
    }
    writer.timing(&report);
    writer.note(
        "\nPaper reference: Jain's index 98.3-99.97% in every case; the base station's fairness",
    );
    writer.note("policy keeps CUBIC/BBR from starving the PBE-CC flows.");
    Ok(())
}
