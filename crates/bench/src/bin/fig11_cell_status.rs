//! Figure 11: micro-benchmark of the cell status over a day — (a) number of
//! users with data activity per hour for a 20 MHz and a 10 MHz cell, and
//! (b) the CDF of the users' physical data rate.

use pbe_bench::TextTable;
use pbe_cellular::mcs::bits_per_prb;
use pbe_cellular::traffic::{BackgroundTraffic, CellLoadProfile};
use pbe_stats::{Cdf, DetRng};

fn main() {
    // Scale: how many simulated subframes stand in for one hour.  The diurnal
    // *shape* is what matters; 60 000 subframes (one minute) per hour point
    // keeps the run fast while sampling plenty of users.
    let subframes_per_hour: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);

    println!("Figure 11(a): users with data activity per hour (sampled over {subframes_per_hour} subframes/hour)\n");
    let mut table = TextTable::new(&["hour", "20 MHz cell", "10 MHz cell"]);
    let mut all_rates = Vec::new();
    for hour in 0..24u64 {
        let factor = CellLoadProfile::diurnal_factor(hour as f64 + 0.5);
        let mut counts = Vec::new();
        for (cell_idx, base_scale) in [(0u64, 1.0), (1u64, 0.55)] {
            // The 10 MHz cell serves roughly half the users of the 20 MHz one
            // and is switched off by the operator between 00:00 and 03:00.
            let off = cell_idx == 1 && hour < 3;
            let profile =
                CellLoadProfile::busy().scaled(if off { 0.0 } else { factor * base_scale });
            let mut bg = BackgroundTraffic::new(profile, DetRng::new(1100 + hour * 10 + cell_idx));
            let mut data_users = std::collections::HashSet::new();
            for sf in 0..subframes_per_hour {
                for g in bg.tick(sf) {
                    if !g.is_control {
                        data_users.insert(g.rnti);
                        all_rates.push(bits_per_prb(g.cqi, 1) / 1000.0); // Mbit/s per PRB
                    }
                }
            }
            counts.push(data_users.len());
        }
        table.row(&[
            format!("{hour}"),
            format!("{}", counts[0]),
            format!("{}", counts[1]),
        ]);
    }
    println!("{}", table.render());

    println!("Figure 11(b): CDF of per-user physical data rate (Mbit/s per PRB)\n");
    let cdf = Cdf::from_samples(all_rates);
    let mut b = TextTable::new(&["rate (Mbit/s/PRB)", "CDF"]);
    for x in [0.2, 0.4, 0.6, 0.8, 0.9, 1.2, 1.6, 1.8] {
        b.row(&[format!("{x:.1}"), format!("{:.2}", cdf.eval(x))]);
    }
    println!("{}", b.render());
    println!(
        "Fraction below half the 1.8 Mbit/s/PRB maximum: {:.1}% (paper: 71.9-77.4%)",
        cdf.eval(0.9) * 100.0
    );
    println!("\nPaper reference: 12:00-20:00 average 181 (20 MHz) / 97 (10 MHz) users per hour,");
    println!("10 MHz cell off between 00:00 and 03:00; most users well below the peak rate.");
}
