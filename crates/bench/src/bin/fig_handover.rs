//! Inter-cell handover: scheme comparison across a cell crossing, the
//! PBE-CC capacity-estimate timeline through the switch, and a city-scale
//! mobility summary.
//!
//! The paper's mobility experiment (Fig. 16/17) walks one device to the
//! cell edge and back without ever leaving the cell.  This binary covers
//! the event the paper could not: a *crossing* — the serving cell fades
//! −85 → −110 dBm while a neighbour rises symmetrically, the A3 machinery
//! fires, queued and in-flight data is forwarded, and the endpoint's PDCCH
//! monitor re-acquires the target cell after a blind gap.  Three tables:
//!
//! 1. every scheme across the crossing (throughput, delay, handover count),
//! 2. the PBE-CC capacity feedback in 500 ms bins around the handover —
//!    the estimate must ride through the re-acquisition gap without
//!    spiking, then re-converge onto the target cell, and
//! 3. a small `city_scale` sweep (grid of cells, a fleet of driving UEs)
//!    comparing PBE-CC and BBR under continuous handover pressure.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::sweep::{CityScale, ScenarioSpec, SweepArgs, SweepGrid};
use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimBuilder, SimEvent};
use pbe_stats::time::Duration;
use std::cell::RefCell;
use std::rc::Rc;

const LABEL: &str = "handover crossing";

/// The crossing: cell 0 fades while cell 1 rises, crossing half-way
/// through the run; the UE carries one bulk flow under the swept scheme.
fn crossing_scenario(seconds: u64) -> ScenarioSpec {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    let fade = seconds as f64 * 0.75;
    ScenarioSpec::new(LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(34)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 1, -85.0),
            MobilityTrace::stationary(-85.0),
        )
        .trajectory(
            ue,
            CellId(0),
            MobilityTrace::from_secs(&[(0.0, -85.0), (fade, -110.0)]),
        )
        .trajectory(
            ue,
            CellId(1),
            MobilityTrace::from_secs(&[(0.0, -110.0), (fade, -85.0)]),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
}

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(12);
    let writer = args.writer()?;
    writer.note(&format!(
        "Handover reproduction: serving cell fades -85 -> -110 dBm while the \
         target rises symmetrically over {:.0} s\n",
        seconds as f64 * 0.75
    ));

    // Table 1: every scheme across the same crossing.
    let grid = SweepGrid::over(vec![crossing_scenario(seconds)])
        .schemes(paper_schemes().into_iter().map(|(s, _)| s));
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig_handover", &report)?;
        writer.timing(&report);
        return Ok(());
    }

    let mut table = TextTable::new(&[
        "scheme",
        "handovers",
        "avg tput (Mbit/s)",
        "median delay (ms)",
        "p95 delay (ms)",
    ]);
    for outcome in report.by_label(LABEL) {
        let s = &outcome.result.flows[0].summary;
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{}", outcome.result.handovers.len()),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.delay_percentiles_ms[2]),
            format!("{:.0}", s.p95_delay_ms),
        ]);
    }
    writer.table(
        "handover_schemes",
        "All schemes across the crossing",
        &table,
    )?;

    // Table 2: the PBE-CC capacity feedback through the switch, from the
    // observer stream of a single instrumented run.
    let estimates: Rc<RefCell<Vec<(u64, f64)>>> = Rc::default();
    let handovers: Rc<RefCell<Vec<(u64, CellId, CellId)>>> = Rc::default();
    let est_sink = estimates.clone();
    let ho_sink = handovers.clone();
    let spec = crossing_scenario(seconds);
    let result = SimBuilder::from_config(spec.sim_config())
        .observe(move |event: &SimEvent<'_>| match event {
            SimEvent::CapacityEstimated { at, feedback, .. } => {
                est_sink
                    .borrow_mut()
                    .push((at.as_millis(), feedback.capacity_bps()));
            }
            SimEvent::Handover { at, from, to, .. } => {
                ho_sink.borrow_mut().push((at.as_millis(), *from, *to));
            }
            _ => {}
        })
        .run();
    let gap_ms = spec.cellular.handover.reacquisition_gap_ms;
    let mut t = TextTable::new(&["t (s)", "mean estimate (Mbit/s)", "tput (Mbit/s)", "event"]);
    let estimates = estimates.borrow();
    let handovers = handovers.borrow();
    let bins = (seconds * 2) as usize;
    for bin in 0..bins {
        let (lo, hi) = (bin as u64 * 500, (bin as u64 + 1) * 500);
        let in_bin: Vec<f64> = estimates
            .iter()
            .filter(|(at, _)| (lo..hi).contains(at))
            .map(|(_, bps)| bps / 1e6)
            .collect();
        let mean = if in_bin.is_empty() {
            0.0
        } else {
            in_bin.iter().sum::<f64>() / in_bin.len() as f64
        };
        let tput_bins = &result.flows[0].throughput_timeline_mbps;
        let tput: f64 = tput_bins
            [(bin * 5).min(tput_bins.len())..((bin + 1) * 5).min(tput_bins.len())]
            .iter()
            .sum::<f64>()
            / 5.0;
        let event = handovers
            .iter()
            .find(|(at, _, _)| (lo..hi).contains(at))
            .map(|(at, from, to)| {
                format!(
                    "handover {from}->{to} @ {:.1} s (+{gap_ms} ms gap)",
                    *at as f64 / 1000.0
                )
            })
            .unwrap_or_default();
        t.row(&[
            format!("{:.1}", bin as f64 * 0.5),
            format!("{mean:.1}"),
            format!("{tput:.1}"),
            event,
        ]);
    }
    writer.table(
        "handover_timeline",
        "PBE-CC capacity feedback through the handover (500 ms bins)",
        &t,
    )?;

    // Table 3: city-scale mobility, PBE vs BBR.
    let city = CityScale::driving(3, 2, 12).seconds(seconds.min(20));
    let city_grid = SweepGrid::over(vec![city.scenario()])
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("BBR")]);
    let city_report = args.runner().run(city_grid.expand());
    let mut c = TextTable::new(&[
        "scheme",
        "UEs",
        "handovers",
        "mean tput/UE (Mbit/s)",
        "p95 delay (ms)",
    ]);
    for outcome in &city_report.outcomes {
        let r = &outcome.result;
        let mean_tput = r
            .flows
            .iter()
            .map(|f| f.summary.avg_throughput_mbps)
            .sum::<f64>()
            / r.flows.len() as f64;
        let p95 = r
            .flows
            .iter()
            .map(|f| f.summary.p95_delay_ms)
            .fold(0.0f64, f64::max);
        c.row(&[
            outcome.spec.scheme.to_string(),
            format!("{}", r.flows.len()),
            format!("{}", r.handovers.len()),
            format!("{mean_tput:.1}"),
            format!("{p95:.0}"),
        ]);
    }
    writer.table(
        "city_scale",
        "City-scale mobility (3x2 cells, 12 driving UEs): PBE vs BBR",
        &c,
    )?;
    writer.timing(&report);
    writer.note(
        "\nPBE-CC rides the re-acquisition gap on its held estimate, then re-converges onto the",
    );
    writer.note(
        "target cell; end-to-end schemes rediscover the path from scratch after every switch.",
    );
    Ok(())
}
