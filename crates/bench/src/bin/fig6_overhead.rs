//! Figure 6: (a) retransmission and protocol overhead vs offered load at two
//! RSSI levels, and (b) transport-block error rate vs transport-block size
//! for the theoretical i.i.d.-BER model alongside the simulated channel.

use pbe_bench::TextTable;
use pbe_cellular::channel::{ber_from_sinr, tb_error_probability, NOISE_FLOOR_DBM};
use pbe_core::translate::RateTranslator;

fn main() {
    println!("Figure 6(a): capacity overhead vs offered load (RSSI -98 dBm and -113 dBm)\n");
    let translator = RateTranslator::default();
    let mut a = TextTable::new(&[
        "load (Mbit/s)",
        "retx ovh -98dBm (%)",
        "proto ovh (%)",
        "retx ovh -113dBm (%)",
    ]);
    for load_mbps in (5..=40).step_by(5) {
        let ct_bits_per_subframe = load_mbps as f64 * 1e6 / 1000.0;
        let ber_strong = ber_from_sinr(-98.0 - NOISE_FLOOR_DBM);
        let ber_weak = ber_from_sinr(-113.0 - NOISE_FLOOR_DBM);
        let (retx_strong, proto) = translator.overhead_fraction(ct_bits_per_subframe, ber_strong);
        let (retx_weak, _) = translator.overhead_fraction(ct_bits_per_subframe, ber_weak);
        a.row(&[
            format!("{load_mbps}"),
            format!("{:.1}", retx_strong * 100.0),
            format!("{:.1}", proto * 100.0),
            format!("{:.1}", retx_weak * 100.0),
        ]);
    }
    println!("{}", a.render());

    println!("Figure 6(b): transport-block error rate vs transport-block size\n");
    let mut b = TextTable::new(&[
        "TB size (kbit)",
        "BER 1e-6",
        "BER 2e-6",
        "BER 3e-6",
        "BER 5e-6",
        "sim -98dBm",
        "sim -113dBm",
    ]);
    for tb_kbit in (10..=70).step_by(10) {
        let l = tb_kbit as u64 * 1000;
        let sim_strong = tb_error_probability(l, ber_from_sinr(-98.0 - NOISE_FLOOR_DBM));
        let sim_weak = tb_error_probability(l, ber_from_sinr(-113.0 - NOISE_FLOOR_DBM));
        b.row(&[
            format!("{tb_kbit}"),
            format!("{:.3}", tb_error_probability(l, 1e-6)),
            format!("{:.3}", tb_error_probability(l, 2e-6)),
            format!("{:.3}", tb_error_probability(l, 3e-6)),
            format!("{:.3}", tb_error_probability(l, 5e-6)),
            format!("{:.3}", sim_strong),
            format!("{:.3}", sim_weak),
        ]);
    }
    println!("{}", b.render());
    println!(
        "Paper reference: protocol overhead flat at 6.8%; retransmission overhead grows with load"
    );
    println!("and is larger on the weak (-113 dBm) link; TB error rate follows 1-(1-p)^L.");
}
