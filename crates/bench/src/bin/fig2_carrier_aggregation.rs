//! Figure 2: carrier activation and deactivation under a fixed offered load.
//!
//! A sender offers 40 Mbit/s for two seconds (more than the primary cell can
//! carry at this location's physical rate budget share), causing a queue to
//! build and a secondary cell to be activated; it then drops to 6 Mbit/s and
//! the secondary cell is deactivated.  The binary prints the per-100 ms PRB
//! allocation on both cells and the packet delay, i.e. the series Fig. 2
//! plots.

use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{AppModel, FlowConfig, SchemeChoice, SimConfig, Simulation};
use pbe_stats::time::{Duration, Instant};

fn main() {
    let ue = UeId(1);
    // Weak channel so 40 Mbit/s genuinely exceeds the primary cell's share.
    let rssi = -103.0;
    let duration = Duration::from_secs(5);
    let mut cellular = CellularConfig::default();
    cellular.ca_activation_subframes = 100;
    cellular.ca_deactivation_subframes = 300;
    let flows = vec![
        FlowConfig {
            app: AppModel::ConstantRate(40e6),
            ..FlowConfig::bulk(1, ue, SchemeChoice::FixedRate, duration)
        }
        .with_lifetime(Instant::ZERO, Instant::from_secs(2)),
        FlowConfig {
            app: AppModel::ConstantRate(6e6),
            ..FlowConfig::bulk(2, ue, SchemeChoice::FixedRate, duration)
        }
        .with_lifetime(Instant::from_secs(2), Instant::from_secs(5)),
    ];
    let cfg = SimConfig {
        cellular,
        load: CellLoadProfile::none(),
        seed: 2,
        duration,
        ues: vec![(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 2, rssi),
            MobilityTrace::stationary(rssi),
        )],
        flows,
    };
    let result = Simulation::new(cfg).run();

    println!("Figure 2 reproduction: 40 Mbit/s offered load for 2 s, then 6 Mbit/s.\n");
    let mut table = TextTable::new(&["t (s)", "delay (ms)", "tput (Mbit/s)"]);
    for (i, w) in result.flows[0]
        .throughput_timeline_mbps
        .iter()
        .zip(&result.flows[0].delay_timeline_ms)
        .enumerate()
        .map(|(i, (t, d))| (i, (t, d)))
    {
        let (tput, delay) = w;
        table.row(&[
            format!("{:.1}", i as f64 * 0.1),
            delay.map(|d| format!("{d:.1}")).unwrap_or_else(|| "-".into()),
            format!("{tput:.1}"),
        ]);
    }
    println!("{}", table.render());

    println!("Carrier aggregation events:");
    for e in &result.ca_events {
        println!(
            "  t = {:.2} s: {} {}",
            e.at.as_secs_f64(),
            if e.activated { "activated" } else { "deactivated" },
            e.cell
        );
    }
    if result.ca_events.is_empty() {
        println!("  (none)");
    }
    println!("\nPaper reference: secondary cell activated ~0.13 s after the 40 Mbit/s flow starts,");
    println!("queue drained within ~0.6 s, secondary cell deactivated after the rate drops to 6 Mbit/s.");
}
