//! Figure 2: carrier activation and deactivation under a fixed offered load.
//!
//! A sender offers 40 Mbit/s for two seconds (more than the primary cell can
//! carry at this location's physical rate budget share), causing a queue to
//! build and a secondary cell to be activated; it then drops to 6 Mbit/s and
//! the secondary cell is deactivated.  The binary prints the per-100 ms PRB
//! allocation on both cells and the packet delay, i.e. the series Fig. 2
//! plots.
//!
//! Built on `SimBuilder` + the observer API: the delay/throughput timeline
//! comes from a `FlowSummaryBuilder` fed by `PacketDelivered` events, and
//! the carrier events from `CaTriggered` — no bespoke simulator hooks.

use pbe_bench::TextTable;
use pbe_cellular::carrier::CaEvent;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{AppModel, FlowConfig, SchemeChoice, SimBuilder, SimEvent};
use pbe_stats::summary::FlowSummaryBuilder;
use pbe_stats::time::{Duration, Instant};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Default)]
struct Fig2Telemetry {
    summary: Option<FlowSummaryBuilder>,
    ca_events: Vec<CaEvent>,
}

fn main() {
    let ue = UeId(1);
    // Weak channel so 40 Mbit/s genuinely exceeds the primary cell's share.
    let rssi = -103.0;
    let duration = Duration::from_secs(5);
    let cellular = CellularConfig {
        ca_activation_subframes: 100,
        ca_deactivation_subframes: 300,
        ..CellularConfig::default()
    };

    let telemetry: Rc<RefCell<Fig2Telemetry>> = Rc::default();
    telemetry.borrow_mut().summary = Some(FlowSummaryBuilder::new("Fixed"));
    let sink = telemetry.clone();

    SimBuilder::new()
        .cell_profile(cellular, CellLoadProfile::none())
        .seed(2)
        .duration(duration)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 2, rssi),
            MobilityTrace::stationary(rssi),
        )
        .flow(
            FlowConfig {
                app: AppModel::ConstantRate(40e6),
                ..FlowConfig::bulk(1, ue, SchemeChoice::FixedRate, duration)
            }
            .with_lifetime(Instant::ZERO, Instant::from_secs(2)),
        )
        .flow(
            FlowConfig {
                app: AppModel::ConstantRate(6e6),
                ..FlowConfig::bulk(2, ue, SchemeChoice::FixedRate, duration)
            }
            .with_lifetime(Instant::from_secs(2), Instant::from_secs(5)),
        )
        .observe(move |event: &SimEvent<'_>| {
            let mut t = sink.borrow_mut();
            match event {
                SimEvent::PacketDelivered {
                    flow: 1,
                    at,
                    bytes,
                    one_way,
                    delivered: true,
                    ..
                } => {
                    t.summary
                        .as_mut()
                        .expect("initialised")
                        .record_packet(*at, *bytes, *one_way);
                }
                SimEvent::CaTriggered { event } => t.ca_events.push(*event),
                _ => {}
            }
        })
        .run();

    let mut telemetry = telemetry.borrow_mut();
    let windows = telemetry
        .summary
        .as_mut()
        .expect("initialised")
        .windows()
        .windows()
        .to_vec();
    println!("Figure 2 reproduction: 40 Mbit/s offered load for 2 s, then 6 Mbit/s.\n");
    let mut table = TextTable::new(&["t (s)", "delay (ms)", "tput (Mbit/s)"]);
    for (i, w) in windows.iter().enumerate() {
        table.row(&[
            format!("{:.1}", i as f64 * 0.1),
            w.mean_delay_ms
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", w.throughput_mbps),
        ]);
    }
    println!("{}", table.render());

    println!("Carrier aggregation events:");
    for e in &telemetry.ca_events {
        println!(
            "  t = {:.2} s: {} {}",
            e.at.as_secs_f64(),
            if e.activated {
                "activated"
            } else {
                "deactivated"
            },
            e.cell
        );
    }
    if telemetry.ca_events.is_empty() {
        println!("  (none)");
    }
    println!(
        "\nPaper reference: secondary cell activated ~0.13 s after the 40 Mbit/s flow starts,"
    );
    println!(
        "queue drained within ~0.6 s, secondary cell deactivated after the rate drops to 6 Mbit/s."
    );
}
