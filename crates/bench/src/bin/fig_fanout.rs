//! Shared-backhaul fan-out: scheme comparison behind one undersized
//! aggregation link, and the aggregation queue's occupancy timeline.
//!
//! The paper's experiments give every flow a private wired path, so the
//! radio is always the shared resource.  This binary studies the opposite
//! regime — a CDN-edge fan-out where many cells hang off one metro
//! aggregation link sized *below* the summed radio capacity, so the
//! bottleneck lives in the backhaul and the radio capacity estimate alone
//! over-reports the flow's fair share.  Two tables:
//!
//! 1. every scheme through the same undersized aggregation link: delivered
//!    goodput, marks/drops at the shared queue, and its queueing delay —
//!    the signaling-assisted baselines (`CUBIC-ECN` reacting to marks,
//!    `SFC` backpressured straight from the marking queue) should hold the
//!    shared queue far below what loss-based probing does, and
//! 2. the aggregation queue's 100 ms occupancy timeline for the probing
//!    and signal-reacting extremes, from the same per-link telemetry.

use pbe_bench::sweep::{Fanout, SweepArgs, SweepGrid};
use pbe_bench::TextTable;
use pbe_netsim::SchemeChoice;

const CELLS: u16 = 8;
const FLOWS: u32 = 64;
/// Aggregation rate, far below the ~8 cells × ~35 Mbit/s of summed radio.
const AGG_RATE_BPS: f64 = 60e6;
const AGG_QUEUE_BYTES: u64 = 180_000;

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(2);
    let writer = args.writer()?;
    writer.note(&format!(
        "Fan-out reproduction: {FLOWS} flows over {CELLS} cells behind one \
         {:.0} Mbit/s aggregation link ({seconds} s per scheme)\n",
        AGG_RATE_BPS / 1e6
    ));

    let base = Fanout::new(CELLS, FLOWS)
        .seconds(seconds)
        .agg(AGG_RATE_BPS, AGG_QUEUE_BYTES)
        .scenario();
    let grid = SweepGrid::over(vec![base]).schemes([
        SchemeChoice::Pbe,
        SchemeChoice::named("CUBIC"),
        SchemeChoice::named("CUBIC-ECN"),
        SchemeChoice::named("SFC"),
        SchemeChoice::named("BBR"),
    ]);
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig_fanout", &report)?;
        writer.timing(&report);
        return Ok(());
    }

    let mut table = TextTable::new(&[
        "scheme",
        "delivered (Mbit/s)",
        "agg marks",
        "agg drops",
        "agg p50 queue (ms)",
        "agg p95 queue (ms)",
        "flow p95 delay (ms)",
    ]);
    for outcome in &report.outcomes {
        let r = &outcome.result;
        let agg = &r.backhaul_links[0];
        let delivered: f64 = r.flows.iter().map(|f| f.summary.avg_throughput_mbps).sum();
        let p95_delay = r
            .flows
            .iter()
            .map(|f| f.summary.p95_delay_ms)
            .fold(0.0f64, f64::max);
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{delivered:.1}"),
            format!("{}", agg.stats.marked_packets),
            format!("{}", agg.stats.dropped_packets),
            format!("{:.1}", agg.p50_queue_delay_ms),
            format!("{:.1}", agg.p95_queue_delay_ms),
            format!("{p95_delay:.0}"),
        ]);
    }
    writer.table(
        "fanout_schemes",
        "All schemes through the shared aggregation link",
        &table,
    )?;

    // Table 2: the shared queue's occupancy through time — the probing
    // extreme next to the signal-reacting one.
    let mut t = TextTable::new(&["t (s)", "CUBIC agg queue (kB)", "SFC agg queue (kB)"]);
    let timeline = |scheme: &str| -> &[u64] {
        report
            .outcomes
            .iter()
            .find(|o| o.spec.scheme.to_string() == scheme)
            .map(|o| &o.result.backhaul_links[0].queue_timeline_bytes[..])
            .unwrap_or(&[])
    };
    let (cubic, sfc) = (timeline("CUBIC"), timeline("SFC"));
    for (i, window) in cubic.iter().enumerate() {
        t.row(&[
            format!("{:.1}", i as f64 * 0.1),
            format!("{:.0}", *window as f64 / 1000.0),
            format!(
                "{:.0}",
                sfc.get(i).copied().unwrap_or_default() as f64 / 1000.0
            ),
        ]);
    }
    writer.table(
        "fanout_agg_queue",
        "Aggregation queue occupancy (100 ms windows, max bytes)",
        &t,
    )?;
    writer.timing(&report);
    writer.note("\nLoss-based probing fills the shared queue to the drop point; the near-source");
    writer.note("signal (SFC) and ECN reaction cap it around the marking threshold instead.");
    Ok(())
}
