//! Figures 18 and 19: controlled on-off competition.  A flow under test
//! shares the cell with a 60 Mbit/s competitor that is on for 4 seconds out
//! of every 8.  Fig. 18 compares the schemes; Fig. 19 shows the PBE-CC and
//! BBR timelines.
//!
//! The grid (competitor flows as background flows, only the flow under test
//! takes the scheme axis) and both table renderers live in the artifact
//! figure registry (`pbe_bench::artifact`), shared with `pbe-bench
//! artifact`; this binary is the standalone, always-fresh way to run the
//! same figure.

use pbe_bench::artifact;
use pbe_bench::sweep::SweepArgs;

fn main() -> std::io::Result<()> {
    let fig = artifact::find("fig18_19_competition").expect("registered figure");
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(fig.default_seconds);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 18 reproduction: on-off 60 Mbit/s competitor, {seconds} s runs\n"
    ));

    let report = args.runner().run((fig.grid)(seconds).expand());
    if writer.wants_json() {
        writer.sweep_json(fig.name, &report)?;
        writer.timing(&report);
        return Ok(());
    }
    (fig.render)(&report, seconds, &writer)?;
    writer.timing(&report);
    Ok(())
}
