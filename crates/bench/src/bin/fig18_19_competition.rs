//! Figures 18 and 19: controlled on-off competition.  A 40-second flow under
//! test shares the cell with a 60 Mbit/s competitor that is on for 4 seconds
//! out of every 8.  Fig. 18 compares the schemes; Fig. 19 shows the PBE-CC
//! and BBR timelines.
//!
//! The competitor flows are background flows of the [`ScenarioSpec`] — only
//! the flow under test takes the sweep's scheme axis — and the eight schemes
//! run as one parallel sweep.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::sweep::{ScenarioSpec, SweepArgs, SweepGrid};
use pbe_bench::TextTable;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{AppModel, FlowConfig, SchemeChoice, SimResult};
use pbe_stats::time::{Duration, Instant};

const LABEL: &str = "Fig18 on-off competition";

fn competition_scenario(seconds: u64) -> ScenarioSpec {
    let ue = UeId(1);
    let competitor = UeId(2);
    let duration = Duration::from_secs(seconds);
    let mut spec = ScenarioSpec::new(LABEL, SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(18)
        .ue(
            UeConfig::new(ue, vec![CellId(0)], 1, -88.0),
            MobilityTrace::stationary(-88.0),
        )
        .ue(
            UeConfig::new(competitor, vec![CellId(0)], 1, -88.0),
            MobilityTrace::stationary(-88.0),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration));
    // Competing 60 Mbit/s flow for 4 s out of every 8 s, on a second device.
    let mut id = 100;
    let mut t = 4u64;
    while t + 4 <= seconds {
        spec = spec.background_flow(
            FlowConfig {
                app: AppModel::ConstantRate(60e6),
                ..FlowConfig::bulk(id, competitor, SchemeChoice::FixedRate, duration)
            }
            .with_lifetime(Instant::from_secs(t), Instant::from_secs(t + 4)),
        );
        id += 1;
        t += 8;
    }
    spec
}

fn main() -> std::io::Result<()> {
    let args = SweepArgs::parse();
    let seconds = args.seconds_or(24);
    let writer = args.writer()?;
    writer.note(&format!(
        "Figure 18 reproduction: on-off 60 Mbit/s competitor, {seconds} s runs\n"
    ));

    let grid = SweepGrid::over(vec![competition_scenario(seconds)])
        .schemes(paper_schemes().into_iter().map(|(s, _)| s));
    let report = args.runner().run(grid.expand());

    if writer.wants_json() {
        writer.sweep_json("fig18_19_competition", &report)?;
        writer.timing(&report);
        return Ok(());
    }

    let mut table = TextTable::new(&[
        "scheme",
        "avg tput (Mbit/s)",
        "avg delay (ms)",
        "p95 delay (ms)",
    ]);
    for outcome in report.by_label(LABEL) {
        let s = &outcome.result.flows[0].summary;
        table.row(&[
            outcome.spec.scheme.to_string(),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.avg_delay_ms),
            format!("{:.0}", s.p95_delay_ms),
        ]);
    }
    writer.table("fig18_schemes", "Fig18: all schemes", &table)?;

    let pbe = &report.outcome(LABEL, "PBE").expect("PBE ran").result;
    let bbr = &report.outcome(LABEL, "BBR").expect("BBR ran").result;
    let mut t = TextTable::new(&[
        "t (s)",
        "competitor",
        "PBE tput",
        "PBE delay",
        "BBR tput",
        "BBR delay",
    ]);
    let windows = pbe.flows[0].throughput_timeline_mbps.len();
    for w in (0..windows).step_by(2) {
        let time_s = w as f64 * 0.1;
        let competitor_on =
            ((time_s as u64).saturating_sub(4) / 4).is_multiple_of(2) && time_s >= 4.0;
        let cell = |r: &SimResult| {
            let f = &r.flows[0];
            (
                f.throughput_timeline_mbps[w],
                f.delay_timeline_ms[w].unwrap_or(0.0),
            )
        };
        let (pt, pd) = cell(pbe);
        let (bt, bd) = cell(bbr);
        t.row(&[
            format!("{time_s:.1}"),
            if competitor_on {
                "on".into()
            } else {
                "".into()
            },
            format!("{pt:.1}"),
            format!("{pd:.0}"),
            format!("{bt:.1}"),
            format!("{bd:.0}"),
        ]);
    }
    writer.table(
        "fig19_timeline",
        "Fig19: 200 ms-granularity timeline (competitor on during shaded intervals)",
        &t,
    )?;
    writer.timing(&report);
    writer.note(
        "\nPaper reference: PBE-CC ~57 Mbit/s with 61/71 ms avg/p95 delay; BBR slightly more",
    );
    writer.note("throughput but 147/227 ms delay; CUBIC and Verus 250-400+ ms delay.");
    Ok(())
}
