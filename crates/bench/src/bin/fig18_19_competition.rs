//! Figures 18 and 19: controlled on-off competition.  A 40-second flow under
//! test shares the cell with a 60 Mbit/s competitor that is on for 4 seconds
//! out of every 8.  Fig. 18 compares the schemes; Fig. 19 shows the PBE-CC
//! and BBR timelines.

use pbe_bench::scenarios::paper_schemes;
use pbe_bench::TextTable;
use pbe_cc_algorithms::api::SchemeName;
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{AppModel, FlowConfig, SchemeChoice, SimConfig, SimResult, Simulation};
use pbe_stats::time::{Duration, Instant};

fn run(scheme: SchemeChoice, seconds: u64) -> SimResult {
    let ue = UeId(1);
    let competitor = UeId(2);
    let duration = Duration::from_secs(seconds);
    let mut flows = vec![FlowConfig::bulk(1, ue, scheme, duration)];
    // Competing 60 Mbit/s flow for 4 s out of every 8 s, on a second device.
    let mut id = 100;
    let mut t = 4u64;
    while t + 4 <= seconds {
        flows.push(
            FlowConfig {
                app: AppModel::ConstantRate(60e6),
                ..FlowConfig::bulk(id, competitor, SchemeChoice::FixedRate, duration)
            }
            .with_lifetime(Instant::from_secs(t), Instant::from_secs(t + 4)),
        );
        id += 1;
        t += 8;
    }
    let cfg = SimConfig {
        cellular: CellularConfig::default(),
        load: CellLoadProfile::idle(),
        seed: 18,
        duration,
        ues: vec![
            (
                UeConfig::new(ue, vec![CellId(0)], 1, -88.0),
                MobilityTrace::stationary(-88.0),
            ),
            (
                UeConfig::new(competitor, vec![CellId(0)], 1, -88.0),
                MobilityTrace::stationary(-88.0),
            ),
        ],
        flows,
    };
    Simulation::new(cfg).run()
}

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    println!("Figure 18 reproduction: on-off 60 Mbit/s competitor, {seconds} s runs\n");
    let mut table = TextTable::new(&[
        "scheme",
        "avg tput (Mbit/s)",
        "avg delay (ms)",
        "p95 delay (ms)",
    ]);
    let mut pbe_result = None;
    let mut bbr_result = None;
    for (scheme, name) in paper_schemes() {
        let result = run(scheme.clone(), seconds);
        let s = &result.flows[0].summary;
        table.row(&[
            name.to_string(),
            format!("{:.1}", s.avg_throughput_mbps),
            format!("{:.0}", s.avg_delay_ms),
            format!("{:.0}", s.p95_delay_ms),
        ]);
        match scheme {
            SchemeChoice::Pbe => pbe_result = Some(result),
            SchemeChoice::Baseline(SchemeName::Bbr) => bbr_result = Some(result),
            _ => {}
        }
    }
    println!("{}", table.render());

    println!("Figure 19: 200 ms-granularity timeline (competitor on during shaded intervals)\n");
    let (pbe, bbr) = (pbe_result.expect("pbe"), bbr_result.expect("bbr"));
    let mut t = TextTable::new(&[
        "t (s)",
        "competitor",
        "PBE tput",
        "PBE delay",
        "BBR tput",
        "BBR delay",
    ]);
    let windows = pbe.flows[0].throughput_timeline_mbps.len();
    for w in (0..windows).step_by(2) {
        let time_s = w as f64 * 0.1;
        let competitor_on =
            ((time_s as u64).saturating_sub(4) / 4).is_multiple_of(2) && time_s >= 4.0;
        let cell = |r: &SimResult| {
            let f = &r.flows[0];
            (
                f.throughput_timeline_mbps[w],
                f.delay_timeline_ms[w].unwrap_or(0.0),
            )
        };
        let (pt, pd) = cell(&pbe);
        let (bt, bd) = cell(&bbr);
        t.row(&[
            format!("{time_s:.1}"),
            if competitor_on {
                "on".into()
            } else {
                "".into()
            },
            format!("{pt:.1}"),
            format!("{pd:.0}"),
            format!("{bt:.1}"),
            format!("{bd:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: PBE-CC ~57 Mbit/s with 61/71 ms avg/p95 delay; BBR slightly more");
    println!("throughput but 147/227 ms delay; CUBIC and Verus 250-400+ ms delay.");
}
