//! Figure 7: distribution of the number of active users per 40 ms window on
//! a busy cell, before and after the control-traffic filter (Ta > 1,
//! Pa > 4), and the distribution of per-user activity length and occupied
//! PRBs.

use pbe_bench::TextTable;
use pbe_cellular::config::{CellId, Rnti};
use pbe_cellular::dci::{DciFormat, DciMessage};
use pbe_cellular::mcs::transport_block_size;
use pbe_cellular::traffic::{BackgroundTraffic, CellLoadProfile};
use pbe_pdcch::fusion::FusedSubframe;
use pbe_pdcch::monitor::{CellStatusMonitor, MonitorConfig};
use pbe_stats::{Cdf, DetRng};
use std::collections::HashMap;

fn main() {
    let windows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let own = Rnti(0x0100);
    let mut bg = BackgroundTraffic::new(CellLoadProfile::busy(), DetRng::new(7));
    let mut monitor = CellStatusMonitor::new(MonitorConfig::new(own, vec![(CellId(0), 100)]));

    let mut raw_users = Vec::new();
    let mut filtered_users = Vec::new();
    let mut activity_len: HashMap<Rnti, u64> = HashMap::new();
    let mut occupied: HashMap<Rnti, (u64, u64)> = HashMap::new();

    for w in 0..windows {
        let mut per_window = std::collections::HashSet::new();
        for sf_in_w in 0..40u64 {
            let sf = w as u64 * 40 + sf_in_w;
            let grants = bg.tick(sf);
            let mut msgs = Vec::new();
            for g in &grants {
                per_window.insert(g.rnti);
                *activity_len.entry(g.rnti).or_insert(0) += 1;
                let e = occupied.entry(g.rnti).or_insert((0, 0));
                e.0 += u64::from(g.prbs);
                e.1 += 1;
                msgs.push(DciMessage {
                    cell: CellId(0),
                    subframe: sf,
                    rnti: g.rnti,
                    format: if g.is_control {
                        DciFormat::Format1A
                    } else {
                        DciFormat::Format1
                    },
                    first_prb: 0,
                    num_prbs: g.prbs,
                    mcs: g.cqi.to_mcs(),
                    spatial_streams: 1,
                    new_data_indicator: true,
                    harq_process: 0,
                    tbs_bits: transport_block_size(g.prbs, g.cqi, 1),
                });
            }
            let mut per_cell = HashMap::new();
            per_cell.insert(CellId(0), msgs);
            monitor.ingest(&FusedSubframe {
                subframe: sf,
                per_cell,
            });
        }
        raw_users.push(per_window.len() as f64);
        let snap = monitor.snapshot(CellId(0)).expect("cell tracked");
        // Subtract ourselves: we transmitted nothing in this trace.
        filtered_users.push((snap.active_users - 1) as f64);
    }

    println!("Figure 7(a): CDF of active users per 40 ms window ({windows} windows)\n");
    let raw = Cdf::from_samples(raw_users);
    let filtered = Cdf::from_samples(filtered_users);
    let mut a = TextTable::new(&["quantile", "all users", "Ta>1 & Pa>4"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        a.row(&[
            format!("{q:.2}"),
            format!("{:.1}", raw.quantile(q).unwrap_or(0.0)),
            format!("{:.1}", filtered.quantile(q).unwrap_or(0.0)),
        ]);
    }
    a.row(&[
        "mean".into(),
        format!("{:.1}", raw.mean()),
        format!("{:.1}", filtered.mean()),
    ]);
    println!("{}", a.render());

    println!("Figure 7(b): per-user activity length and average occupied PRBs\n");
    let lens = Cdf::from_samples(activity_len.values().map(|v| *v as f64));
    let prbs = Cdf::from_samples(occupied.values().map(|(p, n)| *p as f64 / *n as f64));
    let one_subframe =
        activity_len.values().filter(|v| **v == 1).count() as f64 / activity_len.len() as f64;
    let four_prbs = occupied
        .values()
        .filter(|(p, n)| (*p as f64 / *n as f64 - 4.0).abs() < 0.5)
        .count() as f64
        / occupied.len() as f64;
    let mut b = TextTable::new(&["quantile", "active length (ms)", "avg PRBs"]);
    for q in [0.25, 0.5, 0.682, 0.75, 0.9, 0.99] {
        b.row(&[
            format!("{q:.3}"),
            format!("{:.1}", lens.quantile(q).unwrap_or(0.0)),
            format!("{:.1}", prbs.quantile(q).unwrap_or(0.0)),
        ]);
    }
    println!("{}", b.render());
    println!(
        "Users active exactly 1 subframe: {:.1}% (paper: 68.2%)",
        one_subframe * 100.0
    );
    println!(
        "Users averaging exactly 4 PRBs:  {:.1}% (paper: 47.7%)",
        four_prbs * 100.0
    );
    println!(
        "\nPaper reference: ~15.8 users on average (max 28) before filtering, ~1.3 (max 7) after."
    );
}
