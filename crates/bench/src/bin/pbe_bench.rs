//! `pbe-bench` — the harness CLI.
//!
//! ```text
//! pbe-bench perf [--check] [--bless] [--tolerance 0.15] [--iterations 5]
//!                [--baseline-dir DIR] [--out-dir DIR] [--case NAME]...
//! pbe-bench artifact (--all | --figure NAME)... [--list] [--store DIR]
//!                    [--out DIR] [--seconds N] [--workers N] [--serial]
//!                    [--format text|csv|json]
//! ```
//!
//! `perf` runs the deterministic wall-clock cases (`many_ue`, `city_scale`,
//! `metro`, `fanout`),
//! writes `BENCH_<name>.json` into `--out-dir`, and prints the markdown
//! delta table.  With `--check` it compares each case against the committed
//! `BENCH_<name>.json` in `--baseline-dir` and exits 1 if any case regressed
//! past the tolerance (or its baseline is missing/stale).  With `--bless`
//! it rewrites the baselines in `--baseline-dir` instead.
//!
//! `artifact` reproduces the registered evaluation figures in one command.
//! With `--store DIR` every executed grid point is persisted under its
//! content key and a re-run executes only the points whose key is missing —
//! so `pbe-bench artifact --all --store results/ --out figures/` twice runs
//! every simulation exactly once total.

use pbe_bench::artifact::{self, ArtifactArgs};
use pbe_bench::perf::{
    check, default_cases, delta_table, load_baseline, measure, write_record, CheckOutcome,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: pbe-bench perf [--check] [--bless] [--tolerance FRAC] \
[--iterations N] [--baseline-dir DIR] [--out-dir DIR] [--case NAME]...\n       \
pbe-bench artifact (--all | --figure NAME)... [--list] [--store DIR] [--out DIR] \
[--seconds N] [--workers N] [--serial] [--format text|csv|json]";

struct PerfArgs {
    run_check: bool,
    bless: bool,
    tolerance: f64,
    iterations: usize,
    baseline_dir: PathBuf,
    out_dir: PathBuf,
    cases: Vec<String>,
}

fn parse_perf_args(args: &[String]) -> Result<PerfArgs, String> {
    let mut parsed = PerfArgs {
        run_check: false,
        bless: false,
        tolerance: 0.15,
        iterations: 5,
        baseline_dir: PathBuf::from("."),
        out_dir: PathBuf::from("."),
        cases: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--check" => parsed.run_check = true,
            "--bless" => parsed.bless = true,
            "--tolerance" => {
                parsed.tolerance = value_of("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance expects a fraction like 0.15".to_string())?
            }
            "--iterations" => {
                parsed.iterations = value_of("--iterations")?
                    .parse()
                    .map_err(|_| "--iterations expects a positive integer".to_string())?
            }
            "--baseline-dir" => parsed.baseline_dir = PathBuf::from(value_of("--baseline-dir")?),
            "--out-dir" => parsed.out_dir = PathBuf::from(value_of("--out-dir")?),
            "--case" => parsed.cases.push(value_of("--case")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if parsed.iterations == 0 {
        return Err("--iterations must be at least 1".to_string());
    }
    Ok(parsed)
}

fn run_perf(args: PerfArgs) -> ExitCode {
    let cases: Vec<_> = default_cases()
        .into_iter()
        .filter(|c| args.cases.is_empty() || args.cases.iter().any(|n| n == c.name))
        .collect();
    if cases.is_empty() {
        eprintln!("no matching perf cases (available: many_ue, city_scale, metro, fanout)");
        return ExitCode::FAILURE;
    }
    let mut rows = Vec::new();
    for case in &cases {
        eprintln!(
            "perf: running {} ({} iterations + warm-up)...",
            case.name, args.iterations
        );
        let fresh = measure(case, args.iterations);
        let baseline = load_baseline(&args.baseline_dir, case.name);
        let outcome = check(&fresh, baseline.as_ref(), args.tolerance);
        if let Err(err) = write_record(&args.out_dir, &fresh) {
            eprintln!("perf: cannot write BENCH_{}.json: {err}", case.name);
            return ExitCode::FAILURE;
        }
        rows.push((fresh, baseline, outcome));
    }
    if args.bless {
        for (fresh, _, _) in &rows {
            if let Err(err) = write_record(&args.baseline_dir, fresh) {
                eprintln!("perf: cannot bless BENCH_{}.json: {err}", fresh.name);
                return ExitCode::FAILURE;
            }
            eprintln!("perf: blessed BENCH_{}.json", fresh.name);
        }
    }
    println!("{}", delta_table(&rows));
    if args.run_check && !args.bless {
        let mut failed = false;
        for (fresh, _, outcome) in &rows {
            match outcome {
                CheckOutcome::Pass { .. } => {}
                CheckOutcome::Regression { delta } => {
                    eprintln!(
                        "perf: REGRESSION in {}: {:+.1}% vs baseline (tolerance {:.0}%)",
                        fresh.name,
                        delta * 100.0,
                        args.tolerance * 100.0
                    );
                    failed = true;
                }
                CheckOutcome::ConfigMismatch => {
                    eprintln!(
                        "perf: {} config hash changed — re-bless with `pbe-bench perf --bless`",
                        fresh.name
                    );
                    failed = true;
                }
                CheckOutcome::MissingBaseline => {
                    eprintln!(
                        "perf: {} has no committed baseline — bless with `pbe-bench perf --bless`",
                        fresh.name
                    );
                    failed = true;
                }
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!("perf: all cases within tolerance");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("perf") => match parse_perf_args(&args[1..]) {
            Ok(parsed) => run_perf(parsed),
            Err(err) => {
                eprintln!("pbe-bench: {err}\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("artifact") => match ArtifactArgs::parse(&args[1..]) {
            Ok(parsed) => match artifact::run_artifact(&parsed) {
                Ok(_) => ExitCode::SUCCESS,
                Err(err) => {
                    eprintln!("pbe-bench: artifact failed: {err}");
                    ExitCode::FAILURE
                }
            },
            Err(err) => {
                eprintln!("pbe-bench: {err}\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
