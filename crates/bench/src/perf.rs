//! The `pbe-bench perf` regression gate: deterministic wall-clock benchmarks
//! with committed baselines.
//!
//! Criterion answers "how fast is this build on my machine"; the perf gate
//! answers "did this change make the simulator slower than the baseline we
//! committed".  Each [`PerfCase`] runs a fixed scenario (fixed seed, fixed
//! duration) `iterations` times, takes the median wall-clock cost per
//! simulated second, and emits one `BENCH_<name>.json` next to the committed
//! baseline.  `--check` compares fresh numbers against the committed files
//! with a configurable tolerance and exits nonzero on regression — CI runs
//! it on every push (the `perf-gate` job in `.github/workflows/ci.yml`).
//!
//! The cases are chosen to bracket the hot loop: `many_ue` is the
//! 48-UE single-network scenario the Criterion bench of the same name pins
//! (CUBIC flows, no PDCCH monitoring — pure scheduler/HARQ/queue cost),
//! `city_scale` is a 6-cell driving fleet running the full PBE pipeline
//! (blind decoding, fusion, capacity estimation, handovers), and `metro` is
//! the sharded-engine stressor: 1,000 cells and 100k UEs ticked on four
//! shards, with a single serial reference run folded into the record so the
//! speedup (and the worker count it was measured at) lands in
//! `BENCH_metro.json`.  `fanout` routes 960 CUBIC flows through one shared
//! aggregation link, pricing the backhaul subsystem's analytic walk.

use crate::sweep::{CityScale, Fanout};
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice, SimConfig, Simulation};
use pbe_stats::time::Duration;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One deterministic benchmark scenario of the gate.
pub struct PerfCase {
    /// Name; the emitted file is `BENCH_<name>.json`.
    pub name: &'static str,
    /// Builds the (fixed-seed) simulation config.
    pub build: fn() -> SimConfig,
}

/// The measurement record serialised to `BENCH_<name>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Case name.
    pub name: String,
    /// FNV-1a hash of the scenario config; a mismatch with the baseline
    /// means the numbers are not comparable and the baseline must be
    /// re-blessed.
    pub config_hash: String,
    /// Simulated seconds per run.
    pub simulated_seconds: f64,
    /// Median wall-clock milliseconds per simulated second.
    pub ms_per_sim_second: f64,
    /// Every run's ms-per-simulated-second, in run order.
    pub runs_ms_per_sim_second: Vec<f64>,
    /// Peak resident set size of the process after this case, kilobytes
    /// (`VmHWM` from `/proc/self/status`; 0 where unavailable).  The value
    /// is informational — process-wide and monotone across cases — and is
    /// not part of the `--check` comparison.
    pub peak_rss_kb: u64,
    /// Shard-worker count the case ran with (`None` = serial engine).
    #[serde(default)]
    pub workers: Option<usize>,
    /// One serial reference run of the same scenario, ms per simulated
    /// second — recorded for sharded cases only, so the speedup below is
    /// auditable.  Informational; not part of the `--check` comparison.
    #[serde(default)]
    pub serial_ms_per_sim_second: Option<f64>,
    /// `serial_ms_per_sim_second / ms_per_sim_second`: wall-clock speedup of
    /// the sharded engine over serial on this machine's core count.
    #[serde(default)]
    pub speedup_vs_serial: Option<f64>,
}

/// Outcome of comparing one fresh record against its committed baseline.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Within tolerance (or faster).
    Pass {
        /// Fractional change vs the baseline (negative = faster).
        delta: f64,
    },
    /// Slower than `baseline * (1 + tolerance)`.
    Regression {
        /// Fractional change vs the baseline.
        delta: f64,
    },
    /// The scenario config changed; numbers are not comparable.
    ConfigMismatch,
    /// No committed baseline file.
    MissingBaseline,
}

impl CheckOutcome {
    /// Whether the gate passes for this case.
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckOutcome::Pass { .. })
    }
}

/// The committed gate cases.
pub fn default_cases() -> Vec<PerfCase> {
    vec![
        PerfCase {
            name: "many_ue",
            build: many_ue_config,
        },
        PerfCase {
            name: "city_scale",
            build: city_scale_config,
        },
        PerfCase {
            name: "metro",
            build: metro_config,
        },
        PerfCase {
            name: "fanout",
            build: fanout_config,
        },
    ]
}

/// The 48-UE scenario of the `many_ue` Criterion bench: three cells, one
/// bulk CUBIC flow per UE, one simulated second, seed 42.
pub fn many_ue_config() -> SimConfig {
    let ues = 48u32;
    let duration = Duration::from_secs(1);
    let cells = vec![CellId(0), CellId(1), CellId(2)];
    SimConfig {
        cellular: CellularConfig::default(),
        load: CellLoadProfile::none(),
        seed: 42,
        duration,
        ues: (1..=ues)
            .map(|i| {
                (
                    UeConfig::new(UeId(i), cells.clone(), 1, -85.0 - f64::from(i % 7)),
                    MobilityTrace::stationary(-85.0 - f64::from(i % 7)),
                )
            })
            .collect(),
        flows: (1..=ues)
            .map(|i| FlowConfig::bulk(i, UeId(i), SchemeChoice::named("CUBIC"), duration))
            .collect(),
        trajectories: Vec::new(),
        shards: None,
        backhaul: None,
        faults: None,
    }
}

/// A 3×2-cell driving city with 24 PBE flows over two simulated seconds:
/// exercises blind decoding, fusion, carrier aggregation and handovers.
pub fn city_scale_config() -> SimConfig {
    CityScale::driving(3, 2, 24)
        .seconds(2)
        .seed(0xC17)
        .scenario()
        .sim_config()
}

/// The metro stressor: a 40×25 grid (1,000 cells) with 100k driving UEs, 64
/// foreground CUBIC flows (the rest are radio users supplying handover and
/// scheduling pressure) over 200 simulated milliseconds, ticked on a
/// four-shard engine.  Sharded output is byte-identical to serial
/// (`tests/shard_identity.rs` pins that); this case tracks the wall clock.
pub fn metro_config() -> SimConfig {
    CityScale::driving(40, 25, 100_000)
        .millis(200)
        .seed(0x3E7)
        .scheme(SchemeChoice::named("CUBIC"))
        .flows_cap(64)
        .shards(4)
        .scenario()
        .sim_config()
}

/// The shared-backhaul stressor: 960 CUBIC flows from one server fanning
/// out over 24 cells behind a single 480 Mbit/s aggregation link, one
/// simulated second.  Every packet of every flow crosses the analytic
/// backhaul walk (ingress heap, per-link queues, marking), so this case
/// tracks the cost the backhaul subsystem adds on top of the radio tick.
pub fn fanout_config() -> SimConfig {
    Fanout::new(24, 960)
        .seconds(1)
        .seed(0xFA0)
        .agg(480e6, 1_200_000)
        .scenario()
        .sim_config()
}

/// FNV-1a over the debug rendering of the config: cheap, deterministic,
/// and sensitive to every scenario parameter.  The hash itself lives in
/// [`pbe_stats::hash`], shared with the artifact result store's point keys.
pub fn config_hash(cfg: &SimConfig) -> String {
    pbe_stats::fnv1a_64_hex(format!("{cfg:?}").as_bytes())
}

/// Peak resident set size of this process, kilobytes (`VmHWM`), or 0.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Run one case `iterations` times and assemble its record.
pub fn measure(case: &PerfCase, iterations: usize) -> PerfRecord {
    assert!(iterations >= 1);
    let probe = (case.build)();
    let simulated_seconds = probe.duration.as_secs_f64();
    let hash = config_hash(&probe);
    let workers = probe.shards;
    // Warm-up run: page in code and allocator arenas outside the timed runs.
    let _ = Simulation::new(probe).run();
    let mut runs = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let cfg = (case.build)();
        let started = Instant::now();
        let result = Simulation::new(cfg).run();
        let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;
        std::hint::black_box(result);
        runs.push(elapsed_ms / simulated_seconds);
    }
    let mut sorted = runs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    // Sharded cases fold in one serial reference run of the same scenario so
    // the record carries an auditable speedup alongside the worker count.
    let (serial_ms, speedup) = match workers {
        Some(n) if n > 1 => {
            let mut cfg = (case.build)();
            cfg.shards = None;
            let started = Instant::now();
            std::hint::black_box(Simulation::new(cfg).run());
            let ms = started.elapsed().as_secs_f64() * 1000.0 / simulated_seconds;
            (Some(round3(ms)), Some(round3(ms / median)))
        }
        _ => (None, None),
    };
    PerfRecord {
        name: case.name.to_string(),
        config_hash: hash,
        simulated_seconds,
        ms_per_sim_second: round3(median),
        runs_ms_per_sim_second: runs.iter().map(|r| round3(*r)).collect(),
        peak_rss_kb: peak_rss_kb(),
        workers,
        serial_ms_per_sim_second: serial_ms,
        speedup_vs_serial: speedup,
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// Compare a fresh record against its committed baseline.
pub fn check(fresh: &PerfRecord, baseline: Option<&PerfRecord>, tolerance: f64) -> CheckOutcome {
    let Some(base) = baseline else {
        return CheckOutcome::MissingBaseline;
    };
    if base.config_hash != fresh.config_hash {
        return CheckOutcome::ConfigMismatch;
    }
    let delta = fresh.ms_per_sim_second / base.ms_per_sim_second - 1.0;
    if fresh.ms_per_sim_second > base.ms_per_sim_second * (1.0 + tolerance) {
        CheckOutcome::Regression { delta }
    } else {
        CheckOutcome::Pass { delta }
    }
}

/// The markdown delta table posted in the CI job summary.
pub fn delta_table(rows: &[(PerfRecord, Option<PerfRecord>, CheckOutcome)]) -> String {
    let mut out = String::from(
        "| case | baseline ms/sim-s | fresh ms/sim-s | delta | peak RSS | status |\n\
         |------|------------------:|---------------:|------:|---------:|--------|\n",
    );
    for (fresh, baseline, outcome) in rows {
        let base_text = baseline
            .as_ref()
            .map(|b| format!("{:.1}", b.ms_per_sim_second))
            .unwrap_or_else(|| "—".to_string());
        let (delta_text, status) = match outcome {
            CheckOutcome::Pass { delta } => (format!("{:+.1}%", delta * 100.0), "✅ pass"),
            CheckOutcome::Regression { delta } => {
                (format!("{:+.1}%", delta * 100.0), "❌ regression")
            }
            CheckOutcome::ConfigMismatch => ("—".to_string(), "⚠️ config changed (re-bless)"),
            CheckOutcome::MissingBaseline => ("—".to_string(), "⚠️ no baseline (bless)"),
        };
        out.push_str(&format!(
            "| {} | {} | {:.1} | {} | {} MiB | {} |\n",
            fresh.name,
            base_text,
            fresh.ms_per_sim_second,
            delta_text,
            fresh.peak_rss_kb / 1024,
            status,
        ));
    }
    out
}

/// Load a committed baseline record, if present.
pub fn load_baseline(dir: &std::path::Path, name: &str) -> Option<PerfRecord> {
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Write a record as `BENCH_<name>.json` into `dir`.
pub fn write_record(dir: &std::path::Path, record: &PerfRecord) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", record.name));
    let text = serde_json::to_string_pretty(record).expect("record serialises");
    std::fs::write(path, text + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, hash: &str, ms: f64) -> PerfRecord {
        PerfRecord {
            name: name.to_string(),
            config_hash: hash.to_string(),
            simulated_seconds: 1.0,
            ms_per_sim_second: ms,
            runs_ms_per_sim_second: vec![ms],
            peak_rss_kb: 1024,
            workers: None,
            serial_ms_per_sim_second: None,
            speedup_vs_serial: None,
        }
    }

    #[test]
    fn records_without_shard_fields_still_deserialize() {
        // Pre-metro baselines on disk lack the shard fields; they must load.
        let text = r#"{
            "name": "many_ue",
            "config_hash": "h",
            "simulated_seconds": 1.0,
            "ms_per_sim_second": 50.0,
            "runs_ms_per_sim_second": [50.0],
            "peak_rss_kb": 1024
        }"#;
        let rec: PerfRecord = serde_json::from_str(text).unwrap();
        assert_eq!(rec.workers, None);
        assert_eq!(rec.speedup_vs_serial, None);
    }

    #[test]
    fn config_hash_is_deterministic_and_sensitive() {
        let a = config_hash(&many_ue_config());
        let b = config_hash(&many_ue_config());
        assert_eq!(a, b);
        assert_ne!(a, config_hash(&city_scale_config()));
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond() {
        let base = record("many_ue", "h", 50.0);
        assert!(check(&record("many_ue", "h", 55.0), Some(&base), 0.15).is_pass());
        assert!(check(&record("many_ue", "h", 40.0), Some(&base), 0.15).is_pass());
        assert!(matches!(
            check(&record("many_ue", "h", 60.0), Some(&base), 0.15),
            CheckOutcome::Regression { .. }
        ));
        assert!(matches!(
            check(&record("many_ue", "other", 50.0), Some(&base), 0.15),
            CheckOutcome::ConfigMismatch
        ));
        assert!(matches!(
            check(&record("many_ue", "h", 50.0), None, 0.15),
            CheckOutcome::MissingBaseline
        ));
    }

    #[test]
    fn records_roundtrip_through_json() {
        let rec = record("city_scale", "abc123", 33.25);
        let text = serde_json::to_string(&rec).unwrap();
        let back: PerfRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back.name, rec.name);
        assert_eq!(back.config_hash, rec.config_hash);
        assert_eq!(back.ms_per_sim_second, rec.ms_per_sim_second);
    }

    #[test]
    fn delta_table_renders_all_outcomes() {
        let base = record("many_ue", "h", 50.0);
        let rows = vec![
            (
                record("many_ue", "h", 45.0),
                Some(base.clone()),
                CheckOutcome::Pass { delta: -0.1 },
            ),
            (
                record("city_scale", "h", 70.0),
                Some(base),
                CheckOutcome::Regression { delta: 0.4 },
            ),
            (
                record("extra", "h", 1.0),
                None,
                CheckOutcome::MissingBaseline,
            ),
        ];
        let table = delta_table(&rows);
        assert!(table.contains("✅ pass"));
        assert!(table.contains("❌ regression"));
        assert!(table.contains("no baseline"));
    }
}
