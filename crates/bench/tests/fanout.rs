//! End-to-end acceptance of the shared-backhaul fan-out family.
//!
//! The headline claim: with an undersized aggregation link the bottleneck
//! migrates from the radio into the backhaul — PBE-CC's delivered rate must
//! track its *backhaul share*, not the (much larger) radio capacity
//! estimate — and the near-source signaling baseline holds the shared
//! queue's delay far below what radio-driven probing does.

use pbe_bench::sweep::Fanout;
use pbe_netsim::SchemeChoice;

/// Three PBE flows on three cells behind an 18 Mbit/s aggregation link:
/// each cell's radio can carry ~35 Mbit/s, so the radio estimate alone
/// would let every flow send ~6× its actual 6 Mbit/s backhaul share.
fn undersized_fanout() -> Fanout {
    Fanout::new(3, 3)
        .seconds(4)
        .seed(0xFA0)
        .scheme(SchemeChoice::Pbe)
        .agg(18e6, 250_000)
        .mark_threshold(Some(50_000))
}

#[test]
fn undersized_aggregation_migrates_the_bottleneck_into_the_backhaul() {
    let result = undersized_fanout().scenario().run();
    let share_mbps = 18.0 / 3.0;
    for flow in &result.flows {
        let tput = flow.summary.avg_throughput_mbps;
        // Each flow tracks its ~6 Mbit/s backhaul share, not the ~35 Mbit/s
        // the radio alone could carry.
        assert!(
            tput >= 0.5 * share_mbps && tput <= 1.5 * share_mbps,
            "flow {} delivered {tput} Mbit/s; its backhaul share is {share_mbps} Mbit/s",
            flow.id
        );
    }
    // The aggregation link is the active constraint: it marked, and total
    // delivered goodput sits at (not above) its line rate.
    let agg = &result.backhaul_links[0];
    assert!(agg.stats.marked_packets > 0, "shared link never marked");
    let total: f64 = result
        .flows
        .iter()
        .map(|f| f.summary.avg_throughput_mbps)
        .sum();
    assert!(
        total <= 18.0 * 1.1,
        "delivered {total} Mbit/s through an 18 Mbit/s link"
    );
}

#[test]
fn near_source_signaling_keeps_the_shared_queue_far_below_probing() {
    let pbe = undersized_fanout().scenario().run();
    let sfc = undersized_fanout()
        .scheme(SchemeChoice::named("SFC"))
        .scenario()
        .run();
    let pbe_p95 = pbe.backhaul_links[0].p95_queue_delay_ms;
    let sfc_p95 = sfc.backhaul_links[0].p95_queue_delay_ms;
    assert!(
        sfc_p95 < 0.5 * pbe_p95,
        "SFC p95 aggregation queue delay {sfc_p95} ms should be under half \
         of PBE's {pbe_p95} ms"
    );
    // The signal-reacting flows still use the link: no starvation.
    let sfc_total: f64 = sfc
        .flows
        .iter()
        .map(|f| f.summary.avg_throughput_mbps)
        .sum();
    assert!(
        sfc_total > 0.5 * 18.0,
        "SFC delivered only {sfc_total} Mbit/s of an 18 Mbit/s link"
    );
}

#[test]
fn fanout_smoke_every_flow_moves_data_through_the_shared_tree() {
    // The CI smoke case (also run under PBE_FORCE_SHARDS=3): a mid-size
    // fan-out where every flow must make progress and the per-link books
    // must balance across the whole tree.
    let result = Fanout::new(6, 48).millis(500).scenario().run();
    assert_eq!(result.backhaul_links.len(), 7);
    for flow in &result.flows {
        assert!(flow.packets_delivered > 0, "flow {} starved", flow.id);
    }
    // The per-link books balance across the tree: a packet's whole route is
    // walked atomically at ingress, so everything admitted at the
    // aggregation link was either admitted or dropped at exactly one cell
    // link — and forwarding lags admission by whatever still sits queued.
    let agg = &result.backhaul_links[0].stats;
    let cells_downstream: u64 = result.backhaul_links[1..]
        .iter()
        .map(|l| l.stats.admitted_packets + l.stats.dropped_packets)
        .sum();
    assert_eq!(agg.admitted_packets, cells_downstream);
    assert!(agg.forwarded_packets <= agg.admitted_packets);
    // Telemetry windows cover the run (500 ms = 5 windows).
    assert_eq!(result.backhaul_links[0].queue_timeline_bytes.len(), 5);
}

#[test]
fn fanout_is_byte_identical_across_shard_counts_and_seeds() {
    // The backhaul is stepped by the driver loop (shard 0 ownership), so
    // the whole result must serialize identically whatever the shard count.
    for seed in [0xFA0u64, 7] {
        let base = Fanout::new(4, 12).millis(800).seed(seed);
        let serial = serde_json::to_string(&base.scenario().run()).unwrap();
        for shards in [1usize, 2, 3] {
            let sharded =
                serde_json::to_string(&base.clone().shards(shards).scenario().run()).unwrap();
            assert_eq!(
                serial, sharded,
                "{shards} shards diverged from serial (seed {seed})"
            );
        }
    }
}
