//! Failure-contained execution, end to end: chaos schemes (a scheme that
//! panics mid-simulation, a scheme that burns wall-clock past the deadline)
//! run through the same store-backed executor as every real sweep, and the
//! sweep completes with structured failures instead of crashing.  The
//! quarantine file must survive a store reopen (a new process), and
//! `artifact verify --repair` must re-execute exactly the corrupted keys.

use pbe_bench::artifact::{
    run_artifact, run_cached_with, ArtifactArgs, ExecPolicy, FailureKind, ResultStore,
};
use pbe_bench::sweep::{OutputFormat, ScenarioSpec, SweepGrid};
use pbe_netsim::SchemeChoice;
use pbe_stats::time::Duration;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbe_chaos_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two healthy points, one panicking point, one hanging point.
fn chaos_specs() -> Vec<ScenarioSpec> {
    SweepGrid::over(vec![ScenarioSpec::single_flow(
        "chaos-e2e",
        SchemeChoice::Pbe,
        Duration::from_millis(200),
    )
    .seed(37)])
    .schemes([
        SchemeChoice::Pbe,
        SchemeChoice::named("CUBIC"),
        SchemeChoice::named("CHAOS_PANIC"),
        SchemeChoice::named("CHAOS_HANG"),
    ])
    .expand()
}

fn tight_policy() -> ExecPolicy {
    ExecPolicy {
        deadline: Some(std::time::Duration::from_millis(300)),
        retries: 0,
        backoff: std::time::Duration::from_millis(1),
    }
}

/// A poisoned sweep completes, quarantines the poison, and — after the store
/// is reopened as a fresh process would — skips the poison without
/// re-executing anything.
#[test]
fn quarantine_survives_a_reopen_and_nothing_reexecutes() {
    let root = temp_root("quarantine");
    let store_dir = root.join("store");

    {
        let mut store = ResultStore::open(&store_dir).unwrap();
        let run = run_cached_with(
            "fig_chaos",
            chaos_specs(),
            Some(&mut store),
            1,
            &tight_policy(),
        )
        .unwrap();
        assert_eq!(run.executed, 2, "both healthy points executed");
        assert_eq!(
            run.failures.len(),
            2,
            "both chaos points failed structurally"
        );
        assert!(run.failures.iter().any(|f| f.kind == FailureKind::Panic));
        assert!(run.failures.iter().any(|f| f.kind == FailureKind::Deadline));
    }

    // New process: reopen the store from disk.
    let mut store = ResultStore::open(&store_dir).unwrap();
    assert_eq!(store.quarantined().len(), 2, "quarantine persisted");
    let resumed = run_cached_with(
        "fig_chaos",
        chaos_specs(),
        Some(&mut store),
        1,
        &tight_policy(),
    )
    .unwrap();
    assert_eq!(
        (resumed.executed, resumed.cached),
        (0, 2),
        "resume serves the healthy points and re-executes nothing"
    );
    assert_eq!(resumed.failures.len(), 2, "poison reported, not re-run");

    fs::remove_dir_all(&root).unwrap();
}

const FIGURE: &str = "fig20_multi_connection";
const POINTS: usize = 8; // one scenario × eight schemes

fn figure_args(store: &Path, out: &Path) -> ArtifactArgs {
    ArtifactArgs {
        all: false,
        figures: vec![FIGURE.to_string()],
        list: false,
        store: Some(store.to_path_buf()),
        out: Some(out.to_path_buf()),
        seconds: Some(1),
        workers: 1,
        format: OutputFormat::Csv,
        deadline: None,
        retries: 0,
        verify: false,
        repair: false,
    }
}

fn verify_args(store: &Path, repair: bool) -> ArtifactArgs {
    ArtifactArgs {
        all: false,
        figures: Vec::new(),
        list: false,
        store: Some(store.to_path_buf()),
        out: None,
        seconds: Some(1),
        workers: 1,
        format: OutputFormat::Csv,
        deadline: None,
        retries: 0,
        verify: true,
        repair,
    }
}

/// `artifact verify` fails on a corrupted blob; `--repair` re-executes
/// exactly that key and restores a clean store.
#[test]
fn verify_detects_corruption_and_repair_reexecutes_exactly_that_point() {
    let root = temp_root("verify");
    let store_dir = root.join("store");

    let full = run_artifact(&figure_args(&store_dir, &root.join("full"))).unwrap();
    assert_eq!((full.executed, full.failed), (POINTS, 0));

    // Truncate one blob to simulate a torn write / disk corruption.
    let points = store_dir.join("points");
    let victim = fs::read_dir(&points)
        .unwrap()
        .map(|e| e.unwrap().path())
        .min()
        .expect("store has blobs");
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    // Health check: verify without --repair fails.
    assert!(run_artifact(&verify_args(&store_dir, false)).is_err());

    // Repair: exactly the corrupted key re-executes.
    let repaired = run_artifact(&verify_args(&store_dir, true)).unwrap();
    assert_eq!(
        (repaired.executed, repaired.failed),
        (1, 0),
        "repair re-executed exactly the corrupted point"
    );

    // The store is clean again and a figure run is all cache hits.
    assert!(run_artifact(&verify_args(&store_dir, false)).is_ok());
    let warm = run_artifact(&figure_args(&store_dir, &root.join("warm"))).unwrap();
    assert_eq!((warm.executed, warm.cached), (0, POINTS));

    fs::remove_dir_all(&root).unwrap();
}
