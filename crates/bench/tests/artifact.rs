//! Artifact-pipeline regression tests: resume after an interrupted run and
//! point-level cache invalidation, asserted through the public
//! `run_artifact` entry point (the same code path as `pbe-bench artifact`).

use pbe_bench::artifact::{run_artifact, ArtifactArgs};
use pbe_bench::sweep::OutputFormat;
use std::fs;
use std::path::{Path, PathBuf};

const FIGURE: &str = "fig20_multi_connection";
const POINTS: usize = 8; // one scenario × eight schemes

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbe_artifact_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn args(store: &Path, out: &Path) -> ArtifactArgs {
    ArtifactArgs {
        all: false,
        figures: vec![FIGURE.to_string()],
        list: false,
        store: Some(store.to_path_buf()),
        out: Some(out.to_path_buf()),
        seconds: Some(1),
        workers: 1,
        format: OutputFormat::Csv,
        deadline: None,
        retries: 0,
        verify: false,
        repair: false,
    }
}

/// Read every report file of an output directory as (name, bytes), sorted.
fn dir_contents(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "{} produced report files", dir.display());
    files
}

/// Interrupt recovery: truncating the manifest's last K lines (what a kill
/// mid-run leaves behind) makes the next invocation execute exactly those K
/// points — and the final CSVs are byte-identical to the uninterrupted
/// run's.  Deleting a single blob afterwards re-executes exactly that point.
#[test]
fn resume_executes_only_the_missing_points_and_reproduces_the_csvs() {
    let root = temp_root("resume");
    let store = root.join("store");

    // Full run: every point executes exactly once.
    let full = run_artifact(&args(&store, &root.join("full"))).unwrap();
    assert_eq!((full.executed, full.cached), (POINTS, 0));
    let baseline = dir_contents(&root.join("full"));

    // Simulate an interrupted run by dropping the manifest's last K lines.
    const K: usize = 3;
    let manifest_path = store.join("manifest.jsonl");
    let manifest = fs::read_to_string(&manifest_path).unwrap();
    let lines: Vec<&str> = manifest.lines().collect();
    assert_eq!(lines.len(), POINTS);
    let kept = lines[..POINTS - K].join("\n");
    fs::write(&manifest_path, format!("{kept}\n")).unwrap();

    let resumed = run_artifact(&args(&store, &root.join("resumed"))).unwrap();
    assert_eq!(
        (resumed.executed, resumed.cached),
        (K, POINTS - K),
        "a resume executes exactly the truncated points"
    );
    assert_eq!(
        dir_contents(&root.join("resumed")),
        baseline,
        "resumed CSVs are byte-identical to the uninterrupted run"
    );

    // Deleting one stored blob invalidates exactly that point.
    let manifest = fs::read_to_string(&manifest_path).unwrap();
    let first_key = manifest
        .lines()
        .next()
        .and_then(|line| {
            let v = serde_json::parse(line).ok()?;
            Some(v.get("key")?.as_str()?.to_string())
        })
        .expect("manifest line has a key");
    fs::remove_file(store.join("points").join(format!("{first_key}.json"))).unwrap();

    let repaired = run_artifact(&args(&store, &root.join("repaired"))).unwrap();
    assert_eq!(
        (repaired.executed, repaired.cached),
        (1, POINTS - 1),
        "deleting one blob re-executes exactly that point"
    );
    assert_eq!(dir_contents(&root.join("repaired")), baseline);

    fs::remove_dir_all(&root).unwrap();
}
