//! Serial-vs-sharded byte identity at the scenario level: a scaled-down
//! metro (the same `CityScale` generator and flow-cap shape as the `metro`
//! perf case) must serialise to the same `SimResult` JSON on the serial
//! engine and on every shard count.  This is the acceptance check for the
//! sharded tick engine at the bench layer; `pbe-cellular` pins the same
//! property per subframe, and `pbe-netsim` per simulation.

use pbe_bench::sweep::CityScale;
use pbe_cellular::config::CellId;
use pbe_netsim::{CellOutage, DecodeLossBurst, FaultSchedule, SchemeChoice, Simulation};

/// A metro in miniature: multi-column grid so shards get contiguous runs of
/// cells, driving speed so UEs cross shard boundaries, more UEs than flows.
fn mini_metro(shards: Option<usize>) -> CityScale {
    let mut city = CityScale::driving(6, 4, 160)
        .seconds(8)
        .seed(0x3E7)
        .scheme(SchemeChoice::named("CUBIC"))
        .flows_cap(12);
    city.shards = shards;
    city
}

fn result_json(shards: Option<usize>) -> String {
    let cfg = mini_metro(shards).scenario().sim_config();
    let result = Simulation::new(cfg).run();
    serde_json::to_string(&result).expect("result serialises")
}

#[test]
fn metro_is_byte_identical_across_shard_counts() {
    let serial = result_json(None);
    for shards in [1usize, 2, 3, 4] {
        let sharded = result_json(Some(shards));
        assert_eq!(
            serial, sharded,
            "shards={shards} diverged from the serial engine"
        );
    }
}

fn metro_faults() -> FaultSchedule {
    FaultSchedule {
        cell_outages: vec![CellOutage {
            cell: CellId(0),
            start_ms: 2_000,
            end_ms: 5_000,
        }],
        decode_loss: vec![DecodeLossBurst {
            flow: 1,
            start_ms: 6_000,
            end_ms: 6_300,
        }],
        ..FaultSchedule::none()
    }
}

fn faulted_result_json(shards: Option<usize>) -> String {
    let mut cfg = mini_metro(shards).scenario().sim_config();
    cfg.faults = Some(metro_faults());
    let result = Simulation::new(cfg).run();
    serde_json::to_string(&result).expect("result serialises")
}

#[test]
fn faulted_metro_is_byte_identical_across_shard_counts() {
    // The acceptance check for the fault-injection layer: injecting a
    // primary-cell outage and a decode-loss burst into the metro scenario
    // must leave serial-vs-sharded byte identity intact — faults are part
    // of the deterministic schedule, not a source of divergence.
    let serial = faulted_result_json(None);
    for shards in [1usize, 2, 4] {
        let sharded = faulted_result_json(Some(shards));
        assert_eq!(
            serial, sharded,
            "faulted metro: shards={shards} diverged from the serial engine"
        );
    }
    // And the faults actually fired: recovery records exist in the output.
    let cfg = {
        let mut cfg = mini_metro(Some(2)).scenario().sim_config();
        cfg.faults = Some(metro_faults());
        cfg
    };
    let result = Simulation::new(cfg).run();
    assert_eq!(
        result.fault_recovery.len(),
        2,
        "both injected faults produced recovery records"
    );
}

#[test]
fn mini_metro_actually_exercises_the_interesting_paths() {
    // Guard against the identity test passing vacuously: the scenario must
    // produce handovers (cross-shard UE migration) and deliver flow traffic.
    let cfg = mini_metro(Some(4)).scenario().sim_config();
    let result = Simulation::new(cfg).run();
    assert!(
        !result.handovers.is_empty(),
        "mini metro produced no handovers"
    );
    assert!(result.flows.iter().any(|f| f.packets_delivered > 100));
}
