//! Sweep-harness regression tests: parallel determinism (including across
//! handovers), exact grid expansion, and store-served cache equivalence.

use pbe_bench::artifact::{run_cached, ResultStore};
use pbe_bench::scenarios::ScenarioLibrary;
use pbe_bench::sweep::{CityScale, ScenarioSpec, SweepGrid, SweepRunner};
use pbe_cellular::channel::MobilityTrace;
use pbe_cellular::config::{CellId, UeConfig, UeId};
use pbe_cellular::traffic::CellLoadProfile;
use pbe_netsim::{FlowConfig, SchemeChoice};
use pbe_stats::rng::derive_seed;
use pbe_stats::time::Duration;
use proptest::prelude::*;

/// A small fig13/14-style stationary grid: three library locations crossed
/// with two schemes and two seed replicas.
fn stationary_grid() -> SweepGrid {
    let duration = Duration::from_millis(400);
    let scenarios = ScenarioLibrary::subset(3)
        .iter()
        .map(|loc| ScenarioSpec::from_location(format!("location {}", loc.index), loc, duration))
        .collect();
    SweepGrid::over(scenarios)
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("CUBIC")])
        .seed_replicas(2)
}

/// The headline determinism guarantee: a sweep over the stationary grid with
/// four workers produces byte-identical per-scenario results to the serial
/// run — worker count only changes the wall clock, never the science.
#[test]
fn four_worker_sweep_is_byte_identical_to_serial() {
    let grid = stationary_grid();
    let specs = grid.expand();
    assert_eq!(specs.len(), 3 * 2 * 2);

    let serial = SweepRunner::serial().run(specs.clone());
    let parallel = SweepRunner::new().workers(4).run(specs);
    assert_eq!(parallel.workers, 4);
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());

    // Whole-report comparison (specs + results, timing excluded)…
    assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    // …and per-scenario, so a failure names the scenario that diverged.
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(
            serde_json::to_string(&s.result).unwrap(),
            serde_json::to_string(&p.result).unwrap(),
            "scenario {} ({}) diverged between serial and parallel",
            s.spec.label,
            s.spec.scheme
        );
    }
}

/// A two-cell crossing that reliably triggers a handover: cell 0 fades
/// −85 → −110 dBm over 4.5 s while cell 1 rises symmetrically.
fn handover_scenario(seconds: u64) -> ScenarioSpec {
    let ue = UeId(1);
    let duration = Duration::from_secs(seconds);
    ScenarioSpec::new("handover crossing", SchemeChoice::Pbe, duration)
        .load(CellLoadProfile::idle())
        .seed(71)
        .ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1)], 1, -85.0),
            MobilityTrace::stationary(-85.0),
        )
        .trajectory(
            ue,
            CellId(0),
            MobilityTrace::from_secs(&[(0.0, -85.0), (4.5, -110.0)]),
        )
        .trajectory(
            ue,
            CellId(1),
            MobilityTrace::from_secs(&[(0.0, -110.0), (4.5, -85.0)]),
        )
        .flow(FlowConfig::bulk(1, ue, SchemeChoice::Pbe, duration))
}

/// Handover determinism: the most state-heavy event in the simulator —
/// queue draining, HARQ forwarding, reorder flushes, monitor re-targeting —
/// must not let the worker schedule leak into the results.  A handover
/// scenario (plus a small city-scale fleet) sweeps byte-identically on one
/// and four workers, and actually hands over.
#[test]
fn handover_sweep_is_byte_identical_between_serial_and_four_workers() {
    let mut specs: Vec<ScenarioSpec> = SweepGrid::over(vec![handover_scenario(6)])
        .schemes([SchemeChoice::Pbe, SchemeChoice::named("BBR")])
        .seed_replicas(2)
        .expand();
    specs.push(CityScale::driving(2, 1, 3).seconds(6).seed(9).scenario());

    let serial = SweepRunner::serial().run(specs.clone());
    let parallel = SweepRunner::new().workers(4).run(specs);
    assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
    for (s, p) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(
            serde_json::to_string(&s.result).unwrap(),
            serde_json::to_string(&p.result).unwrap(),
            "scenario {} ({}) diverged between serial and parallel",
            s.spec.label,
            s.spec.scheme
        );
    }
    // The scenario is not vacuous: the crossing hands the UE over.
    let crossing = serial
        .outcome("handover crossing", "PBE")
        .expect("PBE crossing ran");
    assert!(
        !crossing.result.handovers.is_empty(),
        "the crossing scenario must hand over"
    );
    let ho = crossing.result.handovers[0];
    assert_eq!(ho.from, CellId(0));
    assert_eq!(ho.to, CellId(1));
}

/// Cache equivalence on a sampled sub-grid: results served from a warm
/// artifact store are byte-identical to a fresh serial run *and* to a fresh
/// 4-worker run.  The sub-grid is a deterministic sample of the stationary
/// grid (every point whose seed-derived coin lands heads, floor 4 points),
/// so the test exercises an irregular point set rather than a full cross
/// product.
#[test]
fn store_served_results_are_byte_identical_to_fresh_runs() {
    let all = stationary_grid().expand();
    let mut specs: Vec<ScenarioSpec> = all
        .iter()
        .filter(|s| derive_seed(s.seed, 97).is_multiple_of(2))
        .cloned()
        .collect();
    for spec in all {
        if specs.len() >= 4 {
            break;
        }
        if !specs.iter().any(|s| s.content_key() == spec.content_key()) {
            specs.push(spec);
        }
    }
    assert!(specs.len() >= 4, "sampled sub-grid is non-trivial");

    let fresh_serial = SweepRunner::serial().run(specs.clone());
    let fresh_parallel = SweepRunner::new().workers(4).run(specs.clone());

    let dir = std::env::temp_dir().join(format!("pbe_cache_equiv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ResultStore::open(&dir).unwrap();
    let warmup = run_cached("cache_equiv", specs.clone(), Some(&mut store), 2).unwrap();
    assert_eq!(warmup.executed, specs.len());
    let served = run_cached("cache_equiv", specs, Some(&mut store), 2).unwrap();
    assert_eq!(served.executed, 0, "a warm store serves every point");

    assert_eq!(
        served.report.deterministic_json(),
        fresh_serial.deterministic_json(),
        "store-served results must be byte-identical to a fresh serial run"
    );
    assert_eq!(
        served.report.deterministic_json(),
        fresh_parallel.deterministic_json(),
        "store-served results must be byte-identical to a fresh 4-worker run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Replica 0 of a location keeps the location's own seed, so sweep results
/// are comparable with standalone single-scenario runs.
#[test]
fn replica_zero_reproduces_the_standalone_run() {
    let duration = Duration::from_millis(400);
    let library = ScenarioLibrary::paper_40_locations();
    let loc = &library.locations()[5];
    let spec = ScenarioSpec::from_location("loc5", loc, duration);

    let standalone = spec.run();
    let report = SweepRunner::new()
        .workers(2)
        .run(SweepGrid::over(vec![spec]).seed_replicas(2).expand());
    assert_eq!(report.outcomes[0].spec.seed, loc.seed());
    assert_eq!(
        serde_json::to_string(&standalone).unwrap(),
        serde_json::to_string(&report.outcomes[0].result).unwrap()
    );
    assert_ne!(report.outcomes[1].spec.seed, loc.seed());
}

proptest! {
    /// Grid expansion covers the scheme × seed cross product exactly once
    /// per scenario, whatever the axis sizes.
    #[test]
    fn expansion_covers_the_cross_product_exactly_once(
        scenario_count in 1usize..4,
        scheme_count in 0usize..5,
        seed_count in 0usize..5,
        base_seed in 0u64..1_000_000,
    ) {
        let duration = Duration::from_millis(100);
        let scheme_pool = ["PBE", "BBR", "CUBIC", "Copa", "Verus"];
        let scenarios: Vec<ScenarioSpec> = (0..scenario_count)
            .map(|i| {
                ScenarioSpec::single_flow(format!("s{i}"), SchemeChoice::Pbe, duration)
                    .seed(base_seed + i as u64)
            })
            .collect();
        let grid = SweepGrid::over(scenarios)
            .schemes(scheme_pool[..scheme_count].iter().map(|k| SchemeChoice::named(*k)))
            .seeds(0..seed_count as u64);

        let points = grid.expand();
        prop_assert_eq!(points.len(), grid.len());
        prop_assert_eq!(
            points.len(),
            scenario_count * scheme_count.max(1) * seed_count.max(1)
        );

        // Build the expected multiset of (label, scheme, seed) triples and
        // check the expansion is exactly that set, exactly once each.
        let mut expected: Vec<(String, String, u64)> = Vec::new();
        for i in 0..scenario_count {
            let base = base_seed + i as u64;
            let schemes: Vec<String> = if scheme_count == 0 {
                vec!["Pbe".into()]
            } else {
                scheme_pool[..scheme_count].iter().map(|s| s.to_string()).collect()
            };
            let seeds: Vec<u64> = if seed_count == 0 {
                vec![base]
            } else {
                (0..seed_count as u64).map(|r| derive_seed(base, r)).collect()
            };
            for scheme in &schemes {
                for &seed in &seeds {
                    expected.push((format!("s{i}"), scheme.clone(), seed));
                }
            }
        }
        let mut actual: Vec<(String, String, u64)> = points
            .iter()
            .map(|p| {
                let scheme = match &p.scheme {
                    SchemeChoice::Named(name) => name.clone(),
                    other => format!("{other:?}"),
                };
                (p.label.clone(), scheme, p.seed)
            })
            .collect();
        expected.sort();
        actual.sort();
        prop_assert_eq!(actual, expected);
    }
}
