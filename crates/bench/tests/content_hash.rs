//! Content-key stability goldens.
//!
//! The artifact result store addresses every executed grid point by a
//! content key — 128-bit FNV-1a over the spec's canonical JSON.  These
//! goldens pin the exact keys of representative specs, so any accidental
//! change to the canonicalization rules, the hash function or the spec's
//! serialized shape shows up as a test failure (and a deliberate change is
//! made consciously, knowing it orphans every existing store).

use pbe_bench::sweep::{content_key_of_value, ScenarioSpec};
use pbe_netsim::SchemeChoice;
use pbe_stats::time::Duration;
use serde::Value;

/// The paper's default single-flow scenario — the simplest representative
/// spec.
fn single_flow_spec() -> ScenarioSpec {
    ScenarioSpec::single_flow(
        "golden single flow",
        SchemeChoice::Pbe,
        Duration::from_secs(2),
    )
    .seed(7)
}

/// A spec exercising the serde-defaulted optional fields (`shards` set, a
/// named baseline scheme).
fn sharded_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::single_flow(
        "golden sharded",
        SchemeChoice::named("CUBIC"),
        Duration::from_secs(3),
    )
    .seed(21);
    spec.shards = Some(2);
    spec
}

/// Recursively reverse the entry order of every JSON object — a worst-case
/// "differently spelled, same meaning" rewrite of the serialized spec.
fn reverse_objects(v: &Value) -> Value {
    match v {
        Value::Array(items) => Value::Array(items.iter().map(reverse_objects).collect()),
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .rev()
                .map(|(k, val)| (k.clone(), reverse_objects(val)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// The pinned golden keys.  If this test fails after an intentional change
/// to `ScenarioSpec`'s semantic fields or to the canonicalization, update
/// the constants — and expect every existing result store to re-execute.
#[test]
fn content_keys_match_the_pinned_goldens() {
    const SINGLE_FLOW_KEY: &str = "78d45ce4e275fbcebe1076b16da89ad0";
    const SHARDED_KEY: &str = "19c78f0c3115869435f0d3cdd6baded8";
    assert_eq!(single_flow_spec().content_key(), SINGLE_FLOW_KEY);
    assert_eq!(sharded_spec().content_key(), SHARDED_KEY);
}

/// Field order is spelling, not meaning: reversing every object's entry
/// order in the serialized JSON leaves the key unchanged.
#[test]
fn content_key_is_invariant_under_field_reordering() {
    for spec in [single_flow_spec(), sharded_spec()] {
        let value = serde_json::to_value(&spec).unwrap();
        let reversed = reverse_objects(&value);
        assert_ne!(
            serde_json::to_string(&value).unwrap(),
            serde_json::to_string(&reversed).unwrap(),
            "the rewrite actually changed the spelling"
        );
        assert_eq!(content_key_of_value(&reversed), spec.content_key());
    }
}

/// Explicitly spelling out serde defaults (`"shards":null`, `"backhaul":null`,
/// `"trajectories":[]`) or omitting those fields entirely hashes the same —
/// the forward-compatibility rule that keeps old stores valid when a new
/// defaulted field is added.
#[test]
fn content_key_is_invariant_under_explicit_serde_defaults() {
    let spec = single_flow_spec();
    let text = serde_json::to_string(&spec).unwrap();
    // The struct serializer writes the defaults explicitly…
    assert!(text.contains("\"shards\":null"));
    assert!(text.contains("\"backhaul\":null"));
    assert!(text.contains("\"trajectories\":[]"));
    let explicit = serde_json::parse(&text).unwrap();

    // …so strip them to get the "omitted" spelling of the same spec.
    let Value::Object(entries) = &explicit else {
        panic!("spec serializes as an object")
    };
    let stripped = Value::Object(
        entries
            .iter()
            .filter(|(k, _)| k != "shards" && k != "backhaul" && k != "trajectories")
            .cloned()
            .collect(),
    );
    assert_eq!(content_key_of_value(&explicit), spec.content_key());
    assert_eq!(content_key_of_value(&stripped), spec.content_key());

    // A *non-default* value for the same field is semantic and must move
    // the key.
    let mut sharded = spec.clone();
    sharded.shards = Some(4);
    assert_ne!(sharded.content_key(), spec.content_key());
}

/// Every semantic field change moves the key.
#[test]
fn semantic_changes_move_the_key() {
    let base = single_flow_spec();
    let base_key = base.content_key();

    let mut relabeled = base.clone();
    relabeled.label = "golden single flow v2".into();
    assert_ne!(relabeled.content_key(), base_key, "label is semantic");

    let mut reseeded = base.clone();
    reseeded.seed = 8;
    assert_ne!(reseeded.content_key(), base_key, "seed is semantic");

    let mut rescheme = base.clone();
    rescheme.scheme = SchemeChoice::named("BBR");
    assert_ne!(rescheme.content_key(), base_key, "scheme is semantic");

    let mut longer = base.clone();
    longer.duration = Duration::from_secs(4);
    assert_ne!(longer.content_key(), base_key, "duration is semantic");

    // And the keys of the two golden specs differ from each other.
    assert_ne!(sharded_spec().content_key(), base_key);
}
