//! Per-cell batching of one subframe's DCI stream.
//!
//! The network emits the subframe's DCI messages cell by cell, so the
//! combined stream is a sequence of contiguous per-cell runs.  A receiver
//! decoding several aggregated carriers used to hand the *whole* stream to
//! each per-cell blind decoder, which then filtered it down again — an
//! O(cells × messages) scan per UE per subframe.  [`DciBatcher`] computes
//! the per-cell runs once, and [`DciBatch::cell_messages`] hands each
//! decoder exactly its own slice.
//!
//! Batching is purely a view: no message is copied, and a decoder given its
//! cell's slice performs exactly the same random draws as one given the full
//! stream (the decoder draws only for messages matching its cell).

use pbe_cellular::config::CellId;
use pbe_cellular::dci::DciMessage;

/// One subframe's DCI messages, grouped by cell.
///
/// Borrowed view produced by [`DciBatcher::batch`]; valid for the current
/// subframe only.
#[derive(Debug, Clone, Copy)]
pub struct DciBatch<'a> {
    subframe: u64,
    messages: &'a [DciMessage],
    /// `(cell, start, end)` runs over `messages`, in stream order.
    runs: &'a [(CellId, usize, usize)],
}

impl<'a> DciBatch<'a> {
    /// The subframe these messages were transmitted in.
    pub fn subframe(&self) -> u64 {
        self.subframe
    }

    /// Every message of the subframe, in transmission order.
    pub fn all(&self) -> &'a [DciMessage] {
        self.messages
    }

    /// The messages transmitted by one cell this subframe.
    ///
    /// Returns the cell's contiguous run when there is exactly one (the
    /// normal case: the network appends messages cell by cell).  If the
    /// stream unexpectedly interleaves a cell's messages, the full stream is
    /// returned instead — callers filter by cell anyway, so the result is
    /// identical, just slower.  An empty slice means the cell was silent.
    pub fn cell_messages(&self, cell: CellId) -> &'a [DciMessage] {
        let mut found: Option<(usize, usize)> = None;
        for &(c, start, end) in self.runs {
            if c == cell {
                if found.is_some() {
                    return self.messages;
                }
                found = Some((start, end));
            }
        }
        match found {
            Some((start, end)) => &self.messages[start..end],
            None => &[],
        }
    }
}

/// Reusable scratch that groups a subframe's DCI stream into per-cell runs.
///
/// One batcher per driver loop; [`DciBatcher::batch`] reuses its internal
/// run vector, so batching allocates nothing once it has reached its working
/// size.
#[derive(Debug, Default)]
pub struct DciBatcher {
    runs: Vec<(CellId, usize, usize)>,
}

impl DciBatcher {
    /// New batcher.
    pub fn new() -> Self {
        DciBatcher::default()
    }

    /// Group `messages` (one subframe's combined DCI stream) by cell.
    pub fn batch<'a>(&'a mut self, subframe: u64, messages: &'a [DciMessage]) -> DciBatch<'a> {
        self.runs.clear();
        for (i, m) in messages.iter().enumerate() {
            match self.runs.last_mut() {
                Some((cell, _, end)) if *cell == m.cell && *end == i => *end = i + 1,
                _ => self.runs.push((m.cell, i, i + 1)),
            }
        }
        DciBatch {
            subframe,
            messages,
            runs: &self.runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_cellular::config::Rnti;
    use pbe_cellular::dci::DciFormat;
    use pbe_cellular::mcs::McsIndex;

    fn dci(cell: CellId, rnti: u16) -> DciMessage {
        DciMessage {
            cell,
            subframe: 5,
            rnti: Rnti(rnti),
            format: DciFormat::Format1,
            first_prb: 0,
            num_prbs: 10,
            mcs: McsIndex(20),
            spatial_streams: 1,
            new_data_indicator: true,
            harq_process: 0,
            tbs_bits: 12_000,
        }
    }

    #[test]
    fn contiguous_runs_are_sliced_per_cell() {
        let msgs = vec![
            dci(CellId(0), 1),
            dci(CellId(0), 2),
            dci(CellId(1), 3),
            dci(CellId(2), 4),
        ];
        let mut batcher = DciBatcher::new();
        let batch = batcher.batch(5, &msgs);
        assert_eq!(batch.subframe(), 5);
        assert_eq!(batch.all().len(), 4);
        assert_eq!(batch.cell_messages(CellId(0)).len(), 2);
        assert_eq!(batch.cell_messages(CellId(1)).len(), 1);
        assert_eq!(batch.cell_messages(CellId(1))[0].rnti, Rnti(3));
        assert_eq!(batch.cell_messages(CellId(2)).len(), 1);
        assert!(batch.cell_messages(CellId(3)).is_empty());
    }

    #[test]
    fn interleaved_cells_fall_back_to_the_full_stream() {
        let msgs = vec![dci(CellId(0), 1), dci(CellId(1), 2), dci(CellId(0), 3)];
        let mut batcher = DciBatcher::new();
        let batch = batcher.batch(0, &msgs);
        // Cell 0 appears in two runs: the batch hands back everything and
        // lets the (filtering) decoder sort it out.
        assert_eq!(batch.cell_messages(CellId(0)).len(), 3);
        assert_eq!(batch.cell_messages(CellId(1)).len(), 1);
    }

    #[test]
    fn empty_stream_yields_empty_batches() {
        let mut batcher = DciBatcher::new();
        let batch = batcher.batch(9, &[]);
        assert!(batch.all().is_empty());
        assert!(batch.cell_messages(CellId(0)).is_empty());
    }
}
