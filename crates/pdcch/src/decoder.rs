//! Blind decoding of the physical downlink control channel of one cell.
//!
//! A conventional phone only checks the search-space candidates scrambled
//! with its own RNTI.  The PBE-CC monitor instead decodes *all* control
//! messages: for every candidate position and every DCI format it attempts a
//! CRC check and recovers the RNTI from the descrambled CRC (paper §5 — "each
//! decoder decodes the control channel by searching every possible message
//! position ... and trying all possible formats at each location until
//! finding the correct message").
//!
//! The radio front end is simulated: the cell hands us the DCI messages it
//! transmitted ([`pbe_cellular::dci::DciMessage`]); we re-encode them into
//! their on-air form, optionally corrupt a fraction of candidates (RF
//! impairments), and run the same search an over-the-air decoder would.

use pbe_cellular::config::CellId;
use pbe_cellular::dci::{DciFormat, DciMessage, EncodedDci};
use pbe_stats::DetRng;
use serde::{Deserialize, Serialize};

/// Configuration of one per-cell decoder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// Probability that a transmitted control message is missed entirely
    /// (deep fade over the control region, decoder scheduling hiccup, …).
    pub miss_probability: f64,
    /// Probability that an idle candidate position contains noise that the
    /// decoder must examine and reject (adds search work and, very rarely,
    /// false positives).
    pub noise_candidate_probability: f64,
    /// Total PRBs of the watched cell, used to sanity-check decoded grants
    /// (a candidate whose allocation does not fit the cell is discarded, the
    /// same plausibility filtering OWL/FALCON-style decoders apply).
    pub total_prbs: u16,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            miss_probability: 0.002,
            noise_candidate_probability: 0.05,
            total_prbs: 100,
        }
    }
}

/// Cumulative decoder statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DecoderStats {
    /// Subframes processed.
    pub subframes: u64,
    /// Control messages correctly decoded.
    pub decoded: u64,
    /// Control messages missed (transmitted but not decoded).
    pub missed: u64,
    /// Candidate positions examined (search effort).
    pub candidates_examined: u64,
    /// Noise candidates rejected by the CRC/RNTI check.
    pub noise_rejected: u64,
    /// Noise candidates that slipped through as false positives.
    pub false_positives: u64,
}

impl DecoderStats {
    /// Fraction of transmitted messages successfully decoded.
    pub fn decode_rate(&self) -> f64 {
        let total = self.decoded + self.missed;
        if total == 0 {
            1.0
        } else {
            self.decoded as f64 / total as f64
        }
    }

    /// Average candidates examined per subframe.
    pub fn candidates_per_subframe(&self) -> f64 {
        if self.subframes == 0 {
            0.0
        } else {
            self.candidates_examined as f64 / self.subframes as f64
        }
    }
}

/// Blind decoder for the control channel of one cell.
#[derive(Debug)]
pub struct ControlChannelDecoder {
    cell: CellId,
    config: DecoderConfig,
    rng: DetRng,
    stats: DecoderStats,
    /// Subframe before which the decoder is still re-acquiring the cell
    /// (cell search, sync-signal lock, CRS timing) and decodes nothing.
    resync_until: Option<u64>,
}

impl ControlChannelDecoder {
    /// Create a decoder for one cell.
    pub fn new(cell: CellId, config: DecoderConfig, rng: DetRng) -> Self {
        ControlChannelDecoder {
            cell,
            config,
            rng,
            stats: DecoderStats::default(),
            resync_until: None,
        }
    }

    /// Declare the decoder blind until `subframe`: after a handover the
    /// radio must re-tune and re-synchronise onto the target cell before a
    /// single candidate can be searched, so every message transmitted during
    /// the re-acquisition gap is missed (and accounted as missed).
    pub fn set_resync_until(&mut self, subframe: u64) {
        self.resync_until = Some(subframe);
    }

    /// True if the decoder is still inside its re-acquisition gap at
    /// `subframe`.
    pub fn is_resynchronising(&self, subframe: u64) -> bool {
        self.resync_until.is_some_and(|until| subframe < until)
    }

    /// The cell this decoder watches.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Decode the control region of one subframe.
    ///
    /// `transmitted` is the set of DCI messages the cell actually put on the
    /// air this subframe (only those for this decoder's cell are considered).
    /// Returns the messages the monitor gets to see.
    pub fn decode_subframe(
        &mut self,
        subframe: u64,
        transmitted: &[DciMessage],
    ) -> Vec<DciMessage> {
        self.stats.subframes += 1;
        let mut decoded = Vec::new();
        if self.is_resynchronising(subframe) {
            // Everything transmitted while re-tuning is lost to the monitor.
            self.stats.missed += transmitted
                .iter()
                .filter(|m| m.cell == self.cell && m.subframe == subframe)
                .count() as u64;
            return decoded;
        }

        // Real messages: re-encode into their on-air form, walk the search
        // space, and blind-decode each candidate.
        let mut candidate_index = 0u8;
        for msg in transmitted
            .iter()
            .filter(|m| m.cell == self.cell && m.subframe == subframe)
        {
            // Aggregation level depends on how robust the grant must be; the
            // scheduler uses larger levels for users in worse conditions.
            let aggregation_level = match msg.mcs.0 {
                0..=6 => 8,
                7..=16 => 4,
                _ => 2,
            };
            let encoded = msg.encode(aggregation_level, candidate_index);
            candidate_index = candidate_index.wrapping_add(1);
            self.stats.candidates_examined += u64::from(Self::formats_tried(&encoded));
            if self.rng.bernoulli(self.config.miss_probability) {
                self.stats.missed += 1;
                continue;
            }
            match encoded.blind_decode().filter(|m| self.is_plausible(m)) {
                Some(m) => {
                    self.stats.decoded += 1;
                    decoded.push(m);
                }
                None => {
                    self.stats.missed += 1;
                }
            }
        }

        // Noise candidates: empty positions the decoder still has to examine.
        let noise_positions = self
            .rng
            .poisson(self.config.noise_candidate_probability * 8.0);
        for i in 0..noise_positions {
            self.stats.candidates_examined += 1;
            // Build garbage bits and check them the same way; the CRC/RNTI
            // range check rejects essentially all of them.
            let garbage = EncodedDci {
                cell: self.cell,
                subframe,
                aggregation_level: 1,
                candidate_index: i as u8,
                payload: self.rng.next_u64() as u128 | ((self.rng.next_u64() as u128) << 64),
                payload_bits: 55,
                scrambled_crc: (self.rng.next_u64() & 0xFFFF) as u16,
            };
            match garbage.blind_decode().filter(|m| self.is_plausible(m)) {
                Some(_) => self.stats.false_positives += 1,
                None => self.stats.noise_rejected += 1,
            }
        }

        decoded
    }

    /// Plausibility filter applied to every decoded candidate: a downlink
    /// grant must fit inside the cell's PRB grid, use a valid MCS and stream
    /// count, and declare a transport block size consistent with its
    /// allocation.  Corrupted candidates that pass the CRC by chance almost
    /// never satisfy all of these.
    fn is_plausible(&self, m: &DciMessage) -> bool {
        if !m.format.is_downlink_assignment() {
            return true;
        }
        if m.num_prbs == 0 || m.num_prbs > self.config.total_prbs {
            return false;
        }
        if m.first_prb + m.num_prbs > self.config.total_prbs {
            return false;
        }
        if m.mcs.0 > 28 || m.spatial_streams == 0 || m.spatial_streams > 2 {
            return false;
        }
        // Bits per PRB beyond ~3.4 kbit (64QAM rate-0.93, two streams with
        // margin) or below a MAC header are physically impossible.
        let bits_per_prb = f64::from(m.tbs_bits) / f64::from(m.num_prbs);
        (8.0..=3_400.0).contains(&bits_per_prb)
    }

    /// Number of DCI formats a decoder tries per candidate (all formats are
    /// attempted until one passes the CRC, paper §5 footnote 2).
    fn formats_tried(encoded: &EncodedDci) -> u8 {
        // On average half the formats are tried before the right one; the
        // exact count does not matter, only that the effort is accounted.
        (DciFormat::ALL.len() as u8 / 2).max(1) + (encoded.aggregation_level > 4) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_cellular::config::Rnti;
    use pbe_cellular::mcs::McsIndex;

    fn msg(cell: u16, subframe: u64, rnti: u16, prbs: u16) -> DciMessage {
        DciMessage {
            cell: CellId(cell),
            subframe,
            rnti: Rnti(rnti),
            format: DciFormat::Format1,
            first_prb: 0,
            num_prbs: prbs,
            mcs: McsIndex(15),
            spatial_streams: 2,
            new_data_indicator: true,
            harq_process: 0,
            tbs_bits: 20_000,
        }
    }

    #[test]
    fn perfect_decoder_sees_every_message() {
        let cfg = DecoderConfig {
            miss_probability: 0.0,
            noise_candidate_probability: 0.0,
            ..DecoderConfig::default()
        };
        let mut dec = ControlChannelDecoder::new(CellId(0), cfg, DetRng::new(1));
        let transmitted = vec![msg(0, 5, 0x100, 10), msg(0, 5, 0x200, 20)];
        let decoded = dec.decode_subframe(5, &transmitted);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded, transmitted);
        assert_eq!(dec.stats().decode_rate(), 1.0);
    }

    #[test]
    fn messages_for_other_cells_or_subframes_are_ignored() {
        let cfg = DecoderConfig {
            miss_probability: 0.0,
            noise_candidate_probability: 0.0,
            ..DecoderConfig::default()
        };
        let mut dec = ControlChannelDecoder::new(CellId(0), cfg, DetRng::new(1));
        let transmitted = vec![msg(1, 5, 0x100, 10), msg(0, 6, 0x200, 20)];
        let decoded = dec.decode_subframe(5, &transmitted);
        assert!(decoded.is_empty());
    }

    #[test]
    fn lossy_decoder_misses_roughly_the_configured_fraction() {
        let cfg = DecoderConfig {
            miss_probability: 0.1,
            noise_candidate_probability: 0.0,
            ..DecoderConfig::default()
        };
        let mut dec = ControlChannelDecoder::new(CellId(0), cfg, DetRng::new(7));
        let mut seen = 0usize;
        let total = 5_000usize;
        for sf in 0..total as u64 {
            let transmitted = vec![msg(0, sf, 0x100, 10)];
            seen += dec.decode_subframe(sf, &transmitted).len();
        }
        let rate = seen as f64 / total as f64;
        assert!((0.85..0.95).contains(&rate), "decode rate = {rate}");
        assert!((dec.stats().decode_rate() - rate).abs() < 1e-9);
    }

    #[test]
    fn noise_candidates_are_rejected_not_decoded() {
        let cfg = DecoderConfig {
            miss_probability: 0.0,
            noise_candidate_probability: 1.0,
            ..DecoderConfig::default()
        };
        let mut dec = ControlChannelDecoder::new(CellId(0), cfg, DetRng::new(9));
        let mut total_decoded = 0usize;
        for sf in 0..2_000u64 {
            total_decoded += dec.decode_subframe(sf, &[]).len();
        }
        let stats = dec.stats();
        assert_eq!(total_decoded, 0, "noise never produces output messages");
        assert!(stats.noise_rejected > 1_000);
        // False positives are possible in principle (16-bit CRC) but must be
        // a tiny fraction of the candidates examined.
        assert!(
            (stats.false_positives as f64) < 0.02 * stats.noise_rejected as f64,
            "false positives {} vs rejected {}",
            stats.false_positives,
            stats.noise_rejected
        );
    }

    #[test]
    fn resynchronising_decoder_misses_everything_then_recovers() {
        let cfg = DecoderConfig {
            miss_probability: 0.0,
            noise_candidate_probability: 0.0,
            ..DecoderConfig::default()
        };
        let mut dec = ControlChannelDecoder::new(CellId(1), cfg, DetRng::new(5));
        dec.set_resync_until(40);
        for sf in 0..40u64 {
            assert!(dec.is_resynchronising(sf));
            let mut m = msg(1, sf, 0x100, 10);
            m.cell = CellId(1);
            assert!(dec.decode_subframe(sf, &[m]).is_empty());
        }
        assert!(!dec.is_resynchronising(40));
        let mut m = msg(1, 40, 0x100, 10);
        m.cell = CellId(1);
        assert_eq!(dec.decode_subframe(40, &[m]).len(), 1);
        assert_eq!(dec.stats().missed, 40);
        assert_eq!(dec.stats().decoded, 1);
    }

    #[test]
    fn search_effort_is_accounted() {
        let cfg = DecoderConfig::default();
        let mut dec = ControlChannelDecoder::new(CellId(0), cfg, DetRng::new(3));
        for sf in 0..100u64 {
            let transmitted = vec![msg(0, sf, 0x100, 10), msg(0, sf, 0x200, 20)];
            dec.decode_subframe(sf, &transmitted);
        }
        assert!(dec.stats().candidates_per_subframe() >= 2.0);
        assert_eq!(dec.cell(), CellId(0));
    }
}
