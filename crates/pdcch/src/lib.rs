//! Endpoint-side control-channel monitoring for PBE-CC.
//!
//! In the paper, the mobile endpoint decodes *every* control message the base
//! station transmits (not just its own grants) by blind-decoding the PDCCH of
//! each aggregated cell on a USRP software-defined radio, fusing the streams
//! of the per-cell decoders, and book-keeping each cell's bandwidth occupancy
//! (paper §5, Fig. 10a).  This crate is that measurement module:
//!
//! * [`batch`] — groups one subframe's combined DCI stream into per-cell
//!   slices so each blind decoder scans only the messages of its own cell.
//! * [`decoder`] — per-cell blind decoder.  It searches the candidate
//!   positions/aggregation levels of each subframe's control region, tries
//!   every DCI format, and recovers the target RNTI from the CRC, with a
//!   configurable miss probability standing in for RF impairments.
//! * [`fusion`] — aligns the decoded messages of multiple cells on their
//!   subframe index, exactly like the paper's Message Fusion module.
//! * [`monitor`] — turns the fused message stream into the quantities the
//!   PBE-CC congestion-control algorithm needs (paper Eqns. 1–4): the PRBs
//!   allocated to this user, to other users, and left idle in each cell, the
//!   number of *data-active* competing users after the `Ta > 1, Pa > 4`
//!   control-traffic filter, and the user's own physical data rate.

#![warn(missing_docs)]

pub mod batch;
pub mod decoder;
pub mod fusion;
pub mod monitor;

pub use batch::{DciBatch, DciBatcher};
pub use decoder::{ControlChannelDecoder, DecoderConfig, DecoderStats};
pub use fusion::{FusedSubframe, MessageFusion};
pub use monitor::{CellSnapshot, CellStatusMonitor, MonitorConfig};
