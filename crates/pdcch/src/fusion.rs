//! Multi-cell message fusion.
//!
//! With carrier aggregation the monitor runs one decoder per aggregated cell
//! (the paper runs one USRP + decoder thread per cell).  The fusion module
//! aligns their outputs on the subframe index and hands the congestion
//! control module one consolidated view per subframe (paper §5: "Our Message
//! Fusion module aligns the decoded control messages from multiple decoders
//! according to their subframe indices").

use pbe_cellular::config::CellId;
use pbe_cellular::dci::DciMessage;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// All control messages decoded for one subframe, grouped by cell.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FusedSubframe {
    /// Subframe index.
    pub subframe: u64,
    /// Decoded messages per cell (cells with no messages are absent).
    pub per_cell: HashMap<CellId, Vec<DciMessage>>,
}

impl FusedSubframe {
    /// All messages of the subframe regardless of cell.
    pub fn all_messages(&self) -> impl Iterator<Item = &DciMessage> {
        self.per_cell.values().flatten()
    }

    /// Messages of one cell.
    pub fn cell_messages(&self, cell: CellId) -> &[DciMessage] {
        self.per_cell.get(&cell).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Aligns per-cell decoder outputs on the subframe index.
#[derive(Debug)]
pub struct MessageFusion {
    watched_cells: Vec<CellId>,
    pending: BTreeMap<u64, FusedSubframe>,
    reported: HashMap<u64, Vec<CellId>>,
    /// Subframes already emitted (fusion never re-emits an older subframe).
    emitted_up_to: Option<u64>,
}

impl MessageFusion {
    /// Create a fusion stage for the given set of cells.
    pub fn new(watched_cells: Vec<CellId>) -> Self {
        assert!(!watched_cells.is_empty(), "fusion needs at least one cell");
        MessageFusion {
            watched_cells,
            pending: BTreeMap::new(),
            reported: HashMap::new(),
            emitted_up_to: None,
        }
    }

    /// Cells this fusion stage waits for.
    pub fn watched_cells(&self) -> &[CellId] {
        &self.watched_cells
    }

    /// Change the watched cell set (e.g. when carrier aggregation activates a
    /// new secondary cell and a new decoder is started).
    pub fn set_watched_cells(&mut self, cells: Vec<CellId>) {
        assert!(!cells.is_empty());
        self.watched_cells = cells;
    }

    /// Ingest the messages one cell's decoder produced for one subframe.
    /// Returns every subframe that is now complete (all watched cells have
    /// reported), in order.
    pub fn ingest(
        &mut self,
        cell: CellId,
        subframe: u64,
        messages: Vec<DciMessage>,
    ) -> Vec<FusedSubframe> {
        if let Some(done) = self.emitted_up_to {
            if subframe <= done {
                return Vec::new();
            }
        }
        let entry = self
            .pending
            .entry(subframe)
            .or_insert_with(|| FusedSubframe {
                subframe,
                per_cell: HashMap::new(),
            });
        if !messages.is_empty() {
            entry.per_cell.entry(cell).or_default().extend(messages);
        }
        let reporters = self.reported.entry(subframe).or_default();
        if !reporters.contains(&cell) {
            reporters.push(cell);
        }
        self.drain_complete()
    }

    fn drain_complete(&mut self) -> Vec<FusedSubframe> {
        let mut out = Vec::new();
        while let Some((&subframe, _)) = self.pending.iter().next() {
            let complete = self
                .reported
                .get(&subframe)
                .map(|r| self.watched_cells.iter().all(|c| r.contains(c)))
                .unwrap_or(false);
            if !complete {
                break;
            }
            let fused = self.pending.remove(&subframe).expect("present");
            self.reported.remove(&subframe);
            self.emitted_up_to = Some(subframe);
            out.push(fused);
        }
        out
    }

    /// Subframes buffered waiting for a slow decoder.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_cellular::config::Rnti;
    use pbe_cellular::dci::DciFormat;
    use pbe_cellular::mcs::McsIndex;

    fn msg(cell: u16, subframe: u64, rnti: u16) -> DciMessage {
        DciMessage {
            cell: CellId(cell),
            subframe,
            rnti: Rnti(rnti),
            format: DciFormat::Format1,
            first_prb: 0,
            num_prbs: 8,
            mcs: McsIndex(10),
            spatial_streams: 1,
            new_data_indicator: true,
            harq_process: 0,
            tbs_bits: 8_000,
        }
    }

    #[test]
    fn single_cell_fusion_is_pass_through() {
        let mut fusion = MessageFusion::new(vec![CellId(0)]);
        let fused = fusion.ingest(CellId(0), 3, vec![msg(0, 3, 0x100)]);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].subframe, 3);
        assert_eq!(fused[0].cell_messages(CellId(0)).len(), 1);
        assert_eq!(fused[0].all_messages().count(), 1);
    }

    #[test]
    fn waits_for_all_watched_cells() {
        let mut fusion = MessageFusion::new(vec![CellId(0), CellId(1)]);
        assert!(fusion
            .ingest(CellId(0), 7, vec![msg(0, 7, 0x100)])
            .is_empty());
        assert_eq!(fusion.pending_count(), 1);
        let fused = fusion.ingest(CellId(1), 7, vec![msg(1, 7, 0x200)]);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].per_cell.len(), 2);
        assert_eq!(fusion.pending_count(), 0);
    }

    #[test]
    fn empty_subframes_still_complete() {
        let mut fusion = MessageFusion::new(vec![CellId(0), CellId(1)]);
        assert!(fusion.ingest(CellId(0), 7, vec![]).is_empty());
        let fused = fusion.ingest(CellId(1), 7, vec![]);
        assert_eq!(fused.len(), 1);
        assert!(fused[0].cell_messages(CellId(0)).is_empty());
    }

    #[test]
    fn subframes_are_released_in_order() {
        let mut fusion = MessageFusion::new(vec![CellId(0), CellId(1)]);
        // Cell 1 runs ahead: reports subframes 1 and 2 before cell 0 reports 1.
        assert!(fusion
            .ingest(CellId(1), 1, vec![msg(1, 1, 0x200)])
            .is_empty());
        assert!(fusion
            .ingest(CellId(1), 2, vec![msg(1, 2, 0x200)])
            .is_empty());
        let fused = fusion.ingest(CellId(0), 1, vec![msg(0, 1, 0x100)]);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].subframe, 1);
        let fused = fusion.ingest(CellId(0), 2, vec![]);
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].subframe, 2);
    }

    #[test]
    fn stale_reports_are_ignored() {
        let mut fusion = MessageFusion::new(vec![CellId(0)]);
        assert_eq!(fusion.ingest(CellId(0), 5, vec![]).len(), 1);
        // A duplicate / late report for an already-emitted subframe is dropped.
        assert!(fusion
            .ingest(CellId(0), 5, vec![msg(0, 5, 0x100)])
            .is_empty());
        assert!(fusion
            .ingest(CellId(0), 4, vec![msg(0, 4, 0x100)])
            .is_empty());
    }

    #[test]
    fn watched_cell_set_can_grow() {
        let mut fusion = MessageFusion::new(vec![CellId(0)]);
        assert_eq!(fusion.watched_cells(), &[CellId(0)]);
        fusion.set_watched_cells(vec![CellId(0), CellId(1)]);
        assert!(fusion.ingest(CellId(0), 9, vec![]).is_empty());
        assert_eq!(fusion.ingest(CellId(1), 9, vec![]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_watch_list_panics() {
        MessageFusion::new(vec![]);
    }
}
