//! Cell-status monitor: from decoded control messages to capacity inputs.
//!
//! For every aggregated cell the monitor tracks, over a sliding window of the
//! most recent `RTprop` subframes (paper §4.2.1 — "we average the above
//! parameters over the most recent 40 subframes if the connection RTT is
//! 40 ms"):
//!
//! * `Pa`   — PRBs allocated to this user,
//! * `Pidle` — PRBs allocated to nobody (Eqn. 4 counts *every* identified
//!   user, including control-traffic users),
//! * `N`    — the number of *data-active* users competing for bandwidth,
//!   after filtering users whose activity time `Ta ≤ 1` subframe or average
//!   allocation `Pa ≤ 4` PRBs (the control-traffic filter of §4.2.1),
//! * `Rw`   — this user's wireless physical data rate in bits per PRB,
//!   measured from its own grants (TBS / allocated PRBs), and
//! * the fraction of this user's grants that were HARQ retransmissions (the
//!   new-data-indicator bit), used by the cross-layer rate translation.

use crate::fusion::FusedSubframe;
use pbe_cellular::config::{CellId, Rnti};
use pbe_cellular::dci::DciMessage;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Static configuration of the monitor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// The user's own RNTI (the same across aggregated cells in this model).
    pub own_rnti: Rnti,
    /// The cells to track and their total PRB count (`Pcell`).
    pub cells: Vec<(CellId, u16)>,
    /// Sliding-window length in subframes; the congestion-control module
    /// updates this to the measured round-trip propagation time.
    pub window_subframes: usize,
    /// Activity-time threshold of the control-traffic filter (`Ta >` this).
    pub ta_threshold: u64,
    /// Average-PRB threshold of the control-traffic filter (`Pa >` this).
    pub pa_threshold: f64,
    /// Physical rate assumed before the first own grant is observed
    /// (bits per PRB).
    pub default_bits_per_prb: f64,
}

impl MonitorConfig {
    /// Reasonable defaults: 40 ms window, the paper's Ta/Pa thresholds, and a
    /// mid-range physical rate before the first measurement.
    pub fn new(own_rnti: Rnti, cells: Vec<(CellId, u16)>) -> Self {
        MonitorConfig {
            own_rnti,
            cells,
            window_subframes: 40,
            ta_threshold: 1,
            pa_threshold: 4.0,
            default_bits_per_prb: 800.0,
        }
    }
}

/// Windowed view of one cell, the direct input to the paper's Eqns. 1–4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSnapshot {
    /// The cell.
    pub cell: CellId,
    /// Most recent subframe folded into the window.
    pub subframe: u64,
    /// Total PRBs of the cell (`Pcell`).
    pub total_prbs: u16,
    /// Average PRBs per subframe allocated to this user over the window
    /// (`Pa`).
    pub own_prbs: f64,
    /// Average PRBs per subframe left idle over the window (`Pidle`).
    pub idle_prbs: f64,
    /// Average PRBs per subframe allocated to other users.
    pub other_prbs: f64,
    /// Number of data-active users sharing the cell, after the Ta/Pa filter,
    /// including this user (`N`, always at least 1).
    pub active_users: usize,
    /// Number of distinct users observed in the window before filtering.
    pub detected_users: usize,
    /// This user's physical data rate in bits per PRB (`Rw`).
    pub own_bits_per_prb: f64,
    /// Fraction of this user's transport blocks that were retransmissions.
    pub own_retransmission_fraction: f64,
}

#[derive(Debug, Clone, Default)]
struct SubframeRecord {
    subframe: u64,
    own_prbs: u16,
    other_prbs: u16,
    idle_prbs: u16,
    /// (rnti, prbs) of every user observed this subframe.
    users: Vec<(Rnti, u16)>,
    /// Own grants: (prbs, tbs_bits, is_retransmission).
    own_grants: Vec<(u16, u32, bool)>,
}

#[derive(Debug, Default)]
struct CellTracker {
    total_prbs: u16,
    window: VecDeque<SubframeRecord>,
    last_bits_per_prb: Option<f64>,
}

/// The monitor itself: one tracker per watched cell.
#[derive(Debug)]
pub struct CellStatusMonitor {
    config: MonitorConfig,
    trackers: HashMap<CellId, CellTracker>,
}

impl CellStatusMonitor {
    /// Create a monitor from its configuration.
    pub fn new(config: MonitorConfig) -> Self {
        let trackers = config
            .cells
            .iter()
            .map(|(cell, prbs)| {
                (
                    *cell,
                    CellTracker {
                        total_prbs: *prbs,
                        ..CellTracker::default()
                    },
                )
            })
            .collect();
        CellStatusMonitor { config, trackers }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Adjust the sliding window to the current round-trip propagation time
    /// (in subframes / milliseconds).
    pub fn set_window_subframes(&mut self, window: usize) {
        self.config.window_subframes = window.max(1);
    }

    /// Start tracking an additional cell (e.g. after a carrier activation).
    pub fn add_cell(&mut self, cell: CellId, total_prbs: u16) {
        if self.trackers.contains_key(&cell) {
            return;
        }
        self.config.cells.push((cell, total_prbs));
        self.trackers.insert(
            cell,
            CellTracker {
                total_prbs,
                ..CellTracker::default()
            },
        );
    }

    /// Stop tracking a cell (after a carrier deactivation).  The primary cell
    /// (the first configured cell) is never removed.
    pub fn remove_cell(&mut self, cell: CellId) {
        if self.config.cells.first().map(|(c, _)| *c) == Some(cell) {
            return;
        }
        self.config.cells.retain(|(c, _)| *c != cell);
        self.trackers.remove(&cell);
    }

    /// Cells currently tracked.
    pub fn cells(&self) -> Vec<CellId> {
        self.config.cells.iter().map(|(c, _)| *c).collect()
    }

    /// Number of subframes currently folded into a cell's window (0 if the
    /// cell is untracked or nothing has been ingested since it was added).
    pub fn window_len(&self, cell: CellId) -> usize {
        self.trackers
            .get(&cell)
            .map(|t| t.window.len())
            .unwrap_or(0)
    }

    /// Re-target the monitor after a handover: drop every tracked cell and
    /// start a fresh tracker on the new serving cell.
    ///
    /// The old serving cell's window measures a control channel the UE no
    /// longer listens to, so carrying it over would poison Eqns. 1–4; the
    /// new cell starts with an *empty* window, and callers hold their last
    /// estimate until it fills (see `PbeClient::on_handover` in `pbe-core`)
    /// rather than reading the empty-window snapshot, which reports a fully
    /// idle cell.
    pub fn handover_to(&mut self, cell: CellId, total_prbs: u16) {
        self.config.cells.clear();
        self.config.cells.push((cell, total_prbs));
        self.trackers.clear();
        self.trackers.insert(
            cell,
            CellTracker {
                total_prbs,
                ..CellTracker::default()
            },
        );
    }

    /// Fold one fused subframe of decoded control messages into the window.
    pub fn ingest(&mut self, fused: &FusedSubframe) {
        for (cell, tracker) in self.trackers.iter_mut() {
            let messages = fused.cell_messages(*cell);
            let record =
                Self::build_record(&self.config, tracker.total_prbs, fused.subframe, messages);
            if let Some(rate) = Self::record_bits_per_prb(&record) {
                tracker.last_bits_per_prb = Some(rate);
            }
            tracker.window.push_back(record);
            while tracker.window.len() > self.config.window_subframes {
                tracker.window.pop_front();
            }
        }
    }

    fn build_record(
        config: &MonitorConfig,
        total_prbs: u16,
        subframe: u64,
        messages: &[DciMessage],
    ) -> SubframeRecord {
        let mut record = SubframeRecord {
            subframe,
            ..SubframeRecord::default()
        };
        let mut allocated: u32 = 0;
        for m in messages {
            if !m.format.is_downlink_assignment() {
                // Uplink grants do not consume downlink PRBs but still mark
                // the user as present.
                record.users.push((m.rnti, 0));
                continue;
            }
            allocated += u32::from(m.num_prbs);
            record.users.push((m.rnti, m.num_prbs));
            if m.rnti == config.own_rnti {
                record.own_prbs += m.num_prbs;
                record
                    .own_grants
                    .push((m.num_prbs, m.tbs_bits, !m.new_data_indicator));
            } else {
                record.other_prbs += m.num_prbs;
            }
        }
        record.idle_prbs = total_prbs.saturating_sub(allocated.min(u32::from(total_prbs)) as u16);
        record
    }

    fn record_bits_per_prb(record: &SubframeRecord) -> Option<f64> {
        let (prbs, bits) = record
            .own_grants
            .iter()
            .filter(|(_, _, retx)| !retx)
            .fold((0u32, 0u64), |(p, b), (prbs, tbs, _)| {
                (p + u32::from(*prbs), b + u64::from(*tbs))
            });
        if prbs == 0 {
            None
        } else {
            Some(bits as f64 / f64::from(prbs))
        }
    }

    /// Current windowed snapshot of one cell.
    pub fn snapshot(&self, cell: CellId) -> Option<CellSnapshot> {
        let tracker = self.trackers.get(&cell)?;
        let n = tracker.window.len();
        if n == 0 {
            return Some(CellSnapshot {
                cell,
                subframe: 0,
                total_prbs: tracker.total_prbs,
                own_prbs: 0.0,
                idle_prbs: f64::from(tracker.total_prbs),
                other_prbs: 0.0,
                active_users: 1,
                detected_users: 0,
                own_bits_per_prb: self.config.default_bits_per_prb,
                own_retransmission_fraction: 0.0,
            });
        }
        let mut own = 0.0;
        let mut idle = 0.0;
        let mut other = 0.0;
        let mut per_user: HashMap<Rnti, (u64, u64)> = HashMap::new(); // (active subframes, total prbs)
        let mut own_grants = 0u64;
        let mut own_retx = 0u64;
        for rec in &tracker.window {
            own += f64::from(rec.own_prbs);
            idle += f64::from(rec.idle_prbs);
            other += f64::from(rec.other_prbs);
            for (rnti, prbs) in &rec.users {
                let e = per_user.entry(*rnti).or_insert((0, 0));
                e.0 += 1;
                e.1 += u64::from(*prbs);
            }
            for (_, _, retx) in &rec.own_grants {
                own_grants += 1;
                own_retx += u64::from(*retx);
            }
        }
        let nf = n as f64;
        let detected_users = per_user.len();
        // Ta / Pa filter: a competitor counts only if it was active for more
        // than `ta_threshold` subframes AND averaged more than `pa_threshold`
        // PRBs while active.  The user itself always counts.
        let mut active_users = 0usize;
        for (rnti, (ta, total_prbs)) in &per_user {
            if *rnti == self.config.own_rnti {
                continue;
            }
            let pa = if *ta == 0 {
                0.0
            } else {
                *total_prbs as f64 / *ta as f64
            };
            if *ta > self.config.ta_threshold && pa > self.config.pa_threshold {
                active_users += 1;
            }
        }
        active_users += 1; // self
        let own_bits_per_prb = tracker
            .last_bits_per_prb
            .unwrap_or(self.config.default_bits_per_prb);
        Some(CellSnapshot {
            cell,
            subframe: tracker.window.back().map(|r| r.subframe).unwrap_or(0),
            total_prbs: tracker.total_prbs,
            own_prbs: own / nf,
            idle_prbs: idle / nf,
            other_prbs: other / nf,
            active_users,
            detected_users,
            own_bits_per_prb,
            own_retransmission_fraction: if own_grants == 0 {
                0.0
            } else {
                own_retx as f64 / own_grants as f64
            },
        })
    }

    /// Snapshots of every tracked cell.
    pub fn snapshots(&self) -> Vec<CellSnapshot> {
        self.config
            .cells
            .iter()
            .filter_map(|(c, _)| self.snapshot(*c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbe_cellular::dci::DciFormat;
    use pbe_cellular::mcs::McsIndex;

    const OWN: Rnti = Rnti(0x0100);
    const OTHER: Rnti = Rnti(0x0200);
    const CTRL: Rnti = Rnti(0x0300);

    fn msg(rnti: Rnti, prbs: u16, subframe: u64, ndi: bool) -> DciMessage {
        DciMessage {
            cell: CellId(0),
            subframe,
            rnti,
            format: DciFormat::Format1,
            first_prb: 0,
            num_prbs: prbs,
            mcs: McsIndex(15),
            spatial_streams: 2,
            new_data_indicator: ndi,
            harq_process: 0,
            tbs_bits: u32::from(prbs) * 1_000,
        }
    }

    fn fused(subframe: u64, messages: Vec<DciMessage>) -> FusedSubframe {
        let mut per_cell = HashMap::new();
        per_cell.insert(CellId(0), messages);
        FusedSubframe { subframe, per_cell }
    }

    fn monitor() -> CellStatusMonitor {
        CellStatusMonitor::new(MonitorConfig::new(OWN, vec![(CellId(0), 100)]))
    }

    #[test]
    fn empty_monitor_reports_idle_cell() {
        let m = monitor();
        let s = m.snapshot(CellId(0)).unwrap();
        assert_eq!(s.idle_prbs, 100.0);
        assert_eq!(s.own_prbs, 0.0);
        assert_eq!(s.active_users, 1);
        assert_eq!(s.own_bits_per_prb, 800.0);
        assert!(m.snapshot(CellId(9)).is_none());
    }

    #[test]
    fn own_and_idle_prbs_are_window_averages() {
        let mut m = monitor();
        // 10 subframes: own user gets 60 PRBs, another data user 20, idle 20.
        for sf in 0..10u64 {
            m.ingest(&fused(
                sf,
                vec![msg(OWN, 60, sf, true), msg(OTHER, 20, sf, true)],
            ));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        assert!((s.own_prbs - 60.0).abs() < 1e-9);
        assert!((s.other_prbs - 20.0).abs() < 1e-9);
        assert!((s.idle_prbs - 20.0).abs() < 1e-9);
        assert_eq!(s.active_users, 2);
        assert_eq!(s.detected_users, 2);
        assert_eq!(s.subframe, 9);
        // TBS of 1000 bits per PRB was declared in the DCI.
        assert!((s.own_bits_per_prb - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn control_traffic_users_are_filtered_from_n_but_count_for_idle() {
        let mut m = monitor();
        for sf in 0..40u64 {
            let mut msgs = vec![msg(OWN, 50, sf, true)];
            // A one-subframe, 4-PRB control user appears in subframe 5 only.
            if sf == 5 {
                msgs.push(msg(CTRL, 4, sf, true));
            }
            m.ingest(&fused(sf, msgs));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        // The control user is detected but filtered out of N.
        assert_eq!(s.detected_users, 2);
        assert_eq!(s.active_users, 1);
        // Its PRBs still reduce the idle count in the subframe it appeared.
        let expected_idle = (39.0 * 50.0 + 46.0) / 40.0;
        assert!(
            (s.idle_prbs - expected_idle).abs() < 1e-9,
            "idle = {}",
            s.idle_prbs
        );
    }

    #[test]
    fn persistent_competitor_passes_the_filter() {
        let mut m = monitor();
        for sf in 0..40u64 {
            m.ingest(&fused(
                sf,
                vec![msg(OWN, 40, sf, true), msg(OTHER, 30, sf, true)],
            ));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        assert_eq!(s.active_users, 2);
    }

    #[test]
    fn low_bandwidth_competitor_is_filtered() {
        // Active many subframes but only 2 PRBs on average: Pa <= 4 fails.
        let mut m = monitor();
        for sf in 0..40u64 {
            m.ingest(&fused(
                sf,
                vec![msg(OWN, 40, sf, true), msg(OTHER, 2, sf, true)],
            ));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        assert_eq!(s.active_users, 1);
        assert_eq!(s.detected_users, 2);
    }

    #[test]
    fn window_slides_and_forgets_old_users() {
        let mut m = monitor();
        m.set_window_subframes(10);
        for sf in 0..10u64 {
            m.ingest(&fused(sf, vec![msg(OTHER, 30, sf, true)]));
        }
        assert_eq!(m.snapshot(CellId(0)).unwrap().active_users, 2);
        // The competitor disappears; after 10 more subframes it ages out.
        for sf in 10..20u64 {
            m.ingest(&fused(sf, vec![msg(OWN, 30, sf, true)]));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        assert_eq!(s.active_users, 1);
        assert_eq!(s.detected_users, 1);
    }

    #[test]
    fn retransmission_fraction_is_measured() {
        let mut m = monitor();
        for sf in 0..10u64 {
            // Every 5th grant is a retransmission (NDI = false).
            m.ingest(&fused(sf, vec![msg(OWN, 40, sf, sf % 5 != 0)]));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        assert!((s.own_retransmission_fraction - 0.2).abs() < 1e-9);
    }

    #[test]
    fn rw_survives_subframes_without_own_grants() {
        let mut m = monitor();
        m.ingest(&fused(0, vec![msg(OWN, 50, 0, true)]));
        for sf in 1..20u64 {
            m.ingest(&fused(sf, vec![]));
        }
        let s = m.snapshot(CellId(0)).unwrap();
        assert!((s.own_bits_per_prb - 1000.0).abs() < 1e-9);
        assert_eq!(s.own_prbs, 50.0 / 20.0);
    }

    #[test]
    fn additional_cell_can_be_added() {
        let mut m = monitor();
        m.add_cell(CellId(1), 50);
        assert_eq!(m.cells(), vec![CellId(0), CellId(1)]);
        let s = m.snapshot(CellId(1)).unwrap();
        assert_eq!(s.total_prbs, 50);
    }

    #[test]
    fn handover_retargets_onto_a_fresh_window() {
        let mut m = monitor();
        m.add_cell(CellId(1), 50);
        for sf in 0..20u64 {
            m.ingest(&fused(sf, vec![msg(OWN, 60, sf, true)]));
        }
        assert_eq!(m.window_len(CellId(0)), 20);
        m.handover_to(CellId(2), 75);
        // Only the new serving cell remains, with an empty window; the old
        // cells' history is gone.
        assert_eq!(m.cells(), vec![CellId(2)]);
        assert_eq!(m.window_len(CellId(2)), 0);
        assert!(m.snapshot(CellId(0)).is_none());
        let s = m.snapshot(CellId(2)).unwrap();
        assert_eq!(s.total_prbs, 75);
        // The new primary survives `remove_cell` like any primary.
        m.remove_cell(CellId(2));
        assert_eq!(m.cells(), vec![CellId(2)]);
    }
}
