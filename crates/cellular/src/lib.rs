//! LTE / 5G-NR radio-access-network substrate for the PBE-CC reproduction.
//!
//! The original PBE-CC artifact ran over a commercial LTE deployment observed
//! through USRP software-defined radios.  This crate replaces the over-the-air
//! testbed with a faithful model of the mechanisms the paper's evaluation
//! depends on:
//!
//! * OFDMA resource grid: 180 kHz × 0.5 ms physical resource blocks (PRBs),
//!   1 ms subframes, transport blocks ([`prb`], [`mcs`]).
//! * Downlink control information carried on the PDCCH, one message per
//!   scheduled user per subframe, CRC scrambled by the user's RNTI ([`dci`]).
//! * A per-subframe eNodeB scheduler with per-UE queues and an equal-share
//!   (water-filling) fairness policy ([`scheduler`], [`cell`]).
//! * Carrier aggregation: secondary-cell activation when a user consumes a
//!   large fraction of its serving cells' bandwidth, deactivation when the
//!   extra capacity goes unused ([`carrier`]).
//! * HARQ retransmission eight subframes after a transport-block error, at
//!   most three retransmissions, and the in-order RLC reordering buffer that
//!   turns those retransmissions into 8/16/24 ms delay spikes ([`harq`],
//!   [`reorder`]).
//! * A wireless channel model mapping RSSI / mobility to SINR, CQI, MCS and
//!   transport-block error rate ([`channel`]).
//! * Stochastic background users calibrated to the paper's measurements
//!   (68 % control-traffic users occupying 4 PRBs for one subframe, diurnal
//!   load, heavy-tailed flow sizes) ([`traffic`]).
//! * The [`network::CellularNetwork`] orchestrator that ties all of the above
//!   into the per-subframe data path used by the end-to-end simulator.

#![warn(missing_docs)]

pub mod carrier;
pub mod cell;
pub mod channel;
pub mod config;
pub mod dci;
pub mod handover;
pub mod harq;
pub mod mcs;
pub mod network;
pub mod prb;
pub mod reorder;
pub mod scheduler;
pub mod shard;
pub mod slab;
pub mod traffic;
pub mod ue;

pub use carrier::CarrierAggregationManager;
pub use cell::{Cell, SubframeReport};
pub use channel::{ChannelModel, ChannelState, MobilityTrace};
pub use config::{CellConfig, CellId, CellularConfig, Rnti, UeConfig, UeId};
pub use dci::{DciFormat, DciMessage};
pub use mcs::{Cqi, McsIndex};
pub use network::{CellularNetwork, Delivery, NetworkTickReport};
pub use prb::PrbAllocation;
pub use shard::ShardedNetwork;
pub use traffic::{BackgroundTraffic, CellLoadProfile};
