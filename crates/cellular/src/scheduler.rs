//! Per-subframe eNodeB downlink scheduler.
//!
//! The paper relies on two properties of the base station's allocation
//! policy (§4.3): backlogged users receive an equal share of the cell's PRBs
//! (the "cell tower's fairness policy"), and every user has its own downlink
//! queue so one flow's backlog cannot crowd out another's.  The scheduler
//! here implements exactly that: HARQ retransmissions are served first (they
//! reuse their original allocation size), then control-traffic users get
//! their small fixed grants, and the remaining PRBs are water-filled equally
//! across backlogged data users, capped by each user's actual demand.

use crate::config::{Rnti, UeId};
use crate::prb::{PrbAllocation, PrbUsage};
use serde::{Deserialize, Serialize};

/// Scheduling priority class of one demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemandClass {
    /// A HARQ retransmission: must be served with exactly its PRB count.
    Retransmission,
    /// Control traffic (parameter updates): small fixed grants, served before
    /// data but after retransmissions.
    Control,
    /// Regular downlink data, shares the remaining PRBs equally.
    Data,
}

/// One user's demand for PRBs in one subframe of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Demand {
    /// The user (internal id).
    pub ue: UeId,
    /// The RNTI the allocation will be addressed to.
    pub rnti: Rnti,
    /// PRBs the user could consume this subframe (from its queue depth and
    /// current physical rate).
    pub prbs: u16,
    /// Priority class.
    pub class: DemandClass,
}

/// Result of scheduling one subframe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Per-user allocations, contiguously placed from PRB 0 upward.
    pub allocations: Vec<PrbAllocation>,
    /// PRBs left idle.
    pub idle_prbs: u16,
}

impl ScheduleResult {
    /// Allocation granted to a user (0 if none).
    pub fn granted_to(&self, ue: UeId) -> u16 {
        self.allocations
            .iter()
            .filter(|a| a.ue == ue)
            .map(|a| a.num_prbs)
            .sum()
    }

    /// Convert into a [`PrbUsage`] record for a cell with `total` PRBs.
    pub fn to_usage(&self, total: u16) -> PrbUsage {
        PrbUsage {
            total,
            allocations: self.allocations.clone(),
        }
    }
}

/// Equal-share (water-filling) scheduler.
#[derive(Debug, Clone, Default)]
pub struct EqualShareScheduler {
    /// Round-robin rotation offset so that ties in the remainder distribution
    /// do not systematically favour low-numbered users.
    rotation: usize,
    /// Scratch: `(demand, granted)` pairs, reused across subframes.
    granted: Vec<(Demand, u16)>,
    /// Scratch: data demands and their running grants.
    data: Vec<(Demand, u16)>,
    /// Scratch: indices into `data` still below their demand.
    unsatisfied: Vec<usize>,
}

impl EqualShareScheduler {
    /// New scheduler.
    pub fn new() -> Self {
        EqualShareScheduler::default()
    }

    /// Allocate the `total_prbs` of one subframe among the given demands.
    ///
    /// Demands with zero PRBs are ignored.  Multiple demands for the same UE
    /// are allowed (e.g. a retransmission plus new data) and produce separate
    /// allocations.
    pub fn schedule(&mut self, total_prbs: u16, demands: &[Demand]) -> ScheduleResult {
        let mut result = ScheduleResult::default();
        self.schedule_into(total_prbs, demands, &mut result);
        result
    }

    /// Allocate into a caller-owned result, reusing the scheduler's scratch
    /// buffers — the allocation-free variant the per-subframe tick uses.
    pub fn schedule_into(
        &mut self,
        total_prbs: u16,
        demands: &[Demand],
        result: &mut ScheduleResult,
    ) {
        let mut remaining = total_prbs;
        self.granted.clear();

        // Pass 1: retransmissions get exactly what they ask for (clipped at
        // what is left, in arrival order).
        for d in demands
            .iter()
            .filter(|d| d.class == DemandClass::Retransmission && d.prbs > 0)
        {
            let g = d.prbs.min(remaining);
            remaining -= g;
            self.granted.push((*d, g));
        }

        // Pass 2: control traffic (small fixed grants).
        for d in demands
            .iter()
            .filter(|d| d.class == DemandClass::Control && d.prbs > 0)
        {
            let g = d.prbs.min(remaining);
            remaining -= g;
            self.granted.push((*d, g));
        }

        // Pass 3: equal-share water-filling among data users.
        self.data.clear();
        self.data.extend(
            demands
                .iter()
                .filter(|d| d.class == DemandClass::Data && d.prbs > 0)
                .map(|d| (*d, 0u16)),
        );
        if !self.data.is_empty() && remaining > 0 {
            // Iteratively hand out the fair share; users whose demand is
            // satisfied release their unused share to the others.
            loop {
                self.unsatisfied.clear();
                self.unsatisfied.extend(
                    self.data
                        .iter()
                        .enumerate()
                        .filter(|(_, (d, got))| *got < d.prbs)
                        .map(|(idx, _)| idx),
                );
                if self.unsatisfied.is_empty() || remaining == 0 {
                    break;
                }
                let share = remaining / self.unsatisfied.len() as u16;
                if share == 0 {
                    // Fewer PRBs than users: hand the rest out one by one,
                    // starting at the rotation offset for long-run fairness.
                    let n = self.unsatisfied.len();
                    for k in 0..n {
                        if remaining == 0 {
                            break;
                        }
                        let idx = self.unsatisfied[(k + self.rotation) % n];
                        self.data[idx].1 += 1;
                        remaining -= 1;
                    }
                    break;
                }
                let mut progress = false;
                for &idx in &self.unsatisfied {
                    let want = self.data[idx].0.prbs - self.data[idx].1;
                    let give = want.min(share);
                    if give > 0 {
                        self.data[idx].1 += give;
                        remaining -= give;
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
            self.rotation = self.rotation.wrapping_add(1);
        }
        for (d, got) in &self.data {
            if *got > 0 {
                self.granted.push((*d, *got));
            }
        }

        // Lay the allocations out contiguously from PRB 0.
        result.allocations.clear();
        let mut cursor = 0u16;
        for (d, g) in self.granted.iter().filter(|(_, g)| *g > 0) {
            result.allocations.push(PrbAllocation {
                ue: d.ue,
                rnti: d.rnti,
                first_prb: cursor,
                num_prbs: *g,
            });
            cursor += g;
        }
        result.idle_prbs = total_prbs - cursor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn data(ue: u32, prbs: u16) -> Demand {
        Demand {
            ue: UeId(ue),
            rnti: Rnti(0x100 + ue as u16),
            prbs,
            class: DemandClass::Data,
        }
    }

    fn retx(ue: u32, prbs: u16) -> Demand {
        Demand {
            class: DemandClass::Retransmission,
            ..data(ue, prbs)
        }
    }

    fn ctrl(ue: u32, prbs: u16) -> Demand {
        Demand {
            class: DemandClass::Control,
            ..data(ue, prbs)
        }
    }

    #[test]
    fn single_user_takes_whole_cell_up_to_demand() {
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(100, &[data(1, 200)]);
        assert_eq!(r.granted_to(UeId(1)), 100);
        assert_eq!(r.idle_prbs, 0);
        let r = s.schedule(100, &[data(1, 30)]);
        assert_eq!(r.granted_to(UeId(1)), 30);
        assert_eq!(r.idle_prbs, 70);
    }

    #[test]
    fn two_backlogged_users_split_equally() {
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(100, &[data(1, 500), data(2, 500)]);
        assert_eq!(r.granted_to(UeId(1)), 50);
        assert_eq!(r.granted_to(UeId(2)), 50);
        assert_eq!(r.idle_prbs, 0);
    }

    #[test]
    fn water_filling_redistributes_unused_share() {
        // User 2 only wants 10 PRBs; user 1 should get the rest.
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(100, &[data(1, 500), data(2, 10)]);
        assert_eq!(r.granted_to(UeId(2)), 10);
        assert_eq!(r.granted_to(UeId(1)), 90);
    }

    #[test]
    fn three_users_one_limited() {
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(99, &[data(1, 500), data(2, 500), data(3, 9)]);
        assert_eq!(r.granted_to(UeId(3)), 9);
        assert_eq!(r.granted_to(UeId(1)), 45);
        assert_eq!(r.granted_to(UeId(2)), 45);
    }

    #[test]
    fn retransmissions_and_control_served_first() {
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(100, &[data(1, 500), retx(2, 40), ctrl(3, 4), data(4, 500)]);
        assert_eq!(r.granted_to(UeId(2)), 40);
        assert_eq!(r.granted_to(UeId(3)), 4);
        assert_eq!(r.granted_to(UeId(1)), 28);
        assert_eq!(r.granted_to(UeId(4)), 28);
        assert_eq!(r.idle_prbs, 0);
    }

    #[test]
    fn overload_clips_at_cell_capacity() {
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(50, &[retx(1, 40), retx(2, 40), ctrl(3, 4)]);
        assert_eq!(r.granted_to(UeId(1)), 40);
        assert_eq!(r.granted_to(UeId(2)), 10);
        assert_eq!(r.granted_to(UeId(3)), 0);
        let usage = r.to_usage(50);
        assert!(usage.is_consistent());
    }

    #[test]
    fn fewer_prbs_than_users_rotates_fairly() {
        let mut s = EqualShareScheduler::new();
        let demands: Vec<Demand> = (0..10).map(|i| data(i, 100)).collect();
        let mut totals = vec![0u32; 10];
        for _ in 0..100 {
            let r = s.schedule(3, &demands);
            for (i, t) in totals.iter_mut().enumerate() {
                *t += u32::from(r.granted_to(UeId(i as u32)));
            }
        }
        let min = *totals.iter().min().unwrap();
        let max = *totals.iter().max().unwrap();
        assert!(
            max - min <= 10,
            "rotation keeps long-run shares close: {totals:?}"
        );
    }

    #[test]
    fn zero_demands_leave_cell_idle() {
        let mut s = EqualShareScheduler::new();
        let r = s.schedule(100, &[]);
        assert_eq!(r.idle_prbs, 100);
        let r = s.schedule(100, &[data(1, 0)]);
        assert_eq!(r.idle_prbs, 100);
        assert!(r.allocations.is_empty());
    }

    proptest! {
        #[test]
        fn never_over_allocates_and_stays_consistent(
            total in 1u16..=100,
            demands in proptest::collection::vec((1u32..20, 0u16..200, 0u8..3), 0..20),
        ) {
            let demands: Vec<Demand> = demands
                .into_iter()
                .map(|(ue, prbs, class)| Demand {
                    ue: UeId(ue),
                    rnti: Rnti(0x100 + ue as u16),
                    prbs,
                    class: match class {
                        0 => DemandClass::Retransmission,
                        1 => DemandClass::Control,
                        _ => DemandClass::Data,
                    },
                })
                .collect();
            let mut s = EqualShareScheduler::new();
            let r = s.schedule(total, &demands);
            let usage = r.to_usage(total);
            prop_assert!(usage.is_consistent());
            prop_assert_eq!(usage.allocated() + r.idle_prbs, total);
        }

        #[test]
        fn equal_backlogged_users_get_equal_shares(total in 10u16..=100, n in 1usize..8) {
            let demands: Vec<Demand> = (0..n as u32).map(|i| data(i, 500)).collect();
            let mut s = EqualShareScheduler::new();
            let r = s.schedule(total, &demands);
            let grants: Vec<u16> = (0..n as u32).map(|i| r.granted_to(UeId(i))).collect();
            let min = *grants.iter().min().unwrap();
            let max = *grants.iter().max().unwrap();
            prop_assert!(max - min <= 1, "grants {grants:?}");
        }
    }
}
