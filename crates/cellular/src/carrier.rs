//! Carrier aggregation: secondary-cell activation and deactivation.
//!
//! By default a user is served by its primary component carrier only.  When
//! the user consumes a large fraction of the bandwidth of its serving
//! cell(s) — the paper notes that queue build-up is *not* a prerequisite —
//! the network activates the next configured secondary cell, abruptly adding
//! capacity; when the extra capacity goes unused for a while the secondary
//! cell is deactivated, abruptly removing it (paper §3, Fig. 2).  These
//! capacity steps are precisely the events PBE-CC reacts to faster than
//! end-to-end algorithms can.

use crate::config::{CellId, CellularConfig, UeConfig, UeId};
use pbe_stats::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A carrier activation or deactivation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaEvent {
    /// The user whose cell set changed.
    pub ue: UeId,
    /// The secondary cell involved.
    pub cell: CellId,
    /// True for activation, false for deactivation.
    pub activated: bool,
    /// When the change took effect.
    pub at: Instant,
}

/// Opaque per-UE carrier-aggregation state: the active-cell count, the
/// activation/deactivation streaks and the ever-aggregated flag.  Normally
/// internal to a [`CarrierAggregationManager`]; exposed as a movable value
/// so the sharded engine can migrate a UE's state between shard-local
/// managers when a handover crosses a shard border
/// ([`CarrierAggregationManager::take_ue`] /
/// [`CarrierAggregationManager::restore_ue`]).
#[derive(Debug, Clone, Default)]
pub struct UeCaState {
    /// Number of currently active cells (prefix of the configured list).
    active: usize,
    /// Consecutive subframes of high utilisation.
    high_streak: u64,
    /// Consecutive subframes of low utilisation of the last active cell.
    low_streak: u64,
    /// Whether a secondary cell was ever activated (for Fig. 15).
    ever_aggregated: bool,
}

/// Per-UE carrier-aggregation controller for the whole network.
#[derive(Debug, Default)]
pub struct CarrierAggregationManager {
    states: HashMap<UeId, UeCaState>,
}

/// Per-subframe observation of one UE used to drive the CA state machine.
#[derive(Debug, Clone, Copy)]
pub struct CaObservation {
    /// PRBs allocated to the UE this subframe, summed over its active cells.
    pub allocated_prbs: u32,
    /// Total PRBs of the UE's currently active cells.
    pub active_cell_prbs: u32,
    /// Bits still queued for the UE at the base station (all active cells).
    pub queued_bits: u64,
}

impl CarrierAggregationManager {
    /// New manager with no users registered.
    pub fn new() -> Self {
        CarrierAggregationManager::default()
    }

    /// Register a user (starts with only the primary cell active).
    pub fn register(&mut self, ue: UeId) {
        self.states.entry(ue).or_insert(UeCaState {
            active: 1,
            ..UeCaState::default()
        });
    }

    /// Number of active cells for a user (at least 1 once registered).
    pub fn active_cells(&self, ue: UeId) -> usize {
        self.states.get(&ue).map(|s| s.active.max(1)).unwrap_or(1)
    }

    /// The prefix of the UE's configured cell list that is currently active.
    pub fn active_cell_ids(&self, ue_config: &UeConfig) -> Vec<CellId> {
        let n = self
            .active_cells(ue_config.id)
            .min(ue_config.max_aggregated_cells)
            .min(ue_config.configured_cells.len());
        ue_config.configured_cells[..n].to_vec()
    }

    /// Collapse a UE back to its primary cell only (used by the handover
    /// procedure: the connection re-establishes on the target cell and
    /// secondaries re-activate on demand).  `ever_aggregated` is preserved.
    pub fn reset(&mut self, ue: UeId) {
        if let Some(state) = self.states.get_mut(&ue) {
            state.active = 1;
            state.high_streak = 0;
            state.low_streak = 0;
        }
    }

    /// Remove and return a UE's CA state.  Shard migration support: the
    /// `ever_aggregated` flag (and any mid-streak counters) must follow the
    /// UE to its new shard's manager to stay byte-identical with the serial
    /// engine's single global manager.
    pub fn take_ue(&mut self, ue: UeId) -> Option<UeCaState> {
        self.states.remove(&ue)
    }

    /// Re-insert a state previously removed with
    /// [`CarrierAggregationManager::take_ue`].
    pub fn restore_ue(&mut self, ue: UeId, state: UeCaState) {
        self.states.insert(ue, state);
    }

    /// True if the UE ever had more than one active cell.
    pub fn ever_aggregated(&self, ue: UeId) -> bool {
        self.states
            .get(&ue)
            .map(|s| s.ever_aggregated)
            .unwrap_or(false)
    }

    /// Update the CA state machine of one UE with this subframe's
    /// observation.  Returns an event if a cell was activated or deactivated.
    pub fn observe(
        &mut self,
        config: &CellularConfig,
        ue_config: &UeConfig,
        obs: CaObservation,
        now: Instant,
    ) -> Option<CaEvent> {
        let state = self.states.entry(ue_config.id).or_insert(UeCaState {
            active: 1,
            ..UeCaState::default()
        });
        let max_cells = ue_config
            .max_aggregated_cells
            .min(ue_config.configured_cells.len());
        let utilisation = if obs.active_cell_prbs == 0 {
            0.0
        } else {
            f64::from(obs.allocated_prbs) / f64::from(obs.active_cell_prbs)
        };

        // Activation: the user is consuming a large fraction of its serving
        // cells' bandwidth.  Per the paper (§3), queue build-up is *not* a
        // prerequisite — a rate-based sender pacing at link capacity keeps
        // the queue empty yet still warrants a secondary carrier, so the
        // utilisation of the serving cells is the only trigger.
        let wants_more = utilisation >= config.ca_activation_utilisation;
        if wants_more && state.active < max_cells {
            state.high_streak += 1;
            if state.high_streak >= config.ca_activation_subframes {
                state.active += 1;
                state.high_streak = 0;
                state.low_streak = 0;
                state.ever_aggregated = true;
                let cell = ue_config.configured_cells[state.active - 1];
                return Some(CaEvent {
                    ue: ue_config.id,
                    cell,
                    activated: true,
                    at: now,
                });
            }
        } else {
            state.high_streak = 0;
        }

        // Deactivation: with more than one active cell, if the user's
        // aggregate usage would fit comfortably in one fewer cell, the last
        // activated cell is released.
        if state.active > 1 {
            let last_cell = ue_config.configured_cells[state.active - 1];
            let last_cell_prbs = config
                .cell(last_cell)
                .map(|c| u32::from(c.total_prbs()))
                .unwrap_or(0);
            let without_last = obs.active_cell_prbs.saturating_sub(last_cell_prbs);
            let fits_without_last = without_last > 0
                && f64::from(obs.allocated_prbs)
                    <= config.ca_deactivation_utilisation * f64::from(without_last);
            if fits_without_last {
                state.low_streak += 1;
                if state.low_streak >= config.ca_deactivation_subframes {
                    state.active -= 1;
                    state.low_streak = 0;
                    state.high_streak = 0;
                    return Some(CaEvent {
                        ue: ue_config.id,
                        cell: last_cell,
                        activated: false,
                        at: now,
                    });
                }
            } else {
                state.low_streak = 0;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CellularConfig {
        CellularConfig {
            ca_activation_subframes: 50,
            ca_deactivation_subframes: 100,
            ..CellularConfig::default()
        }
    }

    fn ue_config(max_cells: usize) -> UeConfig {
        UeConfig::new(
            UeId(1),
            vec![CellId(0), CellId(1), CellId(2)],
            max_cells,
            -85.0,
        )
    }

    fn high_obs() -> CaObservation {
        CaObservation {
            allocated_prbs: 95,
            active_cell_prbs: 100,
            queued_bits: 1_000_000,
        }
    }

    fn low_obs(active_prbs: u32) -> CaObservation {
        CaObservation {
            allocated_prbs: 10,
            active_cell_prbs: active_prbs,
            queued_bits: 0,
        }
    }

    #[test]
    fn sustained_high_utilisation_activates_secondary_cell() {
        let cfg = config();
        let uc = ue_config(3);
        let mut ca = CarrierAggregationManager::new();
        ca.register(UeId(1));
        let mut event = None;
        for sf in 0..200u64 {
            if let Some(e) = ca.observe(&cfg, &uc, high_obs(), Instant::from_millis(sf)) {
                event = Some(e);
                break;
            }
        }
        let e = event.expect("activation happens");
        assert!(e.activated);
        assert_eq!(e.cell, CellId(1));
        assert_eq!(e.at, Instant::from_millis(49));
        assert_eq!(ca.active_cells(UeId(1)), 2);
        assert!(ca.ever_aggregated(UeId(1)));
        assert_eq!(ca.active_cell_ids(&uc), vec![CellId(0), CellId(1)]);
    }

    #[test]
    fn activation_respects_device_limit() {
        let cfg = config();
        let uc = ue_config(1); // Redmi 8: single cell only.
        let mut ca = CarrierAggregationManager::new();
        ca.register(UeId(1));
        for sf in 0..1000u64 {
            assert!(ca
                .observe(&cfg, &uc, high_obs(), Instant::from_millis(sf))
                .is_none());
        }
        assert_eq!(ca.active_cells(UeId(1)), 1);
        assert!(!ca.ever_aggregated(UeId(1)));
    }

    #[test]
    fn brief_bursts_do_not_activate() {
        let cfg = config();
        let uc = ue_config(3);
        let mut ca = CarrierAggregationManager::new();
        ca.register(UeId(1));
        for sf in 0..500u64 {
            // Alternate high and low so the streak never reaches 50.
            let obs = if sf % 10 < 5 {
                high_obs()
            } else {
                low_obs(100)
            };
            assert!(ca
                .observe(&cfg, &uc, obs, Instant::from_millis(sf))
                .is_none());
        }
        assert_eq!(ca.active_cells(UeId(1)), 1);
    }

    #[test]
    fn idle_secondary_cell_is_deactivated() {
        let cfg = config();
        let uc = ue_config(2);
        let mut ca = CarrierAggregationManager::new();
        ca.register(UeId(1));
        // Drive to activation first.
        let mut activated = false;
        for sf in 0..200u64 {
            if ca
                .observe(&cfg, &uc, high_obs(), Instant::from_millis(sf))
                .is_some()
            {
                activated = true;
                break;
            }
        }
        assert!(activated);
        // Now the user's demand collapses: allocations easily fit the primary
        // cell alone (150 PRBs active, user takes 10).
        let mut deactivated = None;
        for sf in 200..1000u64 {
            if let Some(e) = ca.observe(&cfg, &uc, low_obs(150), Instant::from_millis(sf)) {
                deactivated = Some(e);
                break;
            }
        }
        let e = deactivated.expect("deactivation happens");
        assert!(!e.activated);
        assert_eq!(e.cell, CellId(1));
        assert_eq!(ca.active_cells(UeId(1)), 1);
        // ever_aggregated stays true after deactivation (Fig. 15 counts it).
        assert!(ca.ever_aggregated(UeId(1)));
    }

    #[test]
    fn unregistered_ue_defaults_to_one_cell() {
        let ca = CarrierAggregationManager::new();
        assert_eq!(ca.active_cells(UeId(9)), 1);
        assert!(!ca.ever_aggregated(UeId(9)));
    }
}
