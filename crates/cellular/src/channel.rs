//! Wireless channel model: RSSI, mobility, fading, SINR, CQI and bit error
//! rate.
//!
//! The paper's experiments span RSSI levels from −85 dBm (good indoor
//! coverage) to −113 dBm (cell edge), a mobility experiment that walks the
//! device from −85 dBm to −105 dBm and back (Fig. 16/17), and an analytic
//! transport-block error model based on an i.i.d. bit error rate between
//! 1 × 10⁻⁶ and 5 × 10⁻⁶ (Fig. 6).  [`ChannelModel`] reproduces those inputs:
//! a deterministic RSSI trajectory plus log-normal shadowing and fast fading
//! with a configurable coherence time, mapped to SINR, CQI and BER.

use crate::mcs::Cqi;
use pbe_stats::time::{Duration, Instant};
use pbe_stats::DetRng;
use serde::{Deserialize, Serialize};

/// Thermal noise plus typical interference floor for a 20 MHz LTE carrier at
/// a moderately loaded site, in dBm.  SINR ≈ RSSI − NOISE_FLOOR_DBM.
pub const NOISE_FLOOR_DBM: f64 = -110.0;

/// A piecewise-linear RSSI-versus-time trajectory (the mobility model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MobilityTrace {
    /// `(time, rssi_dbm)` waypoints, sorted by time.  RSSI is linearly
    /// interpolated between waypoints and held constant after the last one.
    pub waypoints: Vec<(Instant, f64)>,
}

impl MobilityTrace {
    /// A static device at a fixed RSSI.
    pub fn stationary(rssi_dbm: f64) -> Self {
        MobilityTrace {
            waypoints: vec![(Instant::ZERO, rssi_dbm)],
        }
    }

    /// The paper's Fig. 16/17 walk: hold at −85 dBm for 13 s, walk to
    /// −105 dBm over the next 13 s, walk back in 4 s, hold 10 s (40 s total).
    pub fn paper_mobility_walk() -> Self {
        MobilityTrace {
            waypoints: vec![
                (Instant::ZERO, -85.0),
                (Instant::from_secs(13), -85.0),
                (Instant::from_secs(26), -105.0),
                (Instant::from_secs(30), -85.0),
                (Instant::from_secs(40), -85.0),
            ],
        }
    }

    /// Build a trace from `(seconds, rssi)` pairs.
    pub fn from_secs(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty());
        MobilityTrace {
            waypoints: points
                .iter()
                .map(|(s, r)| (Instant::from_micros((s * 1e6) as u64), *r))
                .collect(),
        }
    }

    /// RSSI at a point in time.
    pub fn rssi_at(&self, t: Instant) -> f64 {
        debug_assert!(!self.waypoints.is_empty());
        if t <= self.waypoints[0].0 {
            return self.waypoints[0].1;
        }
        for w in self.waypoints.windows(2) {
            let (t0, r0) = w[0];
            let (t1, r1) = w[1];
            if t >= t0 && t <= t1 {
                if t1 == t0 {
                    return r1;
                }
                let frac = (t.as_micros() - t0.as_micros()) as f64
                    / (t1.as_micros() - t0.as_micros()) as f64;
                return r0 + (r1 - r0) * frac;
            }
        }
        self.waypoints.last().expect("non-empty").1
    }
}

/// Instantaneous channel state between one UE and one cell, sampled once per
/// subframe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelState {
    /// Received signal strength including fading, dBm.
    pub rssi_dbm: f64,
    /// Signal-to-interference-plus-noise ratio, dB.
    pub sinr_db: f64,
    /// Channel quality indicator the UE would report.
    pub cqi: Cqi,
    /// Number of usable spatial streams (rank indicator).
    pub spatial_streams: u8,
    /// Estimated i.i.d. bit error rate after forward error correction, used
    /// by the transport-block error model of the paper's Eqn. 5.
    pub bit_error_rate: f64,
}

impl ChannelState {
    /// Reference-signal received power of this sample, dBm.
    ///
    /// True RSRP is the per-resource-element power, a fixed offset
    /// (−10·log10(12·PRBs)) below the wideband RSSI; a fixed offset is
    /// invisible to the comparative A3 ranking, so the model reports the
    /// faded RSSI directly and keeps the traces' dBm calibration.
    pub fn rsrp_dbm(&self) -> f64 {
        self.rssi_dbm
    }
}

/// Exponential L3 measurement filter applied to raw per-sample RSRP before
/// cell ranking (3GPP's layer-3 filtering, TS 36.331 §5.5.3.2).
///
/// Fast fading swings the per-subframe RSRP by several dB; ranking cells on
/// raw samples would hand over on fades.  The filter is a first-order
/// exponential smoother with a configurable time constant: each new sample
/// moves the state by `1 − exp(−Δt/τ)` of the gap.
#[derive(Debug, Clone, Copy)]
pub struct L3Filter {
    time_constant_ms: f64,
    state_dbm: Option<f64>,
    last_sample: Instant,
}

impl L3Filter {
    /// A filter with the given smoothing time constant in milliseconds.
    pub fn new(time_constant_ms: f64) -> Self {
        L3Filter {
            time_constant_ms: time_constant_ms.max(0.0),
            state_dbm: None,
            last_sample: Instant::ZERO,
        }
    }

    /// Fold one raw RSRP sample taken at `t` into the filter and return the
    /// filtered value.  The first sample initialises the state directly.
    pub fn update(&mut self, t: Instant, rsrp_dbm: f64) -> f64 {
        let state = match self.state_dbm {
            None => rsrp_dbm,
            Some(prev) => {
                let dt_ms = t.saturating_since(self.last_sample).as_millis_f64();
                let alpha = if self.time_constant_ms <= 0.0 {
                    1.0
                } else {
                    1.0 - (-dt_ms / self.time_constant_ms).exp()
                };
                prev + alpha * (rsrp_dbm - prev)
            }
        };
        self.state_dbm = Some(state);
        self.last_sample = t;
        state
    }

    /// The current filtered RSRP, if at least one sample arrived.
    pub fn get(&self) -> Option<f64> {
        self.state_dbm
    }
}

/// Rank cells by filtered RSRP, strongest first (deterministic: ties break
/// towards the lower cell id so the ranking is stable across platforms).
pub fn rank_cells_by_rsrp(measurements: &mut [(crate::config::CellId, f64)]) {
    measurements.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
}

/// Per-(UE, cell) wireless channel model.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    trace: MobilityTrace,
    /// Standard deviation of slow log-normal shadowing, dB.
    shadowing_std_db: f64,
    /// Peak-to-peak magnitude of fast fading, dB.
    fading_depth_db: f64,
    /// Channel coherence time: fading is re-drawn at this period.
    coherence_time: Duration,
    /// Maximum spatial streams the UE/cell pair supports.
    max_spatial_streams: u8,
    rng: DetRng,
    current_fading_db: f64,
    current_shadowing_db: f64,
    fading_valid_until: Instant,
}

impl ChannelModel {
    /// Create a channel model from a mobility trace.
    pub fn new(trace: MobilityTrace, max_spatial_streams: u8, rng: DetRng) -> Self {
        ChannelModel {
            trace,
            shadowing_std_db: 2.0,
            fading_depth_db: 3.0,
            coherence_time: Duration::from_millis(20),
            max_spatial_streams: max_spatial_streams.max(1),
            rng,
            current_fading_db: 0.0,
            current_shadowing_db: 0.0,
            fading_valid_until: Instant::ZERO,
        }
    }

    /// A stationary channel at a fixed RSSI.
    pub fn stationary(rssi_dbm: f64, max_spatial_streams: u8, rng: DetRng) -> Self {
        ChannelModel::new(
            MobilityTrace::stationary(rssi_dbm),
            max_spatial_streams,
            rng,
        )
    }

    /// Override the fading coherence time (small values model vehicular
    /// mobility, paper §1).
    pub fn with_coherence_time(mut self, coherence: Duration) -> Self {
        self.coherence_time = coherence.max(Duration::from_millis(1));
        self
    }

    /// Override the fading depth (dB).
    pub fn with_fading_depth(mut self, depth_db: f64) -> Self {
        self.fading_depth_db = depth_db.max(0.0);
        self
    }

    /// Disable all randomness (no fading, no shadowing) — useful for tests
    /// and for the analytic figures.
    pub fn deterministic(mut self) -> Self {
        self.fading_depth_db = 0.0;
        self.shadowing_std_db = 0.0;
        self
    }

    /// Sample the channel state for the subframe starting at `t`.
    pub fn sample(&mut self, t: Instant) -> ChannelState {
        if t >= self.fading_valid_until {
            self.current_fading_db = if self.fading_depth_db > 0.0 {
                // Rayleigh-like fades: mostly shallow, occasionally deep.
                let u = self.rng.uniform();
                let deep = self.rng.bernoulli(0.05);
                let depth = if deep {
                    self.fading_depth_db * 3.0
                } else {
                    self.fading_depth_db
                };
                -depth * u
            } else {
                0.0
            };
            self.current_shadowing_db = if self.shadowing_std_db > 0.0 {
                self.rng.normal(0.0, self.shadowing_std_db)
            } else {
                0.0
            };
            self.fading_valid_until = t + self.coherence_time;
        }
        let base_rssi = self.trace.rssi_at(t);
        let rssi = base_rssi + self.current_shadowing_db + self.current_fading_db;
        let sinr = rssi - NOISE_FLOOR_DBM;
        let cqi = Cqi::from_sinr_db(sinr);
        let spatial_streams = if sinr >= 13.0 {
            self.max_spatial_streams.clamp(1, 2)
        } else {
            1
        };
        ChannelState {
            rssi_dbm: rssi,
            sinr_db: sinr,
            cqi,
            spatial_streams,
            bit_error_rate: ber_from_sinr(sinr),
        }
    }

    /// The underlying mobility trace.
    pub fn trace(&self) -> &MobilityTrace {
        &self.trace
    }
}

/// Residual post-FEC bit error rate as a function of SINR.
///
/// Calibrated to the paper's Fig. 6 measurements: a strong link (RSSI
/// −98 dBm ⇒ SINR ≈ 12 dB) sees p ≈ 2–3 × 10⁻⁶ and a weak link (−113 dBm ⇒
/// SINR ≈ −3 dB) sees p ≈ 5 × 10⁻⁶, with p → 1 × 10⁻⁶ on excellent channels.
pub fn ber_from_sinr(sinr_db: f64) -> f64 {
    const BER_MIN: f64 = 1.0e-6;
    const BER_MAX: f64 = 5.0e-6;
    // Logistic transition centred at 8 dB with a 6 dB width.
    let x = (sinr_db - 8.0) / 6.0;
    let frac = 1.0 / (1.0 + x.exp());
    BER_MIN + (BER_MAX - BER_MIN) * frac
}

/// Transport-block error probability for a TB of `tb_bits` bits under an
/// i.i.d. bit error rate `ber` (the paper's model: `1 − (1 − p)^L`).
pub fn tb_error_probability(tb_bits: u64, ber: f64) -> f64 {
    if tb_bits == 0 || ber <= 0.0 {
        return 0.0;
    }
    if ber >= 1.0 {
        return 1.0;
    }
    // Compute in log space for numerical stability with large L.
    let log_ok = (tb_bits as f64) * (1.0 - ber).ln();
    1.0 - log_ok.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stationary_trace_is_flat() {
        let trace = MobilityTrace::stationary(-90.0);
        assert_eq!(trace.rssi_at(Instant::ZERO), -90.0);
        assert_eq!(trace.rssi_at(Instant::from_secs(100)), -90.0);
    }

    #[test]
    fn paper_walk_interpolates() {
        let trace = MobilityTrace::paper_mobility_walk();
        assert_eq!(trace.rssi_at(Instant::from_secs(5)), -85.0);
        // Midpoint of the 13 s..26 s descent: about -95 dBm.
        let mid = trace.rssi_at(Instant::from_micros(19_500_000));
        assert!((mid - (-95.0)).abs() < 0.5, "mid = {mid}");
        assert_eq!(trace.rssi_at(Instant::from_secs(26)), -105.0);
        assert_eq!(trace.rssi_at(Instant::from_secs(35)), -85.0);
        assert_eq!(trace.rssi_at(Instant::from_secs(400)), -85.0);
    }

    #[test]
    fn from_secs_builder() {
        let trace = MobilityTrace::from_secs(&[(0.0, -80.0), (10.0, -100.0)]);
        assert_eq!(trace.rssi_at(Instant::from_secs(0)), -80.0);
        assert!((trace.rssi_at(Instant::from_secs(5)) - (-90.0)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_channel_maps_rssi_to_cqi_monotonically() {
        let mut good = ChannelModel::stationary(-85.0, 2, DetRng::new(1)).deterministic();
        let mut bad = ChannelModel::stationary(-108.0, 2, DetRng::new(1)).deterministic();
        let g = good.sample(Instant::ZERO);
        let b = bad.sample(Instant::ZERO);
        assert!(g.cqi > b.cqi);
        assert!(g.sinr_db > b.sinr_db);
        assert_eq!(g.spatial_streams, 2);
        assert_eq!(b.spatial_streams, 1);
        assert!(g.bit_error_rate < b.bit_error_rate);
    }

    #[test]
    fn fading_changes_only_at_coherence_boundaries() {
        let mut ch = ChannelModel::stationary(-90.0, 2, DetRng::new(7))
            .with_coherence_time(Duration::from_millis(10));
        let a = ch.sample(Instant::from_millis(0));
        let b = ch.sample(Instant::from_millis(5));
        let c = ch.sample(Instant::from_millis(15));
        assert_eq!(
            a.rssi_dbm, b.rssi_dbm,
            "within one coherence interval the fade is constant"
        );
        // After the coherence time the fade is re-drawn; values are almost
        // surely different.
        assert_ne!(a.rssi_dbm, c.rssi_dbm);
    }

    #[test]
    fn ber_is_in_paper_range_and_monotone() {
        assert!(ber_from_sinr(30.0) <= 1.5e-6);
        assert!(ber_from_sinr(-5.0) >= 4.0e-6);
        let mut prev = f64::MAX;
        for i in -10..=30 {
            let b = ber_from_sinr(i as f64);
            assert!(b <= prev);
            assert!((1.0e-6..=5.0e-6).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn tb_error_probability_matches_formula() {
        // Small L: direct comparison with the naive formula.
        let p = tb_error_probability(1000, 1e-4);
        let naive = 1.0 - (1.0 - 1e-4f64).powi(1000);
        assert!((p - naive).abs() < 1e-9);
        assert_eq!(tb_error_probability(0, 1e-4), 0.0);
        assert_eq!(tb_error_probability(100, 0.0), 0.0);
        assert_eq!(tb_error_probability(100, 1.0), 1.0);
    }

    #[test]
    fn tb_error_probability_matches_paper_fig6b() {
        // Paper Fig. 6(b): at BER 5e-6 a 60 kbit TB has ~26 % error rate,
        // at BER 1e-6 a 60 kbit TB has ~6 %.
        let p_high = tb_error_probability(60_000, 5e-6);
        let p_low = tb_error_probability(60_000, 1e-6);
        assert!((0.2..0.3).contains(&p_high), "p_high = {p_high}");
        assert!((0.04..0.08).contains(&p_low), "p_low = {p_low}");
    }

    proptest! {
        #[test]
        fn tb_error_probability_is_probability(bits in 0u64..10_000_000, ber in 0.0f64..0.01) {
            let p = tb_error_probability(bits, ber);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn tb_error_monotone_in_size(bits in 1u64..1_000_000, extra in 1u64..1_000_000, ber in 1e-7f64..1e-4) {
            let p1 = tb_error_probability(bits, ber);
            let p2 = tb_error_probability(bits + extra, ber);
            prop_assert!(p2 >= p1);
        }

        #[test]
        fn channel_sample_is_sane(rssi in -120.0f64..-60.0, seed in 0u64..1000) {
            let mut ch = ChannelModel::stationary(rssi, 2, DetRng::new(seed));
            let s = ch.sample(Instant::from_millis(seed));
            prop_assert!(s.cqi.0 >= 1 && s.cqi.0 <= 15);
            prop_assert!(s.spatial_streams >= 1 && s.spatial_streams <= 2);
            prop_assert!(s.bit_error_rate > 0.0 && s.bit_error_rate < 1e-5);
        }
    }
}
