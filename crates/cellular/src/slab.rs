//! Dense struct-of-arrays storage for per-UE hot state.
//!
//! The per-subframe loops of [`crate::cell::Cell`] and
//! [`crate::network::CellularNetwork`] touch several pieces of state for
//! every attached UE, every millisecond.  Keyed `HashMap`s pay a hash per
//! touch; this module replaces them with *slabs*: one sorted id vector
//! ([`UeSlots`]) shared by any number of parallel value lanes (`Vec<T>`
//! indexed by slot).  Iteration runs over dense memory in UeId order — the
//! order every determinism invariant in the workspace is stated in — and a
//! by-id lookup is a branch-free binary search over a handful of cache
//! lines.
//!
//! [`UeSlab`] bundles one [`UeSlots`] index with a single value lane for
//! map-like use; multi-lane owners (the cell keeps queues, HARQ entities,
//! RNTIs, counters) embed one `UeSlots` and keep their lanes in lock-step
//! through the slot returned by [`UeSlots::insert`]/[`UeSlots::remove`].

use crate::config::UeId;

/// The sorted dense index: UeId → slot.
#[derive(Debug, Clone, Default)]
pub struct UeSlots {
    ids: Vec<UeId>,
}

/// Result of [`UeSlots::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotInsert {
    /// The id was new; every lane must `insert(slot, value)` at this slot.
    Inserted(usize),
    /// The id was already present at this slot; lanes stay untouched.
    Present(usize),
}

impl UeSlots {
    /// Empty index.
    pub fn new() -> Self {
        UeSlots::default()
    }

    /// Number of ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ids in sorted order; the position of an id is its slot.
    pub fn ids(&self) -> &[UeId] {
        &self.ids
    }

    /// Slot of an id, if present.
    #[inline]
    pub fn slot_of(&self, ue: UeId) -> Option<usize> {
        self.ids.binary_search(&ue).ok()
    }

    /// True if the id is present.
    #[inline]
    pub fn contains(&self, ue: UeId) -> bool {
        self.slot_of(ue).is_some()
    }

    /// Insert an id, keeping the vector sorted.  Returns where it landed and
    /// whether lanes must shift.
    pub fn insert(&mut self, ue: UeId) -> SlotInsert {
        match self.ids.binary_search(&ue) {
            Ok(slot) => SlotInsert::Present(slot),
            Err(slot) => {
                self.ids.insert(slot, ue);
                SlotInsert::Inserted(slot)
            }
        }
    }

    /// Remove an id, returning the slot it occupied (lanes must `remove` the
    /// same slot to stay parallel).
    pub fn remove(&mut self, ue: UeId) -> Option<usize> {
        match self.ids.binary_search(&ue) {
            Ok(slot) => {
                self.ids.remove(slot);
                Some(slot)
            }
            Err(_) => None,
        }
    }
}

/// A single-lane slab: a sorted map UeId → T backed by two parallel vectors.
///
/// Matches the semantics of `HashMap<UeId, T>` plus sorted iteration —
/// the shape the per-UE loops want.  The property tests in
/// `tests/slab_properties.rs` pin this equivalence.
#[derive(Debug, Clone, Default)]
pub struct UeSlab<T> {
    slots: UeSlots,
    values: Vec<T>,
}

impl<T> UeSlab<T> {
    /// Empty slab.
    pub fn new() -> Self {
        UeSlab {
            slots: UeSlots::new(),
            values: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sorted ids; position = slot.
    pub fn ids(&self) -> &[UeId] {
        self.slots.ids()
    }

    /// Slot of an id.
    #[inline]
    pub fn slot_of(&self, ue: UeId) -> Option<usize> {
        self.slots.slot_of(ue)
    }

    /// True if the id is present.
    pub fn contains(&self, ue: UeId) -> bool {
        self.slots.contains(ue)
    }

    /// Insert or replace; returns the previous value if the id was present.
    pub fn insert(&mut self, ue: UeId, value: T) -> Option<T> {
        match self.slots.insert(ue) {
            SlotInsert::Inserted(slot) => {
                self.values.insert(slot, value);
                None
            }
            SlotInsert::Present(slot) => Some(std::mem::replace(&mut self.values[slot], value)),
        }
    }

    /// Remove an id, returning its value.
    pub fn remove(&mut self, ue: UeId) -> Option<T> {
        self.slots.remove(ue).map(|slot| self.values.remove(slot))
    }

    /// Value of an id.
    #[inline]
    pub fn get(&self, ue: UeId) -> Option<&T> {
        self.slot_of(ue).map(|slot| &self.values[slot])
    }

    /// Mutable value of an id.
    #[inline]
    pub fn get_mut(&mut self, ue: UeId) -> Option<&mut T> {
        self.slot_of(ue).map(move |slot| &mut self.values[slot])
    }

    /// Value at a slot (dense access for loops that carry the slot).
    #[inline]
    pub fn value_at(&self, slot: usize) -> &T {
        &self.values[slot]
    }

    /// Mutable value at a slot.
    #[inline]
    pub fn value_at_mut(&mut self, slot: usize) -> &mut T {
        &mut self.values[slot]
    }

    /// Iterate `(id, &value)` in sorted id order.
    pub fn iter(&self) -> impl Iterator<Item = (UeId, &T)> {
        self.slots.ids().iter().copied().zip(self.values.iter())
    }

    /// Iterate `(id, &mut value)` in sorted id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (UeId, &mut T)> {
        self.slots.ids().iter().copied().zip(self.values.iter_mut())
    }

    /// The value lane, parallel to [`UeSlab::ids`].
    pub fn values(&self) -> &[T] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_insert_remove_keep_sorted_order() {
        let mut slots = UeSlots::new();
        assert_eq!(slots.insert(UeId(5)), SlotInsert::Inserted(0));
        assert_eq!(slots.insert(UeId(2)), SlotInsert::Inserted(0));
        assert_eq!(slots.insert(UeId(9)), SlotInsert::Inserted(2));
        assert_eq!(slots.insert(UeId(5)), SlotInsert::Present(1));
        assert_eq!(slots.ids(), &[UeId(2), UeId(5), UeId(9)]);
        assert_eq!(slots.slot_of(UeId(9)), Some(2));
        assert_eq!(slots.remove(UeId(5)), Some(1));
        assert_eq!(slots.remove(UeId(5)), None);
        assert_eq!(slots.ids(), &[UeId(2), UeId(9)]);
        assert_eq!(slots.len(), 2);
        assert!(!slots.is_empty());
    }

    #[test]
    fn slab_behaves_like_a_sorted_map() {
        let mut slab: UeSlab<u64> = UeSlab::new();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(UeId(3), 30), None);
        assert_eq!(slab.insert(UeId(1), 10), None);
        assert_eq!(slab.insert(UeId(3), 33), Some(30));
        assert_eq!(slab.get(UeId(3)), Some(&33));
        assert_eq!(slab.get(UeId(2)), None);
        *slab.get_mut(UeId(1)).unwrap() += 1;
        assert_eq!(
            slab.iter().collect::<Vec<_>>(),
            vec![(UeId(1), &11), (UeId(3), &33)]
        );
        assert_eq!(slab.remove(UeId(1)), Some(11));
        assert_eq!(slab.remove(UeId(1)), None);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.value_at(0), &33);
    }
}
