//! Inter-cell handover: A3-event reselection of the serving cell.
//!
//! The paper's walking and driving experiments (§6.3.2) cross cell
//! boundaries — the most violent capacity event a cellular endpoint sees:
//! the serving cell's queue, HARQ processes and control channel all move to
//! a different carrier at once.  This module is the network-side machinery:
//! per-UE L3-filtered RSRP bookkeeping over the configured cells and the
//! classic LTE *A3 event* trigger — a neighbour whose filtered RSRP exceeds
//! the serving cell's by a hysteresis margin for a full time-to-trigger
//! window becomes the new serving cell ([`HandoverConfig`]).
//!
//! The actual switch — draining the source cell's queue and in-flight HARQ
//! blocks onto the target, flushing the UE-side reordering buffer, resetting
//! carrier aggregation — lives in
//! [`CellularNetwork::tick`](crate::network::CellularNetwork::tick), which
//! consults [`HandoverManager::observe`] each measurement period and reports
//! every executed switch as a [`HandoverEvent`].

use crate::channel::{rank_cells_by_rsrp, L3Filter};
use crate::config::{CellId, HandoverConfig, UeId};
use pbe_stats::time::Instant;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A completed change of a UE's serving cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandoverEvent {
    /// The device whose serving cell changed.
    pub ue: UeId,
    /// The source (old serving) cell.
    pub from: CellId,
    /// The target (new serving) cell.
    pub to: CellId,
    /// When the switch took effect.
    pub at: Instant,
}

/// Opaque per-UE measurement state: the L3 filters, the A3 candidate timer
/// and the ping-pong guard.  Normally internal to a [`HandoverManager`];
/// exposed as a movable value so the sharded engine can migrate a UE's
/// state between shard-local managers when a handover crosses a shard
/// border ([`HandoverManager::take_ue`] / [`HandoverManager::restore_ue`]).
#[derive(Debug, Default)]
pub struct UeHandoverState {
    /// One L3 filter per measured cell.
    filters: HashMap<CellId, L3Filter>,
    /// The neighbour currently satisfying the A3 condition, if any.
    a3_candidate: Option<CellId>,
    /// When `a3_candidate` first satisfied the condition.
    a3_since: Instant,
    /// Time of the UE's last executed handover (ping-pong guard).
    last_handover: Option<Instant>,
}

/// Per-UE A3 reselection state machine for the whole network.
#[derive(Debug)]
pub struct HandoverManager {
    config: HandoverConfig,
    states: HashMap<UeId, UeHandoverState>,
    /// Scratch buffer for the per-observation cell ranking.
    ranking: Vec<(CellId, f64)>,
}

impl HandoverManager {
    /// A manager with the given trigger parameters and no UEs registered.
    pub fn new(config: HandoverConfig) -> Self {
        HandoverManager {
            config,
            states: HashMap::new(),
            ranking: Vec::new(),
        }
    }

    /// The trigger parameters.
    pub fn config(&self) -> &HandoverConfig {
        &self.config
    }

    /// True if `now` lands on a neighbour-measurement subframe.
    pub fn is_measurement_subframe(&self, now: Instant) -> bool {
        let period = self.config.measurement_period_ms.max(1);
        now.as_millis().is_multiple_of(period)
    }

    /// Fold one measurement round into the UE's filters and evaluate the A3
    /// event.  `samples` carries the raw per-cell RSRP of every configured
    /// cell (serving included) sampled this round; the returned cell, if
    /// any, is the target the network should hand the UE over to.
    pub fn observe(
        &mut self,
        ue: UeId,
        serving: CellId,
        samples: &[(CellId, f64)],
        now: Instant,
    ) -> Option<CellId> {
        if !self.config.enabled {
            return None;
        }
        let tau_ms = self.config.l3_filter_ms;
        let state = self.states.entry(ue).or_default();

        // L3-filter every measured cell and rank by filtered RSRP.
        self.ranking.clear();
        for (cell, rsrp) in samples {
            let filter = state
                .filters
                .entry(*cell)
                .or_insert_with(|| L3Filter::new(tau_ms));
            self.ranking.push((*cell, filter.update(now, *rsrp)));
        }
        rank_cells_by_rsrp(&mut self.ranking);

        let serving_rsrp = self
            .ranking
            .iter()
            .find(|(c, _)| *c == serving)
            .map(|(_, r)| *r)?;
        let (best, best_rsrp) = *self.ranking.iter().find(|(c, _)| *c != serving)?;

        // The A3 entry condition, with hysteresis.
        if best_rsrp <= serving_rsrp + self.config.a3_hysteresis_db {
            state.a3_candidate = None;
            return None;
        }
        // A different neighbour taking the lead restarts the timer.
        if state.a3_candidate != Some(best) {
            state.a3_candidate = Some(best);
            state.a3_since = now;
        }
        // Time-to-trigger: the condition must have held for the full window.
        if now.saturating_since(state.a3_since).as_millis() < self.config.time_to_trigger_ms {
            return None;
        }
        // Ping-pong guard.
        if let Some(last) = state.last_handover {
            if now.saturating_since(last).as_millis() < self.config.min_interval_ms {
                return None;
            }
        }
        Some(best)
    }

    /// Record that a handover of `ue` was executed at `now` (resets the A3
    /// timer and arms the minimum-interval guard).
    pub fn note_handover(&mut self, ue: UeId, now: Instant) {
        let state = self.states.entry(ue).or_default();
        state.a3_candidate = None;
        state.last_handover = Some(now);
    }

    /// Remove and return a UE's measurement state.  Shard migration
    /// support: when a handover moves a UE to a cell owned by another
    /// shard, its L3 filter history and ping-pong guard must follow it to
    /// that shard's manager, or the next A3 evaluation would start from
    /// scratch and diverge from the serial engine.
    pub fn take_ue(&mut self, ue: UeId) -> Option<UeHandoverState> {
        self.states.remove(&ue)
    }

    /// Re-insert a state previously removed with [`HandoverManager::take_ue`].
    pub fn restore_ue(&mut self, ue: UeId, state: UeHandoverState) {
        self.states.insert(ue, state);
    }

    /// The current filtered RSRP of one (UE, cell) pair, if measured.
    pub fn filtered_rsrp(&self, ue: UeId, cell: CellId) -> Option<f64> {
        self.states
            .get(&ue)
            .and_then(|s| s.filters.get(&cell))
            .and_then(|f| f.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UE: UeId = UeId(1);
    const A: CellId = CellId(0);
    const B: CellId = CellId(1);

    fn manager() -> HandoverManager {
        HandoverManager::new(HandoverConfig {
            enabled: true,
            a3_hysteresis_db: 3.0,
            time_to_trigger_ms: 160,
            // Unfiltered measurements keep the arithmetic of these tests
            // exact; filtering has its own tests in `channel`.
            l3_filter_ms: 0.0,
            measurement_period_ms: 40,
            min_interval_ms: 1000,
            reacquisition_gap_ms: 40,
        })
    }

    fn run(m: &mut HandoverManager, serving: CellId, a: f64, b: f64, t_ms: u64) -> Option<CellId> {
        m.observe(UE, serving, &[(A, a), (B, b)], Instant::from_millis(t_ms))
    }

    #[test]
    fn a3_honours_hysteresis() {
        let mut m = manager();
        // The neighbour is stronger, but within the 3 dB hysteresis: never
        // triggers no matter how long it holds.
        for t in (0..4000).step_by(40) {
            assert_eq!(run(&mut m, A, -90.0, -88.0, t), None);
        }
        // Clearing the hysteresis starts (but does not instantly fire) TTT.
        assert_eq!(run(&mut m, A, -90.0, -86.0, 4000), None);
    }

    #[test]
    fn a3_honours_time_to_trigger() {
        let mut m = manager();
        // Condition satisfied from t=0; must hold 160 ms before firing.
        assert_eq!(run(&mut m, A, -90.0, -85.0, 0), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 40), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 80), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 120), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 160), Some(B));
    }

    #[test]
    fn a3_timer_resets_when_condition_lapses() {
        let mut m = manager();
        assert_eq!(run(&mut m, A, -90.0, -85.0, 0), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 80), None);
        // The neighbour dips back inside the hysteresis: timer restarts.
        assert_eq!(run(&mut m, A, -90.0, -89.0, 120), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 160), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 280), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 320), Some(B));
    }

    #[test]
    fn min_interval_suppresses_ping_pong() {
        let mut m = manager();
        assert_eq!(run(&mut m, A, -90.0, -85.0, 0), None);
        assert_eq!(run(&mut m, A, -90.0, -85.0, 160), Some(B));
        m.note_handover(UE, Instant::from_millis(160));
        // B is now serving and A immediately looks stronger again — the
        // guard holds the UE on B for a second.
        for t in (200..1160).step_by(40) {
            assert_eq!(run(&mut m, B, -85.0, -90.0, t), None);
        }
        assert_eq!(run(&mut m, B, -85.0, -90.0, 1320), Some(A));
    }

    #[test]
    fn disabled_manager_never_triggers() {
        let mut m = HandoverManager::new(HandoverConfig {
            enabled: false,
            ..HandoverConfig::default()
        });
        for t in (0..4000).step_by(40) {
            assert_eq!(run(&mut m, A, -100.0, -60.0, t), None);
        }
    }

    #[test]
    fn measurement_subframes_follow_the_period() {
        let m = manager();
        assert!(m.is_measurement_subframe(Instant::from_millis(0)));
        assert!(!m.is_measurement_subframe(Instant::from_millis(39)));
        assert!(m.is_measurement_subframe(Instant::from_millis(40)));
    }
}
