//! The cellular network orchestrator: cells, UEs, carrier aggregation and the
//! per-subframe data path.
//!
//! [`CellularNetwork`] is the boundary the end-to-end simulator talks to: the
//! wired path hands it downlink packets ([`CellularNetwork::enqueue_packet`]),
//! it advances the radio access network one 1 ms subframe at a time
//! ([`CellularNetwork::tick`]), and it reports packet deliveries (with the
//! HARQ/reordering delays the paper analyses), every DCI message transmitted
//! on every cell's control channel (the PBE-CC monitor's input), PRB usage
//! and carrier-aggregation events.

use crate::carrier::{CaEvent, CaObservation, CarrierAggregationManager};
use crate::cell::{Cell, QueuedPacket, SubframeReport};
use crate::channel::{ChannelModel, ChannelState, MobilityTrace};
use crate::config::{CellId, CellularConfig, Rnti, UeConfig, UeId};
use crate::dci::DciMessage;
use crate::traffic::{BackgroundTraffic, CellLoadProfile};
use crate::ue::UserEquipment;
use pbe_stats::time::Instant;
use pbe_stats::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A packet delivered (or lost) by the cellular network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Destination UE.
    pub ue: UeId,
    /// Packet id supplied at enqueue time.
    pub packet_id: u64,
    /// Payload bytes.
    pub bytes: u32,
    /// Time the packet was released to upper layers at the UE.
    pub at: Instant,
    /// False if the packet was lost (a transport block carrying part of it
    /// exhausted its HARQ retransmissions).
    pub delivered: bool,
    /// Cell that served the packet.
    pub cell: CellId,
}

/// Everything that happened in the radio access network during one subframe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetworkTickReport {
    /// Subframe index.
    pub subframe: u64,
    /// Packet deliveries and losses.
    pub deliveries: Vec<Delivery>,
    /// Every DCI message transmitted in every cell this subframe.
    pub dci_messages: Vec<DciMessage>,
    /// Per-cell detail (PRB usage, HARQ outcomes, queue depths).
    pub cell_reports: Vec<SubframeReport>,
    /// Carrier activation / deactivation events.
    pub ca_events: Vec<CaEvent>,
}

/// The simulated radio access network.
#[derive(Debug)]
pub struct CellularNetwork {
    config: CellularConfig,
    cells: Vec<Cell>,
    ues: HashMap<UeId, UserEquipment>,
    ue_configs: HashMap<UeId, UeConfig>,
    ca: CarrierAggregationManager,
    packet_bytes: HashMap<u64, u32>,
    next_rnti: u16,
    rng: DetRng,
    /// Subframes ticked so far.
    pub subframes: u64,
}

impl CellularNetwork {
    /// Build the network with one background-traffic generator per cell using
    /// the given load profile.
    pub fn new(config: CellularConfig, load: CellLoadProfile, seed: u64) -> Self {
        let rng = DetRng::new(seed);
        let cells = config
            .cells
            .iter()
            .map(|c| {
                let mut cell = Cell::new(
                    c.clone(),
                    BackgroundTraffic::new(load, rng.split_indexed("bg", u64::from(c.id.0))),
                    rng.split_indexed("cell", u64::from(c.id.0)),
                );
                cell.set_protocol_overhead(config.protocol_overhead);
                cell
            })
            .collect();
        CellularNetwork {
            config,
            cells,
            ues: HashMap::new(),
            ue_configs: HashMap::new(),
            ca: CarrierAggregationManager::new(),
            packet_bytes: HashMap::new(),
            next_rnti: 0x0100,
            rng,
            subframes: 0,
        }
    }

    /// Set a different load profile on one cell (used by the diurnal-sweep
    /// micro-benchmark).
    pub fn set_cell_load(&mut self, cell: CellId, load: CellLoadProfile) {
        if let Some(c) = self.cell_mut(cell) {
            c.background_mut().set_profile(load);
        }
    }

    /// Static configuration of the network.
    pub fn config(&self) -> &CellularConfig {
        &self.config
    }

    fn cell_mut(&mut self, id: CellId) -> Option<&mut Cell> {
        self.cells.iter_mut().find(|c| c.id() == id)
    }

    fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.iter().find(|c| c.id() == id)
    }

    /// Register a UE with the given mobility trace applied to all of its
    /// configured cells (secondary cells see the same large-scale trajectory
    /// with a small fixed offset).  Returns the RNTI assigned to the UE.
    pub fn add_ue(&mut self, ue_config: UeConfig, trace: MobilityTrace) -> Rnti {
        let rnti = Rnti(self.next_rnti);
        self.next_rnti += 1;
        let mut channels = HashMap::new();
        for (i, cell_id) in ue_config.configured_cells.iter().enumerate() {
            let max_streams = self
                .config
                .cell(*cell_id)
                .map(|c| c.max_spatial_streams)
                .unwrap_or(2);
            // Secondary carriers typically sit at higher frequencies and are
            // received a little weaker.
            let offset = -1.5 * i as f64;
            let mut shifted = trace.clone();
            for w in &mut shifted.waypoints {
                w.1 += offset;
            }
            let model = ChannelModel::new(
                shifted,
                max_streams,
                self.rng
                    .split_indexed("chan", (u64::from(ue_config.id.0) << 8) | i as u64),
            );
            channels.insert(*cell_id, model);
            if let Some(cell) = self.cell_mut(*cell_id) {
                cell.attach(ue_config.id, rnti);
            }
        }
        self.ca.register(ue_config.id);
        self.ues.insert(
            ue_config.id,
            UserEquipment::new(ue_config.clone(), rnti, channels),
        );
        self.ue_configs.insert(ue_config.id, ue_config);
        rnti
    }

    /// The RNTI of a registered UE.
    pub fn rnti_of(&self, ue: UeId) -> Option<Rnti> {
        self.ues.get(&ue).map(|u| u.rnti())
    }

    /// Cells currently active (aggregated) for a UE.
    pub fn active_cells(&self, ue: UeId) -> Vec<CellId> {
        self.ue_configs
            .get(&ue)
            .map(|cfg| self.ca.active_cell_ids(cfg))
            .unwrap_or_default()
    }

    /// True if the UE ever had a secondary cell activated.
    pub fn carrier_aggregation_triggered(&self, ue: UeId) -> bool {
        self.ca.ever_aggregated(ue)
    }

    /// Bits queued for a UE across its configured cells.
    pub fn queue_bits(&self, ue: UeId) -> u64 {
        self.ue_configs
            .get(&ue)
            .map(|cfg| {
                cfg.configured_cells
                    .iter()
                    .filter_map(|c| self.cell(*c))
                    .map(|c| c.queue_bits(ue))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Hand a downlink packet to the base station.  The packet is queued at
    /// the active cell with the lowest queue-to-capacity ratio (the network's
    /// internal flow splitting across aggregated carriers).
    pub fn enqueue_packet(&mut self, ue: UeId, packet_id: u64, bytes: u32, now: Instant) {
        let active = self.active_cells(ue);
        if active.is_empty() {
            return;
        }
        let target = active
            .iter()
            .copied()
            .min_by(|a, b| {
                let load = |id: CellId| {
                    let cell = self.cell(id).expect("active cell exists");
                    cell.queue_bits(ue) as f64 / f64::from(cell.config().total_prbs())
                };
                load(*a).partial_cmp(&load(*b)).expect("finite loads")
            })
            .expect("at least one active cell");
        self.packet_bytes.insert(packet_id, bytes);
        if let Some(cell) = self.cell_mut(target) {
            cell.enqueue(
                ue,
                QueuedPacket {
                    id: packet_id,
                    bytes,
                    enqueued_at: now,
                },
            );
        }
    }

    /// Advance the whole radio access network by one subframe.
    pub fn tick(&mut self, now: Instant) -> NetworkTickReport {
        let subframe = now.subframe_index();
        self.subframes += 1;
        let mut report = NetworkTickReport {
            subframe,
            ..NetworkTickReport::default()
        };

        // Sample channels: per cell, the set of UEs that are attached and
        // currently have that cell active.  Sorted so scheduling, delivery
        // and RNG-draw order are independent of hash-map iteration order —
        // a run must be reproducible across processes, not just within one.
        let mut ue_ids: Vec<UeId> = self.ues.keys().copied().collect();
        ue_ids.sort_unstable();
        let mut channels_per_cell: HashMap<CellId, HashMap<UeId, ChannelState>> = HashMap::new();
        for ue_id in &ue_ids {
            let active = self.active_cells(*ue_id);
            let ue = self.ues.get_mut(ue_id).expect("ue exists");
            for cell_id in active {
                if let Some(state) = ue.sample_channel(cell_id, now) {
                    channels_per_cell
                        .entry(cell_id)
                        .or_default()
                        .insert(*ue_id, state);
                }
            }
        }

        // Tick every cell and deliver its outcomes to the UEs.
        let mut allocated_per_ue: HashMap<UeId, u32> = HashMap::new();
        for cell in &mut self.cells {
            let empty = HashMap::new();
            let channels = channels_per_cell.get(&cell.id()).unwrap_or(&empty);
            let cell_report = cell.tick(subframe, channels);
            for dci in &cell_report.dci_messages {
                report.dci_messages.push(*dci);
            }
            for ue_id in &ue_ids {
                let prbs = cell_report.prb_usage.allocated_to(*ue_id);
                if prbs > 0 {
                    *allocated_per_ue.entry(*ue_id).or_insert(0) += u32::from(prbs);
                }
                let own: Vec<_> = cell_report
                    .outcomes
                    .iter()
                    .filter(|(owner, _)| owner == ue_id)
                    .map(|(_, o)| o.clone())
                    .collect();
                if own.is_empty() {
                    continue;
                }
                let ue = self.ues.get_mut(ue_id).expect("ue exists");
                let events = ue.process_outcomes(cell.id(), &own, now);
                for e in events {
                    let bytes = self.packet_bytes.remove(&e.packet_id).unwrap_or(0);
                    report.deliveries.push(Delivery {
                        ue: e.ue,
                        packet_id: e.packet_id,
                        bytes,
                        at: e.at,
                        delivered: e.delivered,
                        cell: e.cell,
                    });
                }
            }
            report.cell_reports.push(cell_report);
        }

        // Drive carrier aggregation from this subframe's allocations.
        for ue_id in &ue_ids {
            let ue_config = self.ue_configs[ue_id].clone();
            let active = self.ca.active_cell_ids(&ue_config);
            let active_cell_prbs: u32 = active
                .iter()
                .filter_map(|c| self.config.cell(*c))
                .map(|c| u32::from(c.total_prbs()))
                .sum();
            let obs = CaObservation {
                allocated_prbs: allocated_per_ue.get(ue_id).copied().unwrap_or(0),
                active_cell_prbs,
                queued_bits: self.queue_bits(*ue_id),
            };
            if let Some(event) = self.ca.observe(&self.config, &ue_config, obs, now) {
                report.ca_events.push(event);
            }
        }

        report
    }

    /// Receive-side statistics of a UE: `(delivered, lost)` packet counts.
    pub fn ue_stats(&self, ue: UeId) -> (u64, u64) {
        self.ues
            .get(&ue)
            .map(|u| (u.packets_delivered, u.packets_lost))
            .unwrap_or((0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UeConfig;

    fn network(load: CellLoadProfile) -> CellularNetwork {
        CellularNetwork::new(CellularConfig::default(), load, 42)
    }

    fn add_default_ue(net: &mut CellularNetwork, max_cells: usize) -> UeId {
        let ue = UeId(1);
        net.add_ue(
            UeConfig::new(ue, vec![CellId(0), CellId(1), CellId(2)], max_cells, -85.0),
            MobilityTrace::stationary(-85.0),
        );
        ue
    }

    #[test]
    fn packets_flow_end_to_end() {
        let mut net = network(CellLoadProfile::none());
        let ue = add_default_ue(&mut net, 1);
        for i in 0..100u64 {
            net.enqueue_packet(ue, i, 1500, Instant::ZERO);
        }
        let mut delivered = 0;
        for sf in 0..200u64 {
            let report = net.tick(Instant::from_millis(sf));
            delivered += report.deliveries.iter().filter(|d| d.delivered).count();
        }
        assert_eq!(delivered, 100, "all packets delivered on an idle cell");
        assert_eq!(net.queue_bits(ue), 0);
        let (ok, lost) = net.ue_stats(ue);
        assert_eq!(ok, 100);
        assert_eq!(lost, 0);
    }

    #[test]
    fn deliveries_carry_reasonable_latency() {
        let mut net = network(CellLoadProfile::none());
        let ue = add_default_ue(&mut net, 1);
        net.enqueue_packet(ue, 1, 1500, Instant::ZERO);
        let mut delivery = None;
        for sf in 0..50u64 {
            let report = net.tick(Instant::from_millis(sf));
            if let Some(d) = report.deliveries.first() {
                delivery = Some(*d);
                break;
            }
        }
        let d = delivery.expect("packet delivered");
        assert!(d.delivered);
        // A single small packet on an idle cell goes out in the first few
        // subframes (no retransmission most of the time).
        assert!(d.at.as_millis() <= 30, "delivered at {}", d.at);
    }

    #[test]
    fn dci_messages_are_emitted_for_scheduled_users() {
        let mut net = network(CellLoadProfile::none());
        let ue = add_default_ue(&mut net, 1);
        let rnti = net.rnti_of(ue).unwrap();
        for i in 0..10u64 {
            net.enqueue_packet(ue, i, 1500, Instant::ZERO);
        }
        let report = net.tick(Instant::ZERO);
        assert!(report.dci_messages.iter().any(|d| d.rnti == rnti));
    }

    #[test]
    fn sustained_overload_triggers_carrier_aggregation() {
        let mut net = network(CellLoadProfile::none());
        let ue = add_default_ue(&mut net, 3);
        assert_eq!(net.active_cells(ue), vec![CellId(0)]);
        // Offer far more than the primary cell can carry (~160 Mbit/s):
        // 40 packets of 1500 B per ms = 480 Mbit/s.
        let mut activated = false;
        let mut packet_id = 0u64;
        for sf in 0..2000u64 {
            let now = Instant::from_millis(sf);
            for _ in 0..40 {
                net.enqueue_packet(ue, packet_id, 1500, now);
                packet_id += 1;
            }
            let report = net.tick(now);
            if report.ca_events.iter().any(|e| e.activated) {
                activated = true;
                break;
            }
        }
        assert!(activated, "secondary cell activated under overload");
        assert!(net.active_cells(ue).len() >= 2);
        assert!(net.carrier_aggregation_triggered(ue));
    }

    #[test]
    fn modest_load_never_triggers_carrier_aggregation() {
        let mut net = network(CellLoadProfile::none());
        let ue = add_default_ue(&mut net, 3);
        for (packet_id, sf) in (0..2000u64).enumerate() {
            let now = Instant::from_millis(sf);
            // ~12 Mbit/s, far below the primary cell's capacity.
            net.enqueue_packet(ue, packet_id as u64, 1500, now);
            let report = net.tick(now);
            assert!(report.ca_events.is_empty());
        }
        assert_eq!(net.active_cells(ue), vec![CellId(0)]);
        assert!(!net.carrier_aggregation_triggered(ue));
    }

    #[test]
    fn two_ues_share_and_both_make_progress() {
        let mut net = network(CellLoadProfile::none());
        let a = UeId(1);
        let b = UeId(2);
        net.add_ue(
            UeConfig::new(a, vec![CellId(0)], 1, -85.0),
            MobilityTrace::stationary(-85.0),
        );
        net.add_ue(
            UeConfig::new(b, vec![CellId(0)], 1, -85.0),
            MobilityTrace::stationary(-85.0),
        );
        let mut pid = 0u64;
        let mut delivered_a = 0u64;
        let mut delivered_b = 0u64;
        for sf in 0..500u64 {
            let now = Instant::from_millis(sf);
            for _ in 0..10 {
                net.enqueue_packet(a, pid, 1500, now);
                pid += 1;
                net.enqueue_packet(b, pid, 1500, now);
                pid += 1;
            }
            let report = net.tick(now);
            for d in report.deliveries.iter().filter(|d| d.delivered) {
                if d.ue == a {
                    delivered_a += 1;
                } else if d.ue == b {
                    delivered_b += 1;
                }
            }
        }
        assert!(delivered_a > 1000);
        assert!(delivered_b > 1000);
        let ratio = delivered_a as f64 / delivered_b as f64;
        assert!((0.8..1.25).contains(&ratio), "delivery ratio {ratio}");
    }

    #[test]
    fn background_traffic_consumes_prbs() {
        let mut net = network(CellLoadProfile::busy());
        let _ue = add_default_ue(&mut net, 1);
        let mut allocated = 0u64;
        for sf in 0..1000u64 {
            let report = net.tick(Instant::from_millis(sf));
            for c in &report.cell_reports {
                if c.cell == CellId(0) {
                    allocated += u64::from(c.prb_usage.allocated());
                }
            }
        }
        assert!(
            allocated > 5_000,
            "background users occupied PRBs: {allocated}"
        );
    }
}
